//! Pre-built neural-network layers — the left-hand column of Table I of
//! the paper: `Conv1d`/`Conv2d`, `BatchNorm1d`/`BatchNorm2d`, `Linear`,
//! `ReLU`, `MaxPool1d`/`AvgPool1d`, `MaxPool2d`/`AvgPool2d`, `Flatten`,
//! composed with [`Sequential`]; plus [`SelfAttention`], the paper's
//! showcase of building non-native layers from tensor primitives
//! (Section V-A).
//!
//! Every layer implements [`Module`] twice over: `forward` generates the
//! TFHE circuit, `forward_plain` is the f64 reference the tests compare
//! against — the "pre-build and validate" correctness strategy of
//! Section IV-B.

mod activations;
mod attention;
mod conv;
mod linear;
mod norm;
mod pool;
mod simple;

pub use activations::{HardSigmoid, HardTanh};
pub use attention::SelfAttention;
pub use conv::{Conv1d, Conv2d};
pub use linear::Linear;
pub use norm::{BatchNorm1d, BatchNorm2d};
pub use pool::{AvgPool1d, AvgPool2d, MaxPool1d, MaxPool2d};
pub use simple::{Flatten, ReLU};

use crate::error::TorchError;
use crate::plain::PlainTensor;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, DType};

/// A neural-network layer: a circuit generator plus its plaintext
/// reference semantics.
pub trait Module: std::fmt::Debug + Send + Sync {
    /// Generates the layer's circuit for `input`, returning the output
    /// tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TorchError`] on shape or dtype mismatches.
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError>;

    /// The f64 reference semantics (unquantized), used as the correctness
    /// oracle and for accuracy analyses.
    ///
    /// # Errors
    ///
    /// Returns [`TorchError`] on shape mismatches.
    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError>;

    /// The layer's display name (e.g. `"Conv2d"`).
    fn name(&self) -> &'static str;

    /// The output shape for a given input shape, when statically known.
    ///
    /// # Errors
    ///
    /// Returns [`TorchError`] if the input shape is invalid for the layer.
    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError>;
}

/// An ordered container of layers with a model-wide data type — the
/// ChiselTorch analogue of `torch.nn.Sequential` (Figure 4 of the paper:
/// `new.Sequential(Seq(...), dtype = Float(8, 8))`).
#[derive(Debug)]
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
    dtype: DType,
}

impl Sequential {
    /// Creates an empty model with the given data type.
    pub fn new(dtype: DType) -> Self {
        Sequential { layers: Vec::new(), dtype }
    }

    /// Appends a layer (builder style).
    #[must_use]
    // `add` deliberately mirrors the paper's `nn.Sequential.add` API
    // (Figure 4); it is a builder, not arithmetic.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, layer: impl Module + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    #[must_use]
    pub fn add_boxed(mut self, layer: Box<dyn Module>) -> Self {
        self.layers.push(layer);
        self
    }

    /// The model's data type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The contained layers.
    pub fn layers(&self) -> &[Box<dyn Module>] {
        &self.layers
    }
}

impl Module for Sequential {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        let mut cur = input.clone();
        for layer in &self.layers {
            cur = layer.forward(c, &cur)?;
        }
        Ok(cur)
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        let mut cur = input.clone();
        for layer in &self.layers {
            cur = layer.forward_plain(&cur)?;
        }
        Ok(cur)
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        let mut shape = input.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Compiles `layer` over an input of `shape`/`dtype`, evaluates it on
    /// `input`, and compares against `forward_plain` of the quantized
    /// input within `tol`.
    pub(crate) fn check_layer_against_plain(
        layer: &dyn Module,
        shape: &[usize],
        dtype: DType,
        input: &PlainTensor,
        tol: f64,
    ) {
        let mut c = Circuit::new();
        let x = Tensor::input(&mut c, "x", shape, dtype);
        let y = layer.forward(&mut c, &x).expect("forward");
        y.output(&mut c, "y");
        let nl = c.finish().expect("netlist");
        // Quantize the input like the client would.
        let q: Vec<f64> =
            input.data().iter().map(|&v| dtype.decode_f64(&dtype.encode_f64(v))).collect();
        let qin = PlainTensor::from_vec(shape, q).unwrap();
        let want = layer.forward_plain(&qin).expect("plain forward");
        let bits: Vec<bool> = input.data().iter().flat_map(|&v| dtype.encode_f64(v)).collect();
        let out = nl.eval_plain(&bits);
        let w = dtype.width();
        let got: Vec<f64> = out.chunks(w).map(|ch| dtype.decode_f64(ch)).collect();
        assert_eq!(got.len(), want.len(), "output element count");
        for (i, (g, wv)) in got.iter().zip(want.data()).enumerate() {
            assert!((g - wv).abs() <= tol, "{}[{i}]: got {g}, want {wv} (tol {tol})", layer.name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::PlainTensor;

    #[test]
    fn sequential_composes_shapes() {
        let model = Sequential::new(DType::Fixed { width: 12, frac: 4 })
            .add(Conv2d::new(1, 2, 3, 1))
            .add(ReLU::new())
            .add(MaxPool2d::new(2, 1))
            .add(Flatten::new())
            .add(Linear::new(18, 4));
        assert_eq!(model.output_shape(&[1, 6, 6]).unwrap(), vec![4]);
        assert_eq!(model.layers().len(), 5);
    }

    #[test]
    fn sequential_plain_forward_runs() {
        let model = Sequential::new(DType::Fixed { width: 12, frac: 4 })
            .add(Flatten::new())
            .add(Linear::new(4, 2));
        let input = PlainTensor::random(&[2, 2], 1.0, 3);
        let out = model.forward_plain(&input).unwrap();
        assert_eq!(out.shape(), &[2]);
    }

    #[test]
    fn sequential_end_to_end_small() {
        let dtype = DType::Fixed { width: 14, frac: 6 };
        let model =
            Sequential::new(dtype).add(ReLU::new()).add(Flatten::new()).add(Linear::new(4, 2));
        let input = PlainTensor::random(&[4], 1.5, 11);
        testutil::check_layer_against_plain(&model, &[4], dtype, &input, 0.25);
    }
}
