use super::Module;
use crate::error::TorchError;
use crate::ops::sum_values;
use crate::plain::PlainTensor;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, Value};

/// 2-D convolution `torch.nn.Conv2d(in_channels, out_channels,
/// kernel_size, stride)` — the paper's running example is
/// `Conv2d(1, 1, 2, 1)` (Figure 3).
///
/// Input layout is `[C, H, W]` (batch of one); output is
/// `[O, (H + 2p - k)/s + 1, (W + 2p - k)/s + 1]`. Padding defaults to 0
/// (`valid`); set it with [`Conv2d::with_padding`].
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: PlainTensor,
    bias: PlainTensor,
}

impl Conv2d {
    /// Creates the layer with deterministic pseudo-random parameters.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, stride: usize) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let bound = 1.0 / (fan_in as f64).sqrt();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding: 0,
            weight: PlainTensor::random(
                &[out_channels, in_channels, kernel, kernel],
                bound,
                0xc0b2d,
            ),
            bias: PlainTensor::random(&[out_channels], bound, 0xb1a5c),
        }
    }

    /// Sets zero padding on each spatial side (`torch.nn.Conv2d`'s
    /// `padding` argument).
    #[must_use]
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Replaces the kernel weights (`[out, in, k, k]`).
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::BadWeights`] on shape mismatch.
    pub fn with_weight(mut self, weight: PlainTensor) -> Result<Self, TorchError> {
        let expect = [self.out_channels, self.in_channels, self.kernel, self.kernel];
        if weight.shape() != expect {
            return Err(TorchError::BadWeights {
                layer: "Conv2d",
                expected: format!("{expect:?}"),
            });
        }
        self.weight = weight;
        Ok(self)
    }

    /// Replaces the bias (`[out]`).
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::BadWeights`] on shape mismatch.
    pub fn with_bias(mut self, bias: PlainTensor) -> Result<Self, TorchError> {
        if bias.shape() != [self.out_channels] {
            return Err(TorchError::BadWeights {
                layer: "Conv2d",
                expected: format!("[{}]", self.out_channels),
            });
        }
        self.bias = bias;
        Ok(self)
    }

    fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize), TorchError> {
        let (h, w) = (h + 2 * self.padding, w + 2 * self.padding);
        if h < self.kernel || w < self.kernel || self.stride == 0 {
            return Err(TorchError::ShapeMismatch {
                expected: format!("spatial dims >= kernel {}", self.kernel),
                got: vec![h, w],
                op: "Conv2d",
            });
        }
        Ok(((h - self.kernel) / self.stride + 1, (w - self.kernel) / self.stride + 1))
    }
}

impl Module for Conv2d {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        let [ch, h, w] = input.shape()[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "[C, H, W]".into(),
                got: input.shape().to_vec(),
                op: "Conv2d",
            });
        };
        if ch != self.in_channels {
            return Err(TorchError::ShapeMismatch {
                expected: format!("{} input channels", self.in_channels),
                got: input.shape().to_vec(),
                op: "Conv2d",
            });
        }
        let (oh, ow) = self.out_hw(h, w)?;
        let padded;
        let input = if self.padding > 0 {
            padded = input.pad2d(c, self.padding)?;
            &padded
        } else {
            input
        };
        let dtype = input.dtype();
        let mut out = Vec::with_capacity(self.out_channels * oh * ow);
        for o in 0..self.out_channels {
            for y in 0..oh {
                for x in 0..ow {
                    let mut terms =
                        Vec::with_capacity(self.in_channels * self.kernel * self.kernel + 1);
                    for i in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let wv = self.weight.at(&[o, i, ky, kx]);
                                let wc = Value::constant(c, wv, dtype);
                                let pixel =
                                    input.at(&[i, y * self.stride + ky, x * self.stride + kx]);
                                terms.push(c.v_mul(pixel, &wc)?);
                            }
                        }
                    }
                    terms.push(Value::constant(c, self.bias.at(&[o]), dtype));
                    out.push(sum_values(c, &terms)?);
                }
            }
        }
        Tensor::from_values(&[self.out_channels, oh, ow], out)
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        let [ch, h, w] = input.shape()[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "[C, H, W]".into(),
                got: input.shape().to_vec(),
                op: "Conv2d",
            });
        };
        assert_eq!(ch, self.in_channels, "input channel mismatch");
        let (oh, ow) = self.out_hw(h, w)?;
        let pad = self.padding;
        let px = |i: usize, y: usize, x: usize| {
            if y < pad || x < pad || y >= h + pad || x >= w + pad {
                0.0
            } else {
                input.at(&[i, y - pad, x - pad])
            }
        };
        let mut out = PlainTensor::zeros(&[self.out_channels, oh, ow]);
        for o in 0..self.out_channels {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = self.bias.at(&[o]);
                    for i in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                acc += self.weight.at(&[o, i, ky, kx])
                                    * px(i, y * self.stride + ky, x * self.stride + kx);
                            }
                        }
                    }
                    out.set(&[o, y, x], acc);
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        let [ch, h, w] = input[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "[C, H, W]".into(),
                got: input.to_vec(),
                op: "Conv2d",
            });
        };
        if ch != self.in_channels {
            return Err(TorchError::ShapeMismatch {
                expected: format!("{} input channels", self.in_channels),
                got: input.to_vec(),
                op: "Conv2d",
            });
        }
        let (oh, ow) = self.out_hw(h, w)?;
        Ok(vec![self.out_channels, oh, ow])
    }
}

/// 1-D convolution `torch.nn.Conv1d`; input layout `[C, L]`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    weight: PlainTensor,
    bias: PlainTensor,
}

impl Conv1d {
    /// Creates the layer with deterministic pseudo-random parameters.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, stride: usize) -> Self {
        let bound = 1.0 / ((in_channels * kernel) as f64).sqrt();
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            stride,
            weight: PlainTensor::random(&[out_channels, in_channels, kernel], bound, 0xc0b1d),
            bias: PlainTensor::random(&[out_channels], bound, 0xb1a51),
        }
    }

    /// Replaces the kernel weights (`[out, in, k]`).
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::BadWeights`] on shape mismatch.
    pub fn with_weight(mut self, weight: PlainTensor) -> Result<Self, TorchError> {
        let expect = [self.out_channels, self.in_channels, self.kernel];
        if weight.shape() != expect {
            return Err(TorchError::BadWeights {
                layer: "Conv1d",
                expected: format!("{expect:?}"),
            });
        }
        self.weight = weight;
        Ok(self)
    }

    fn out_len(&self, l: usize) -> Result<usize, TorchError> {
        if l < self.kernel || self.stride == 0 {
            return Err(TorchError::ShapeMismatch {
                expected: format!("length >= kernel {}", self.kernel),
                got: vec![l],
                op: "Conv1d",
            });
        }
        Ok((l - self.kernel) / self.stride + 1)
    }
}

impl Module for Conv1d {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        let [ch, l] = input.shape()[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "[C, L]".into(),
                got: input.shape().to_vec(),
                op: "Conv1d",
            });
        };
        if ch != self.in_channels {
            return Err(TorchError::ShapeMismatch {
                expected: format!("{} input channels", self.in_channels),
                got: input.shape().to_vec(),
                op: "Conv1d",
            });
        }
        let ol = self.out_len(l)?;
        let dtype = input.dtype();
        let mut out = Vec::with_capacity(self.out_channels * ol);
        for o in 0..self.out_channels {
            for x in 0..ol {
                let mut terms = Vec::with_capacity(self.in_channels * self.kernel + 1);
                for i in 0..self.in_channels {
                    for k in 0..self.kernel {
                        let wc = Value::constant(c, self.weight.at(&[o, i, k]), dtype);
                        terms.push(c.v_mul(input.at(&[i, x * self.stride + k]), &wc)?);
                    }
                }
                terms.push(Value::constant(c, self.bias.at(&[o]), dtype));
                out.push(sum_values(c, &terms)?);
            }
        }
        Tensor::from_values(&[self.out_channels, ol], out)
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        let [ch, l] = input.shape()[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "[C, L]".into(),
                got: input.shape().to_vec(),
                op: "Conv1d",
            });
        };
        assert_eq!(ch, self.in_channels, "input channel mismatch");
        let ol = self.out_len(l)?;
        let mut out = PlainTensor::zeros(&[self.out_channels, ol]);
        for o in 0..self.out_channels {
            for x in 0..ol {
                let mut acc = self.bias.at(&[o]);
                for i in 0..self.in_channels {
                    for k in 0..self.kernel {
                        acc += self.weight.at(&[o, i, k]) * input.at(&[i, x * self.stride + k]);
                    }
                }
                out.set(&[o, x], acc);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "Conv1d"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        let [ch, l] = input[..] else {
            return Err(TorchError::ShapeMismatch {
                expected: "[C, L]".into(),
                got: input.to_vec(),
                op: "Conv1d",
            });
        };
        if ch != self.in_channels {
            return Err(TorchError::ShapeMismatch {
                expected: format!("{} input channels", self.in_channels),
                got: input.to_vec(),
                op: "Conv1d",
            });
        }
        Ok(vec![self.out_channels, self.out_len(l)?])
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_layer_against_plain;
    use super::*;
    use pytfhe_hdl::DType;

    #[test]
    fn conv2d_matches_plain() {
        let dtype = DType::Fixed { width: 16, frac: 8 };
        let layer = Conv2d::new(1, 2, 2, 1);
        let input = PlainTensor::random(&[1, 4, 4], 1.0, 31);
        check_layer_against_plain(&layer, &[1, 4, 4], dtype, &input, 8.0 * dtype.resolution());
    }

    #[test]
    fn conv2d_stride_two() {
        let dtype = DType::Fixed { width: 16, frac: 8 };
        let layer = Conv2d::new(1, 1, 2, 2);
        assert_eq!(layer.output_shape(&[1, 6, 6]).unwrap(), vec![1, 3, 3]);
        let input = PlainTensor::random(&[1, 6, 6], 1.0, 32);
        check_layer_against_plain(&layer, &[1, 6, 6], dtype, &input, 8.0 * dtype.resolution());
    }

    #[test]
    fn conv2d_multichannel() {
        let dtype = DType::Fixed { width: 16, frac: 8 };
        let layer = Conv2d::new(2, 1, 2, 1);
        let input = PlainTensor::random(&[2, 3, 3], 1.0, 33);
        check_layer_against_plain(&layer, &[2, 3, 3], dtype, &input, 12.0 * dtype.resolution());
    }

    #[test]
    fn conv1d_matches_plain() {
        let dtype = DType::Fixed { width: 16, frac: 8 };
        let layer = Conv1d::new(1, 2, 3, 1);
        let input = PlainTensor::random(&[1, 8], 1.0, 34);
        check_layer_against_plain(&layer, &[1, 8], dtype, &input, 8.0 * dtype.resolution());
    }

    #[test]
    fn explicit_conv2d_weight() {
        // An identity kernel: picks the top-left pixel.
        let layer = Conv2d::new(1, 1, 2, 1)
            .with_weight(PlainTensor::from_vec(&[1, 1, 2, 2], vec![1.0, 0.0, 0.0, 0.0]).unwrap())
            .unwrap()
            .with_bias(PlainTensor::from_vec(&[1], vec![0.0]).unwrap())
            .unwrap();
        let input = PlainTensor::from_vec(&[1, 2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let out = layer.forward_plain(&input).unwrap();
        assert_eq!(out.data(), &[5.0]);
    }

    #[test]
    fn conv2d_with_padding_matches_plain() {
        let dtype = DType::Fixed { width: 16, frac: 8 };
        let layer = Conv2d::new(1, 1, 3, 1).with_padding(1);
        assert_eq!(layer.output_shape(&[1, 4, 4]).unwrap(), vec![1, 4, 4], "same padding");
        let input = PlainTensor::random(&[1, 4, 4], 1.0, 35);
        check_layer_against_plain(&layer, &[1, 4, 4], dtype, &input, 8.0 * dtype.resolution());
    }

    #[test]
    fn rejects_bad_shapes() {
        let layer = Conv2d::new(1, 1, 3, 1);
        assert!(layer.output_shape(&[1, 2, 2]).is_err(), "input smaller than kernel");
        assert!(layer.output_shape(&[2, 4, 4]).is_err(), "channel mismatch");
        assert!(layer.output_shape(&[4, 4]).is_err(), "bad rank");
        assert!(Conv2d::new(1, 1, 2, 1).with_weight(PlainTensor::zeros(&[1, 1, 3, 3])).is_err());
    }
}
