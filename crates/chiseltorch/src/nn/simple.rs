use super::Module;
use crate::error::TorchError;
use crate::plain::PlainTensor;
use crate::tensor::Tensor;
use pytfhe_hdl::Circuit;

/// The `ReLU` activation — two gates per bit under TFHE, in contrast to
/// the expensive polynomial approximations word-wise schemes need
/// (Section II-C of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReLU;

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU
    }
}

impl Module for ReLU {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        let data = input.values().iter().map(|v| c.v_relu(v)).collect();
        Tensor::from_values(input.shape(), data)
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        let data = input.data().iter().map(|&x| x.max(0.0)).collect();
        PlainTensor::from_vec(input.shape(), data)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        Ok(input.to_vec())
    }
}

/// `Flatten` — pure wiring, zero gates (the optimization the Transpiler
/// misses, Section V-C of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct Flatten;

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten
    }
}

impl Module for Flatten {
    fn forward(&self, _c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        Ok(input.flatten())
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        PlainTensor::from_vec(&[input.len()], input.data().to_vec())
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        Ok(vec![input.iter().product()])
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_layer_against_plain;
    use super::*;
    use pytfhe_hdl::{DType, Value};

    #[test]
    fn relu_all_dtypes() {
        let input = PlainTensor::from_vec(&[4], vec![-2.0, -0.25, 0.5, 3.0]).unwrap();
        for dtype in
            [DType::SInt(8), DType::Fixed { width: 10, frac: 4 }, DType::Float { exp: 6, man: 6 }]
        {
            check_layer_against_plain(&ReLU::new(), &[4], dtype, &input, dtype.resolution());
        }
    }

    #[test]
    fn flatten_is_free() {
        let mut c = Circuit::new();
        let x = Tensor::input(&mut c, "x", &[2, 3, 4], DType::SInt(5));
        let before = c.num_gates();
        let y = Flatten::new().forward(&mut c, &x).unwrap();
        assert_eq!(c.num_gates(), before);
        assert_eq!(y.shape(), &[24]);
        let first: &Value = y.at(&[0]);
        assert_eq!(first, x.at(&[0, 0, 0]));
    }

    #[test]
    fn shapes() {
        assert_eq!(ReLU::new().output_shape(&[3, 4]).unwrap(), vec![3, 4]);
        assert_eq!(Flatten::new().output_shape(&[3, 4]).unwrap(), vec![12]);
    }
}
