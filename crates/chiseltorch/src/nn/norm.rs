use super::Module;
use crate::error::TorchError;
use crate::plain::PlainTensor;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, Value};

/// Shared inference-mode batch-norm math: with frozen statistics the layer
/// is the per-channel affine map `y = g * x + h` where
/// `g = gamma / sqrt(var + eps)` and `h = beta - mean * g` — both
/// plaintext constants folded into the circuit at compile time.
#[derive(Debug, Clone)]
struct BatchNormInner {
    channels: usize,
    gamma: PlainTensor,
    beta: PlainTensor,
    running_mean: PlainTensor,
    running_var: PlainTensor,
    eps: f64,
}

impl BatchNormInner {
    fn new(channels: usize) -> Self {
        BatchNormInner {
            channels,
            gamma: PlainTensor::from_vec(&[channels], vec![1.0; channels]).expect("shape"),
            beta: PlainTensor::zeros(&[channels]),
            running_mean: PlainTensor::zeros(&[channels]),
            running_var: PlainTensor::from_vec(&[channels], vec![1.0; channels]).expect("shape"),
            eps: 1e-5,
        }
    }

    /// The folded per-channel scale and shift.
    fn affine(&self, ch: usize) -> (f64, f64) {
        let g = self.gamma.at(&[ch]) / (self.running_var.at(&[ch]) + self.eps).sqrt();
        let h = self.beta.at(&[ch]) - self.running_mean.at(&[ch]) * g;
        (g, h)
    }

    fn set_stats(
        &mut self,
        layer: &'static str,
        gamma: PlainTensor,
        beta: PlainTensor,
        mean: PlainTensor,
        var: PlainTensor,
    ) -> Result<(), TorchError> {
        for t in [&gamma, &beta, &mean, &var] {
            if t.shape() != [self.channels] {
                return Err(TorchError::BadWeights {
                    layer,
                    expected: format!("[{}] statistics", self.channels),
                });
            }
        }
        self.gamma = gamma;
        self.beta = beta;
        self.running_mean = mean;
        self.running_var = var;
        Ok(())
    }
}

macro_rules! batchnorm {
    ($name:ident, $layer_name:literal, $rank_doc:literal, $check:expr) => {
        #[doc = concat!("Inference-mode `torch.nn.", $layer_name, "` over ", $rank_doc, ".")]
        #[doc = ""]
        #[doc = "With frozen running statistics this folds to a per-channel"]
        #[doc = "affine transform whose coefficients are plaintext constants."]
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: BatchNormInner,
        }

        impl $name {
            /// Creates the layer with identity statistics.
            pub fn new(channels: usize) -> Self {
                Self { inner: BatchNormInner::new(channels) }
            }

            /// Sets the frozen statistics (`gamma`, `beta`, running mean,
            /// running variance), each of shape `[channels]`.
            ///
            /// # Errors
            ///
            /// Returns [`TorchError::BadWeights`] on shape mismatch.
            pub fn with_stats(
                mut self,
                gamma: PlainTensor,
                beta: PlainTensor,
                mean: PlainTensor,
                var: PlainTensor,
            ) -> Result<Self, TorchError> {
                self.inner.set_stats($layer_name, gamma, beta, mean, var)?;
                Ok(self)
            }

            fn check_shape(&self, shape: &[usize]) -> Result<(), TorchError> {
                let ok: fn(&[usize], usize) -> bool = $check;
                if !ok(shape, self.inner.channels) {
                    return Err(TorchError::ShapeMismatch {
                        expected: format!("{} with {} channels", $rank_doc, self.inner.channels),
                        got: shape.to_vec(),
                        op: $layer_name,
                    });
                }
                Ok(())
            }
        }

        impl Module for $name {
            fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
                self.check_shape(input.shape())?;
                let dtype = input.dtype();
                let per_channel: usize = input.shape()[1..].iter().product();
                let mut out = Vec::with_capacity(input.len());
                for (i, v) in input.values().iter().enumerate() {
                    let ch = i / per_channel;
                    let (g, h) = self.inner.affine(ch);
                    let gc = Value::constant(c, g, dtype);
                    let hc = Value::constant(c, h, dtype);
                    let scaled = c.v_mul(v, &gc)?;
                    out.push(c.v_add(&scaled, &hc)?);
                }
                Tensor::from_values(input.shape(), out)
            }

            fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
                self.check_shape(input.shape())?;
                let per_channel: usize = input.shape()[1..].iter().product();
                let data = input
                    .data()
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        let (g, h) = self.inner.affine(i / per_channel);
                        g * x + h
                    })
                    .collect();
                PlainTensor::from_vec(input.shape(), data)
            }

            fn name(&self) -> &'static str {
                $layer_name
            }

            fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
                self.check_shape(input)?;
                Ok(input.to_vec())
            }
        }
    };
}

batchnorm!(BatchNorm1d, "BatchNorm1d", "`[C, L]` or `[C]` inputs", |s, c| {
    (s.len() == 2 || s.len() == 1) && s[0] == c
});
batchnorm!(BatchNorm2d, "BatchNorm2d", "`[C, H, W]` inputs", |s, c| s.len() == 3 && s[0] == c);

#[cfg(test)]
mod tests {
    use super::super::testutil::check_layer_against_plain;
    use super::*;
    use pytfhe_hdl::DType;

    const DT: DType = DType::Fixed { width: 16, frac: 8 };

    #[test]
    fn identity_stats_is_identity() {
        let layer = BatchNorm2d::new(2);
        let input = PlainTensor::random(&[2, 2, 2], 2.0, 51);
        let out = layer.forward_plain(&input).unwrap();
        for (a, b) in input.data().iter().zip(out.data()) {
            // Not bit-exact: eps keeps g = 1/sqrt(1 + 1e-5) just below 1.
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn custom_stats_normalize() {
        let layer = BatchNorm1d::new(2)
            .with_stats(
                PlainTensor::from_vec(&[2], vec![2.0, 1.0]).unwrap(),
                PlainTensor::from_vec(&[2], vec![0.5, -0.5]).unwrap(),
                PlainTensor::from_vec(&[2], vec![1.0, 2.0]).unwrap(),
                PlainTensor::from_vec(&[2], vec![4.0, 1.0]).unwrap(),
            )
            .unwrap();
        let input = PlainTensor::from_vec(&[2, 2], vec![3.0, 1.0, 2.0, 4.0]).unwrap();
        let out = layer.forward_plain(&input).unwrap();
        // ch0: (x - 1)/2 * 2 + 0.5 = x - 1 + 0.5
        assert!((out.at(&[0, 0]) - 2.5).abs() < 1e-4);
        assert!((out.at(&[0, 1]) - 0.5).abs() < 1e-4);
        // ch1: (x - 2)/1 * 1 - 0.5
        assert!((out.at(&[1, 0]) - (-0.5)).abs() < 1e-4);
        assert!((out.at(&[1, 1]) - 1.5).abs() < 1e-4);
    }

    #[test]
    fn circuit_matches_plain() {
        let layer = BatchNorm2d::new(2)
            .with_stats(
                PlainTensor::from_vec(&[2], vec![1.5, 0.5]).unwrap(),
                PlainTensor::from_vec(&[2], vec![0.25, -0.25]).unwrap(),
                PlainTensor::from_vec(&[2], vec![0.5, -0.5]).unwrap(),
                PlainTensor::from_vec(&[2], vec![1.0, 2.25]).unwrap(),
            )
            .unwrap();
        let input = PlainTensor::random(&[2, 2, 2], 2.0, 52);
        check_layer_against_plain(&layer, &[2, 2, 2], DT, &input, 6.0 * DT.resolution());
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(BatchNorm2d::new(2).output_shape(&[3, 2, 2]).is_err());
        assert!(BatchNorm2d::new(2).output_shape(&[2, 2]).is_err());
        assert!(BatchNorm1d::new(2).output_shape(&[2, 5]).is_ok());
        assert!(BatchNorm1d::new(2)
            .with_stats(
                PlainTensor::zeros(&[3]),
                PlainTensor::zeros(&[2]),
                PlainTensor::zeros(&[2]),
                PlainTensor::zeros(&[2]),
            )
            .is_err());
    }
}
