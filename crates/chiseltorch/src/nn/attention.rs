use super::Module;
use crate::error::TorchError;
use crate::ops;
use crate::plain::PlainTensor;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, Value};

/// A single-head self-attention layer built entirely from Table I tensor
/// primitives (`matmul`, `transpose`, elementwise ops) — the paper's
/// demonstration that ChiselTorch supports "non-native complicated neural
/// network structures with the provided primitives" (Section V-A; the
/// `Attention_S` / `Attention_L` benchmarks).
///
/// Softmax over encrypted data would require a gate-level `exp`; like
/// other FHE inference work, we use the standard FHE-friendly substitute
/// `relu(s) / (sum(relu(s)) + 1)` row-wise, which preserves the
/// convex-combination structure of attention while staying inside the
/// primitive vocabulary. (Documented as a substitution in DESIGN.md.)
#[derive(Debug, Clone)]
pub struct SelfAttention {
    seq_len: usize,
    hidden: usize,
    wq: PlainTensor,
    wk: PlainTensor,
    wv: PlainTensor,
}

impl SelfAttention {
    /// Creates a single-head self-attention layer for `[seq_len, hidden]`
    /// inputs with deterministic pseudo-random projection matrices.
    pub fn new(seq_len: usize, hidden: usize) -> Self {
        let bound = 1.0 / (hidden as f64).sqrt();
        SelfAttention {
            seq_len,
            hidden,
            wq: PlainTensor::random(&[hidden, hidden], bound, 0xa77e_0001),
            wk: PlainTensor::random(&[hidden, hidden], bound, 0xa77e_0002),
            wv: PlainTensor::random(&[hidden, hidden], bound, 0xa77e_0003),
        }
    }

    /// The sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The hidden dimension (the paper's `Attention_S` uses 32,
    /// `Attention_L` 64).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn check(&self, shape: &[usize], op: &'static str) -> Result<(), TorchError> {
        if shape != [self.seq_len, self.hidden] {
            return Err(TorchError::ShapeMismatch {
                expected: format!("[{}, {}]", self.seq_len, self.hidden),
                got: shape.to_vec(),
                op,
            });
        }
        Ok(())
    }
}

impl Module for SelfAttention {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        self.check(input.shape(), "SelfAttention")?;
        let dtype = input.dtype();
        let wq = Tensor::constant(c, &self.wq, dtype);
        let wk = Tensor::constant(c, &self.wk, dtype);
        let wv = Tensor::constant(c, &self.wv, dtype);
        let q = ops::matmul(c, input, &wq)?;
        let k = ops::matmul(c, input, &wk)?;
        let v = ops::matmul(c, input, &wv)?;
        // scores = Q K^T / sqrt(d)
        let kt = k.transpose()?;
        let scores = ops::matmul(c, &q, &kt)?;
        let scale = Value::constant(c, 1.0 / (self.hidden as f64).sqrt(), dtype);
        let scaled: Vec<Value> =
            scores.values().iter().map(|s| c.v_mul(s, &scale)).collect::<Result<_, _>>()?;
        // FHE-friendly softmax substitute: w = relu(s); a = w / (row_sum + 1).
        let relu: Vec<Value> = scaled.iter().map(|s| c.v_relu(s)).collect();
        let t = self.seq_len;
        let one = Value::constant(c, 1.0, dtype);
        let mut attn = Vec::with_capacity(t * t);
        for i in 0..t {
            let row = &relu[i * t..(i + 1) * t];
            let row_sum = ops::sum_values(c, row)?;
            let denom = c.v_add(&row_sum, &one)?;
            for w in row {
                attn.push(c.v_div(w, &denom)?);
            }
        }
        let attn = Tensor::from_values(&[t, t], attn)?;
        ops::matmul(c, &attn, &v)
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        self.check(input.shape(), "SelfAttention")?;
        let t = self.seq_len;
        let d = self.hidden;
        let mm = |a: &PlainTensor, b: &PlainTensor, m: usize, k: usize, n: usize| {
            let mut out = PlainTensor::zeros(&[m, n]);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                    }
                    out.set(&[i, j], acc);
                }
            }
            out
        };
        let q = mm(input, &self.wq, t, d, d);
        let k = mm(input, &self.wk, t, d, d);
        let v = mm(input, &self.wv, t, d, d);
        let scale = 1.0 / (d as f64).sqrt();
        let mut attn = PlainTensor::zeros(&[t, t]);
        for i in 0..t {
            let mut row: Vec<f64> = (0..t)
                .map(|j| {
                    let mut s = 0.0;
                    for kk in 0..d {
                        s += q.at(&[i, kk]) * k.at(&[j, kk]);
                    }
                    (s * scale).max(0.0)
                })
                .collect();
            let denom: f64 = row.iter().sum::<f64>() + 1.0;
            for r in &mut row {
                *r /= denom;
            }
            for (j, r) in row.iter().enumerate() {
                attn.set(&[i, j], *r);
            }
        }
        Ok(mm(&attn, &v, t, t, d))
    }

    fn name(&self) -> &'static str {
        "SelfAttention"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        self.check(input, "SelfAttention")?;
        Ok(input.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_layer_against_plain;
    use super::*;
    use pytfhe_hdl::DType;

    #[test]
    fn attention_matches_plain_small() {
        // Tiny instance so the exhaustive circuit evaluation stays fast.
        let layer = SelfAttention::new(2, 4);
        let dtype = DType::Fixed { width: 18, frac: 10 };
        let input = PlainTensor::random(&[2, 4], 1.0, 61);
        // Error accumulates through two matmuls, division and reweighting.
        check_layer_against_plain(&layer, &[2, 4], dtype, &input, 0.05);
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        let layer = SelfAttention::new(3, 4);
        let input = PlainTensor::random(&[3, 4], 1.0, 62);
        let out = layer.forward_plain(&input).unwrap();
        assert_eq!(out.shape(), &[3, 4]);
        // Output magnitudes are bounded by value-projection magnitudes.
        assert!(out.data().iter().all(|x| x.abs() < 10.0));
    }

    #[test]
    fn rejects_bad_shapes() {
        let layer = SelfAttention::new(4, 8);
        assert!(layer.output_shape(&[4, 4]).is_err());
        assert!(layer.output_shape(&[4, 8]).is_ok());
    }
}
