use super::Module;
use crate::error::TorchError;
use crate::plain::PlainTensor;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, Value};

/// `torch.nn.Hardsigmoid`: the piecewise-linear sigmoid substitute
/// `clamp(x / 6 + 1/2, 0, 1)` — the standard FHE-friendly replacement
/// for the transcendental sigmoid (cf. the paper's Section III-A
/// discussion of polynomial-approximation costs in word-wise schemes;
/// under TFHE a clamp is just comparators and muxes).
#[derive(Debug, Clone, Copy, Default)]
pub struct HardSigmoid;

impl HardSigmoid {
    /// Creates the layer.
    pub fn new() -> Self {
        HardSigmoid
    }
}

/// `torch.nn.Hardtanh`: `clamp(x, -1, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HardTanh;

impl HardTanh {
    /// Creates the layer.
    pub fn new() -> Self {
        HardTanh
    }
}

/// Clamps a value between constant bounds with two compares + muxes.
fn clamp(c: &mut Circuit, x: &Value, lo: f64, hi: f64) -> Result<Value, TorchError> {
    let lo_c = Value::constant(c, lo, x.dtype);
    let hi_c = Value::constant(c, hi, x.dtype);
    let below = c.v_lt(x, &lo_c)?;
    let x = c.v_mux(below, &lo_c, x)?;
    let above = c.v_lt(&hi_c, &x)?;
    Ok(c.v_mux(above, &hi_c, &x)?)
}

impl Module for HardSigmoid {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        let dtype = input.dtype();
        let sixth = Value::constant(c, 1.0 / 6.0, dtype);
        let half = Value::constant(c, 0.5, dtype);
        let data = input
            .values()
            .iter()
            .map(|v| {
                let scaled = c.v_mul(v, &sixth)?;
                let shifted = c.v_add(&scaled, &half)?;
                clamp(c, &shifted, 0.0, 1.0)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Tensor::from_values(input.shape(), data)
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        let data = input.data().iter().map(|&x| (x / 6.0 + 0.5).clamp(0.0, 1.0)).collect();
        PlainTensor::from_vec(input.shape(), data)
    }

    fn name(&self) -> &'static str {
        "HardSigmoid"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        Ok(input.to_vec())
    }
}

impl Module for HardTanh {
    fn forward(&self, c: &mut Circuit, input: &Tensor) -> Result<Tensor, TorchError> {
        let data =
            input.values().iter().map(|v| clamp(c, v, -1.0, 1.0)).collect::<Result<Vec<_>, _>>()?;
        Tensor::from_values(input.shape(), data)
    }

    fn forward_plain(&self, input: &PlainTensor) -> Result<PlainTensor, TorchError> {
        let data = input.data().iter().map(|&x| x.clamp(-1.0, 1.0)).collect();
        PlainTensor::from_vec(input.shape(), data)
    }

    fn name(&self) -> &'static str {
        "HardTanh"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, TorchError> {
        Ok(input.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_layer_against_plain;
    use super::*;
    use pytfhe_hdl::DType;

    const DT: DType = DType::Fixed { width: 14, frac: 8 };

    #[test]
    fn hard_sigmoid_matches_plain() {
        let input =
            PlainTensor::from_vec(&[7], vec![-10.0, -3.0, -1.5, 0.0, 1.5, 3.0, 10.0]).unwrap();
        check_layer_against_plain(&HardSigmoid::new(), &[7], DT, &input, 4.0 * DT.resolution());
    }

    #[test]
    fn hard_tanh_matches_plain() {
        let input = PlainTensor::from_vec(&[5], vec![-5.0, -1.0, 0.25, 1.0, 5.0]).unwrap();
        check_layer_against_plain(&HardTanh::new(), &[5], DT, &input, 2.0 * DT.resolution());
    }

    #[test]
    fn saturation_regions_are_exact() {
        let hs = HardSigmoid::new();
        let out =
            hs.forward_plain(&PlainTensor::from_vec(&[2], vec![-100.0, 100.0]).unwrap()).unwrap();
        assert_eq!(out.data(), &[0.0, 1.0]);
        let ht = HardTanh::new();
        let out =
            ht.forward_plain(&PlainTensor::from_vec(&[2], vec![-100.0, 100.0]).unwrap()).unwrap();
        assert_eq!(out.data(), &[-1.0, 1.0]);
    }

    #[test]
    fn float_dtype_works_too() {
        let dtype = DType::Float { exp: 6, man: 7 };
        let input = PlainTensor::from_vec(&[4], vec![-2.0, -0.5, 0.5, 2.0]).unwrap();
        check_layer_against_plain(&HardTanh::new(), &[4], dtype, &input, 0.05);
    }
}
