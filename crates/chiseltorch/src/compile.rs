//! Model compilation: ChiselTorch model → gate netlist with typed I/O
//! metadata (Step 1 + Step 2 of the paper's Figure 2, fused — see
//! DESIGN.md on the Chisel/Verilog/Yosys substitution).

use crate::error::TorchError;
use crate::nn::Module;
use crate::tensor::Tensor;
use pytfhe_hdl::{Circuit, DType};
use pytfhe_netlist::opt::{optimize, OptConfig};
use pytfhe_netlist::Netlist;

/// A compiled model: the optimized netlist plus everything a client needs
/// to encode inputs and decode outputs.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    netlist: Netlist,
    dtype: DType,
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
}

impl CompiledModel {
    /// The gate netlist (topologically ordered, optimized).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consumes the model, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// The model data type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The input tensor shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The output tensor shape.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// Quantizes a row-major input tensor into the program's input bits.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the input shape's element count.
    pub fn encode_input(&self, values: &[f64]) -> Vec<bool> {
        let n: usize = self.input_shape.iter().product();
        assert_eq!(values.len(), n, "expected {n} input elements");
        values.iter().flat_map(|&v| self.dtype.encode_f64(v)).collect()
    }

    /// Decodes the program's output bits into a row-major tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not match the output width.
    pub fn decode_output(&self, bits: &[bool]) -> Vec<f64> {
        let n: usize = self.output_shape.iter().product();
        let w = self.dtype.width();
        assert_eq!(bits.len(), n * w, "expected {} output bits", n * w);
        bits.chunks(w).map(|ch| self.dtype.decode_f64(ch)).collect()
    }

    /// Convenience: run the model on plaintext inputs through the netlist
    /// (the functional oracle for backend tests).
    pub fn eval_plain(&self, values: &[f64]) -> Vec<f64> {
        self.decode_output(&self.netlist.eval_plain(&self.encode_input(values)))
    }
}

/// Compiles `model` for inputs of `input_shape`, running the full netlist
/// optimization pipeline (the paper's augmented-Yosys step).
///
/// # Errors
///
/// Returns [`TorchError`] if the model rejects the input shape or the
/// netlist fails to build.
pub fn compile(
    model: &crate::nn::Sequential,
    input_shape: &[usize],
) -> Result<CompiledModel, TorchError> {
    compile_with(model, input_shape, model.dtype(), &OptConfig::default())
}

/// Compiles an arbitrary [`Module`] with explicit dtype and optimization
/// configuration.
///
/// # Errors
///
/// Returns [`TorchError`] if the model rejects the input shape or the
/// netlist fails to build.
pub fn compile_with(
    model: &dyn Module,
    input_shape: &[usize],
    dtype: DType,
    opt: &OptConfig,
) -> Result<CompiledModel, TorchError> {
    let _span =
        pytfhe_telemetry::span_with("compile", || format!("compile: shape {input_shape:?}"));
    let mut c = Circuit::new();
    let input = Tensor::input(&mut c, "input", input_shape, dtype);
    let output = model.forward(&mut c, &input)?;
    let output_shape = output.shape().to_vec();
    output.output(&mut c, "output");
    let elaborate_span = pytfhe_telemetry::span("compile", "elaborate circuit");
    let netlist = c.finish().map_err(TorchError::Hdl)?;
    elaborate_span.end();
    let opt_span = pytfhe_telemetry::span_with("compile", || {
        format!("optimize netlist: {} gates", netlist.num_gates())
    });
    let (netlist, _) =
        optimize(&netlist, opt).map_err(|e| TorchError::Hdl(pytfhe_hdl::HdlError::Netlist(e)))?;
    opt_span.end();
    if pytfhe_telemetry::enabled() {
        let m = pytfhe_telemetry::metrics();
        m.gauge_set("compile_netlist_gates", netlist.num_gates() as f64);
        m.gauge_set("compile_netlist_bootstrapped_gates", netlist.num_bootstrapped_gates() as f64);
    }
    Ok(CompiledModel { netlist, dtype, input_shape: input_shape.to_vec(), output_shape })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn;
    use crate::plain::PlainTensor;

    #[test]
    fn compile_mnist_style_model() {
        let dtype = DType::Fixed { width: 10, frac: 4 };
        let model = nn::Sequential::new(dtype)
            .add(nn::Conv2d::new(1, 1, 2, 1))
            .add(nn::ReLU::new())
            .add(nn::MaxPool2d::new(2, 1))
            .add(nn::Flatten::new())
            .add(nn::Linear::new(4, 3));
        let compiled = compile(&model, &[1, 4, 4]).unwrap();
        assert_eq!(compiled.output_shape(), &[3]);
        assert_eq!(compiled.dtype(), dtype);
        assert!(compiled.netlist().num_gates() > 100, "real circuit expected");

        // Functional check against the plain oracle on a quantized input.
        let input = PlainTensor::random(&[1, 4, 4], 1.0, 71);
        let q: Vec<f64> =
            input.data().iter().map(|&v| dtype.decode_f64(&dtype.encode_f64(v))).collect();
        let want = model.forward_plain(&PlainTensor::from_vec(&[1, 4, 4], q).unwrap()).unwrap();
        let got = compiled.eval_plain(input.data());
        for (g, w) in got.iter().zip(want.data()) {
            assert!((g - w).abs() < 0.6, "got {g}, want {w}");
        }
    }

    #[test]
    fn optimization_shrinks_the_netlist() {
        let dtype = DType::Fixed { width: 8, frac: 4 };
        let model = nn::Sequential::new(dtype).add(nn::Linear::new(4, 2));
        let unopt = compile_with(&model, &[4], dtype, &OptConfig::none()).unwrap();
        let opt = compile(&model, &[4]).unwrap();
        assert!(
            opt.netlist().num_bootstrapped_gates() <= unopt.netlist().num_bootstrapped_gates(),
            "optimization never grows the circuit"
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let dtype = DType::SInt(8);
        let model = nn::Sequential::new(dtype).add(nn::ReLU::new());
        let compiled = compile(&model, &[3]).unwrap();
        let out = compiled.eval_plain(&[-5.0, 2.0, 7.0]);
        assert_eq!(out, vec![0.0, 2.0, 7.0]);
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let dtype = DType::SInt(8);
        let model = nn::Sequential::new(dtype).add(nn::Linear::new(4, 2));
        assert!(compile(&model, &[5]).is_err());
    }
}
