use crate::error::TorchError;
use std::fmt;

/// A plaintext tensor of `f64` values — model weights, reference inputs,
/// and the oracle data type every circuit layer is validated against.
#[derive(Debug, Clone, PartialEq)]
pub struct PlainTensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl PlainTensor {
    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        PlainTensor { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TorchError::ShapeMismatch`] if the buffer length does not
    /// match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Result<Self, TorchError> {
        let n: usize = shape.iter().product();
        if data.len() != n {
            return Err(TorchError::ShapeMismatch {
                expected: format!("{n} elements for shape {shape:?}"),
                got: vec![data.len()],
                op: "from_vec",
            });
        }
        Ok(PlainTensor { shape: shape.to_vec(), data })
    }

    /// Deterministic pseudo-random init in `[-bound, bound]` — the
    /// reproducible stand-in for `torch.nn.init.kaiming_uniform_`.
    pub fn random(shape: &[usize], bound: f64, seed: u64) -> Self {
        let n: usize = shape.iter().product();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * bound
            })
            .collect();
        PlainTensor { shape: shape.to_vec(), data }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The element at the given multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or bounds are wrong.
    pub fn at(&self, index: &[usize]) -> f64 {
        self.data[flat_index(&self.shape, index)]
    }

    /// Sets the element at the given multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or bounds are wrong.
    pub fn set(&mut self, index: &[usize], value: f64) {
        let i = flat_index(&self.shape, index);
        self.data[i] = value;
    }
}

impl fmt::Display for PlainTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PlainTensor{:?}", self.shape)
    }
}

/// Row-major flattening of a multi-index.
///
/// # Panics
///
/// Panics on rank mismatch or out-of-bounds coordinates.
pub(crate) fn flat_index(shape: &[usize], index: &[usize]) -> usize {
    assert_eq!(shape.len(), index.len(), "index rank mismatch");
    let mut flat = 0;
    for (d, (&s, &i)) in shape.iter().zip(index).enumerate() {
        assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
        flat = flat * s + i;
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major() {
        let t = PlainTensor::from_vec(&[2, 3], (0..6).map(f64::from).collect()).unwrap();
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(PlainTensor::from_vec(&[2, 2], vec![1.0]).is_err());
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = PlainTensor::random(&[4, 4], 0.5, 7);
        let b = PlainTensor::random(&[4, 4], 0.5, 7);
        let c = PlainTensor::random(&[4, 4], 0.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|x| x.abs() <= 0.5));
    }

    #[test]
    fn set_and_at() {
        let mut t = PlainTensor::zeros(&[2, 2]);
        t.set(&[1, 1], 4.5);
        assert_eq!(t.at(&[1, 1]), 4.5);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }
}
