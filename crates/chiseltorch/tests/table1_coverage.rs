//! Table I coverage: every neural-network layer and tensor primitive the
//! paper lists as "ChiselTorch Supported Pre-Built Neural Network
//! Primitives" exists, builds circuits, and agrees with its plaintext
//! reference.

use chiseltorch::nn::{self, Module};
use chiseltorch::{compile, ops, Circuit, DType, PlainTensor, Tensor};

const DT: DType = DType::Fixed { width: 12, frac: 5 };

#[test]
fn every_table1_layer_compiles() {
    // Left column of Table I: Conv1d/Conv2d, BatchNorm1d/BatchNorm2d,
    // Linear, ReLU, MaxPool1d/AvgPool1d, MaxPool2d/AvgPool2d, Flatten.
    let checks: Vec<(Box<dyn Module>, Vec<usize>)> = vec![
        (Box::new(nn::Conv1d::new(1, 2, 3, 1)), vec![1, 8]),
        (Box::new(nn::Conv2d::new(1, 1, 2, 1)), vec![1, 4, 4]),
        (Box::new(nn::BatchNorm1d::new(2)), vec![2, 4]),
        (Box::new(nn::BatchNorm2d::new(1)), vec![1, 3, 3]),
        (Box::new(nn::Linear::new(6, 3)), vec![6]),
        (Box::new(nn::ReLU::new()), vec![5]),
        (Box::new(nn::MaxPool1d::new(2, 1)), vec![1, 6]),
        (Box::new(nn::AvgPool1d::new(2, 2)), vec![1, 6]),
        (Box::new(nn::MaxPool2d::new(2, 1)), vec![1, 4, 4]),
        (Box::new(nn::AvgPool2d::new(2, 2)), vec![1, 4, 4]),
        (Box::new(nn::Flatten::new()), vec![2, 3]),
        (Box::new(nn::SelfAttention::new(2, 4)), vec![2, 4]),
    ];
    for (layer, shape) in checks {
        let name = layer.name();
        let model = nn::Sequential::new(DT).add_boxed(layer);
        let compiled =
            compile(&model, &shape).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        // Functional smoke: the compiled circuit approximates the plain
        // forward pass on a random input.
        let n: usize = shape.iter().product();
        let input: Vec<f64> = (0..n).map(|i| (i as f64 - n as f64 / 2.0) / n as f64).collect();
        let q: Vec<f64> = input.iter().map(|&v| DT.decode_f64(&DT.encode_f64(v))).collect();
        let want = model
            .forward_plain(&PlainTensor::from_vec(&shape, q).unwrap())
            .unwrap_or_else(|e| panic!("{name} plain forward: {e}"));
        let got = compiled.eval_plain(&input);
        assert_eq!(got.len(), want.len(), "{name} output arity");
        for (g, w) in got.iter().zip(want.data()) {
            assert!((g - w).abs() < 0.5, "{name}: {g} vs {w}");
        }
    }
}

#[test]
fn every_table1_tensor_primitive_exists() {
    // Right column of Table I: matmul, dot, comparisons, view/reshape/
    // transpose/pad, sum, prod, argmax/argmin, +,-,*,/, max, min.
    let mut c = Circuit::new();
    let a = Tensor::input(&mut c, "a", &[2, 2], DT);
    let b = Tensor::input(&mut c, "b", &[2, 2], DT);
    let v1 = Tensor::input(&mut c, "v1", &[4], DT);
    let v2 = Tensor::input(&mut c, "v2", &[4], DT);

    let mm = ops::matmul(&mut c, &a, &b).expect("matmul");
    let _dot = ops::dot(&mut c, &v1, &v2).expect("dot");
    for op in [
        ops::CmpOp::Eq,
        ops::CmpOp::Ne,
        ops::CmpOp::Lt,
        ops::CmpOp::Le,
        ops::CmpOp::Gt,
        ops::CmpOp::Ge,
    ] {
        let _ = ops::cmp(&mut c, op, &a, &b).expect("cmp");
    }
    let _view = a.reshape(&[4]).expect("view/reshape");
    let _t = a.transpose().expect("transpose");
    let _p = a.pad2d(&mut c, 1).expect("pad");
    let _sum = ops::sum(&mut c, &a).expect("sum");
    let _prod = ops::prod(&mut c, &a).expect("prod");
    let _mean = ops::mean(&mut c, &a).expect("mean");
    let _amax = ops::argmax(&mut c, &v1).expect("argmax");
    let _amin = ops::argmin(&mut c, &v1).expect("argmin");
    let _add = ops::add(&mut c, &a, &b).expect("+");
    let _sub = ops::sub(&mut c, &a, &b).expect("-");
    let _mul = ops::mul(&mut c, &a, &b).expect("*");
    let _div = ops::div(&mut c, &a, &b).expect("/");
    let _max = ops::max(&mut c, &a, &b).expect("max");
    let _min = ops::min(&mut c, &a, &b).expect("min");

    mm.output(&mut c, "out");
    let nl = c.finish().expect("netlist");
    assert!(nl.num_gates() > 0);
}

#[test]
fn figure_4_model_declares_exactly_like_the_paper() {
    // Figure 4(b): Sequential(Seq(Conv2d, ReLU, MaxPool2d, Flatten,
    // Linear), dtype = Float(8, 8)).
    let mnist_model = nn::Sequential::new(DType::Float { exp: 8, man: 8 })
        .add(nn::Conv2d::new(1, 1, 3, 1))
        .add(nn::ReLU::new())
        .add(nn::MaxPool2d::new(3, 1))
        .add(nn::Flatten::new())
        .add(nn::Linear::new(36, 10));
    assert_eq!(mnist_model.output_shape(&[1, 10, 10]).unwrap(), vec![10]);
    assert_eq!(mnist_model.dtype().to_string(), "Float(8, 8)");
}
