//! Combinatorial and simulation workloads: *Bubble Sort*, *Edit
//! Distance*, *Kepler Calculation*, *Parrondo's paradox* and *Triangle
//! Count*.

use crate::spec::util::{output_words, sum_words};
use crate::spec::{Benchmark, Lcg, Scale};
use pytfhe_hdl::{Circuit, DType, FloatFormat, Word};

/// *Bubble Sort*: a full compare-exchange sorting network over encrypted
/// integers (sorting must be data-oblivious, so every pass runs).
pub fn bubble_sort(scale: Scale) -> Benchmark {
    let n = scale.pick(5, 16);
    let w = 8;
    let mut c = Circuit::new();
    let word = c.input_word("input", n * w);
    let mut elems: Vec<Word> = (0..n).map(|i| word.slice(i * w, (i + 1) * w)).collect();
    for pass in 0..n {
        for j in 0..n - 1 - pass {
            let lo = c.min_int(&elems[j], &elems[j + 1], false).expect("w");
            let hi = c.max_int(&elems[j], &elems[j + 1], false).expect("w");
            elems[j] = lo;
            elems[j + 1] = hi;
        }
    }
    output_words(&mut c, &elems);
    Benchmark::new(
        "BubbleSort",
        "oblivious compare-exchange sort of an encrypted vector",
        c.finish().expect("netlist"),
        DType::UInt(w),
        DType::UInt(w),
        Box::new(move |input: &[f64]| {
            let mut v = input.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..n).map(|_| rng.below(256) as f64).collect()
        }),
        0.0,
    )
}

/// *Edit Distance*: Levenshtein distance between two encrypted strings,
/// with the dynamic program fully unrolled into a circuit.
pub fn edit_distance(scale: Scale) -> Benchmark {
    let l = scale.pick(4, 8);
    let cw = 4; // character width (16-symbol alphabet)
    let dw = 6; // distance width
    let mut c = Circuit::new();
    let word = c.input_word("input", 2 * l * cw);
    let chr =
        |c_: &Word, side: usize, i: usize| c_.slice((side * l + i) * cw, (side * l + i + 1) * cw);
    // dp[i][j]: distance of prefixes a[..i], b[..j].
    let mut dp: Vec<Vec<Word>> = vec![vec![Word::zeros(dw); l + 1]; l + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = Word::constant_u64(i as u64, dw);
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = Word::constant_u64(j as u64, dw);
    }
    let one = Word::constant_u64(1, dw);
    for i in 1..=l {
        for j in 1..=l {
            let a_i = chr(&word, 0, i - 1);
            let b_j = chr(&word, 1, j - 1);
            let del = c.add(&dp[i - 1][j], &one);
            let ins = c.add(&dp[i][j - 1], &one);
            let ne = c.ne(&a_i, &b_j).expect("w");
            let sub_cost = Word::from_bits(vec![ne]).zext(dw);
            let sub = c.add(&dp[i - 1][j - 1], &sub_cost);
            let m1 = c.min_int(&del, &ins, false).expect("w");
            dp[i][j] = c.min_int(&m1, &sub, false).expect("w");
        }
    }
    output_words(&mut c, &[dp[l][l].clone()]);
    Benchmark::new(
        "EditDistance",
        "Levenshtein distance via a fully unrolled dynamic program",
        c.finish().expect("netlist"),
        DType::UInt(cw),
        DType::UInt(dw),
        Box::new(move |input: &[f64]| {
            let (a, b) = input.split_at(l);
            let mut dp = vec![vec![0u64; l + 1]; l + 1];
            for (i, row) in dp.iter_mut().enumerate() {
                row[0] = i as u64;
            }
            for (j, cell) in dp[0].iter_mut().enumerate() {
                *cell = j as u64;
            }
            for i in 1..=l {
                for j in 1..=l {
                    let cost = u64::from(a[i - 1] != b[j - 1]);
                    dp[i][j] =
                        (dp[i - 1][j] + 1).min(dp[i][j - 1] + 1).min(dp[i - 1][j - 1] + cost);
                }
            }
            vec![dp[l][l] as f64]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..2 * l).map(|_| rng.below(4) as f64).collect()
        }),
        0.0,
    )
}

/// *Kepler Calculation*: Newtonian gravity `F = G m1 m2 / r^2` in the
/// paper's `Float(8, 8)` bfloat16 format.
pub fn kepler_calc(scale: Scale) -> Benchmark {
    let fmt = match scale {
        Scale::Test => FloatFormat::new(8, 8),
        Scale::Paper => FloatFormat::half(),
    };
    let dtype = DType::Float { exp: fmt.exp_bits, man: fmt.man_bits };
    let g = 0.0667; // scaled gravitational constant
    let mut c = Circuit::new();
    let word = c.input_word("input", 3 * fmt.width());
    let m1 = word.slice(0, fmt.width());
    let m2 = word.slice(fmt.width(), 2 * fmt.width());
    let r = word.slice(2 * fmt.width(), 3 * fmt.width());
    let gw = Word::from_bits(fmt.encode_f64(g).into_iter().map(pytfhe_hdl::Bit::Const).collect());
    let mm = c.fmul(fmt, &m1, &m2);
    let gmm = c.fmul(fmt, &mm, &gw);
    let r2 = c.fmul(fmt, &r, &r);
    let f = c.fdiv(fmt, &gmm, &r2);
    output_words(&mut c, &[f]);
    Benchmark::new(
        "Kepler",
        "Newtonian gravity in parameterizable floating point",
        c.finish().expect("netlist"),
        dtype,
        dtype,
        Box::new(move |input: &[f64]| {
            let q = |x: f64| fmt.decode_f64(&fmt.encode_f64(x));
            vec![q(input[0]) * q(input[1]) * q(g) / (q(input[2]) * q(input[2]))]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            vec![
                1.0 + rng.below(192) as f64 / 64.0,
                1.0 + rng.below(192) as f64 / 64.0,
                1.0 + rng.below(128) as f64 / 64.0,
            ]
        }),
        0.25,
    )
}

/// *Parrondo's paradox*: a branch-free simulation of the alternating
/// losing-games-that-win betting sequence — serial, like the paper's
/// Nsight analysis of it notes (Section V-A).
pub fn parrando(scale: Scale) -> Benchmark {
    let rounds = scale.pick(6, 24);
    let cw = 4; // coin width
    let kw = 7; // capital width
    let start = 32u64; // capital offset so it never underflows
    let mut c = Circuit::new();
    let word = c.input_word("input", rounds * cw);
    let mut capital = Word::constant_u64(start, kw);
    let one = Word::constant_u64(1, kw);
    let three = Word::constant_u64(3, kw);
    for t in 0..rounds {
        let coin = word.slice(t * cw, (t + 1) * cw);
        let win = if t % 2 == 0 {
            // Game A: win with probability 7/16.
            let th = Word::constant_u64(7, cw);
            c.lt_unsigned(&coin, &th).expect("w")
        } else {
            // Game B: threshold depends on capital % 3.
            let (_, m3) = c.div_unsigned(&capital, &three);
            let zero = Word::zeros(kw);
            let is_mult3 = c.eq(&m3, &zero).expect("w");
            let th_lo = Word::constant_u64(2, cw);
            let th_hi = Word::constant_u64(12, cw);
            let th = c.mux_word(is_mult3, &th_lo, &th_hi).expect("w");
            c.lt_unsigned(&coin, &th).expect("w")
        };
        let up = c.add(&capital, &one);
        let down = c.sub(&capital, &one);
        capital = c.mux_word(win, &up, &down).expect("w");
    }
    output_words(&mut c, &[capital]);
    Benchmark::new(
        "Parrando",
        "Parrondo's alternating-games capital simulation",
        c.finish().expect("netlist"),
        DType::UInt(cw),
        DType::UInt(kw),
        Box::new(move |input: &[f64]| {
            let mut capital = start as i64;
            for (t, &coin) in input.iter().enumerate() {
                let coin = coin as u64;
                let win = if t % 2 == 0 {
                    coin < 7
                } else if capital % 3 == 0 {
                    coin < 2
                } else {
                    coin < 12
                };
                capital += if win { 1 } else { -1 };
            }
            vec![capital as f64]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..rounds).map(|_| rng.below(16) as f64).collect()
        }),
        0.0,
    )
}

/// *Triangle Count*: number of triangles in an encrypted graph given as
/// an upper-triangular adjacency bit vector.
pub fn triangle_count(scale: Scale) -> Benchmark {
    let n = scale.pick(5, 12);
    let edges = n * (n - 1) / 2;
    let out_w = 9;
    let mut c = Circuit::new();
    let word = c.input_word("input", edges);
    // edge(i, j) for i < j at offset i*n - i*(i+1)/2 + (j - i - 1).
    let eidx = move |i: usize, j: usize| i * n - i * (i + 1) / 2 + (j - i - 1);
    let mut tri_bits = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            for k in j + 1..n {
                let ij = word.bit(eidx(i, j));
                let jk = word.bit(eidx(j, k));
                let ik = word.bit(eidx(i, k));
                let t1 = c.and(ij, jk);
                let t = c.and(t1, ik);
                tri_bits.push(Word::from_bits(vec![t]).zext(out_w));
            }
        }
    }
    let count = sum_words(&mut c, &tri_bits);
    output_words(&mut c, &[count]);
    Benchmark::new(
        "TriangleCount",
        "triangle counting over an encrypted adjacency matrix",
        c.finish().expect("netlist"),
        DType::UInt(1),
        DType::UInt(out_w),
        Box::new(move |input: &[f64]| {
            let edge = |i: usize, j: usize| input[eidx(i, j)] != 0.0;
            let mut count = 0u64;
            for i in 0..n {
                for j in i + 1..n {
                    for k in j + 1..n {
                        if edge(i, j) && edge(j, k) && edge(i, k) {
                            count += 1;
                        }
                    }
                }
            }
            vec![count as f64]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..edges).map(|_| f64::from(u8::from(rng.below(3) > 0))).collect()
        }),
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_seeds(b: &Benchmark, seeds: std::ops::Range<u64>) {
        for seed in seeds {
            let input = b.sample_input(seed);
            b.check_detailed(&input).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn bubble_sort_matches_oracle() {
        check_seeds(&bubble_sort(Scale::Test), 0..8);
    }

    #[test]
    fn edit_distance_matches_oracle() {
        let b = edit_distance(Scale::Test);
        check_seeds(&b, 0..8);
        // Identical strings: distance 0; fully different: distance L.
        b.check_detailed(&[1.0, 2.0, 3.0, 0.0, 1.0, 2.0, 3.0, 0.0]).unwrap();
        let out = b.decode_output(
            &b.netlist().eval_plain(&b.encode_input(&[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0])),
        );
        assert_eq!(out[0], 4.0);
    }

    #[test]
    fn kepler_matches_oracle() {
        check_seeds(&kepler_calc(Scale::Test), 0..8);
    }

    #[test]
    fn parrando_matches_oracle() {
        check_seeds(&parrando(Scale::Test), 0..10);
    }

    #[test]
    fn triangle_count_matches_oracle() {
        let b = triangle_count(Scale::Test);
        check_seeds(&b, 0..8);
        // Complete graph on 5 nodes: C(5,3) = 10 triangles.
        let out = b.decode_output(&b.netlist().eval_plain(&b.encode_input(&[1.0; 10])));
        assert_eq!(out[0], 10.0);
    }
}
