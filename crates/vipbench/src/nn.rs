//! Neural-network workloads: the three MNIST CNNs (`MNIST_S` from
//! VIP-Bench, plus the paper's larger `MNIST_M` and `MNIST_L` with two
//! and three convolutional kernels, Section V-A) and the two
//! self-attention layers (`Attention_S` with hidden size 32,
//! `Attention_L` with hidden size 64).
//!
//! All five are built with the ChiselTorch frontend — these are exactly
//! the models the paper compiles through the PyTFHE flow.

use crate::spec::{Benchmark, Lcg, Scale};
use chiseltorch::nn::Module;
use chiseltorch::{compile, nn, DType, PlainTensor};

/// Quantizes a model's effect by quantizing inputs like the client and
/// comparing to the plain forward pass; the tolerance covers per-term
/// truncation.
fn nn_benchmark(
    name: &'static str,
    description: &'static str,
    model: nn::Sequential,
    input_shape: Vec<usize>,
    input_bound: f64,
    tolerance: f64,
) -> Benchmark {
    let dtype = model.dtype();
    let compiled = compile(&model, &input_shape).expect("model compiles");
    let n: usize = input_shape.iter().product();
    let shape_for_oracle = input_shape.clone();
    Benchmark::new(
        name,
        description,
        compiled.netlist().clone(),
        dtype,
        dtype,
        Box::new(move |input: &[f64]| {
            let q: Vec<f64> =
                input.iter().map(|&v| dtype.decode_f64(&dtype.encode_f64(v))).collect();
            let t = PlainTensor::from_vec(&shape_for_oracle, q).expect("shape");
            model.forward_plain(&t).expect("plain forward").data().to_vec()
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..n).map(|_| rng.sym(input_bound)).collect()
        }),
        tolerance,
    )
}

/// `MNIST_S` — the VIP-Bench MNIST network: one convolutional kernel
/// (the paper's Figure 4 structure), declared in ChiselTorch.
pub fn mnist_s(scale: Scale) -> Benchmark {
    let dtype = DType::Fixed { width: 12, frac: 6 };
    let (model, shape) = match scale {
        Scale::Test => (
            nn::Sequential::new(dtype)
                .add(nn::Conv2d::new(1, 1, 3, 1))
                .add(nn::ReLU::new())
                .add(nn::MaxPool2d::new(2, 1))
                .add(nn::Flatten::new())
                .add(nn::Linear::new(9, 4)),
            vec![1, 6, 6],
        ),
        Scale::Paper => (
            nn::Sequential::new(dtype)
                .add(nn::Conv2d::new(1, 1, 3, 1))
                .add(nn::ReLU::new())
                .add(nn::MaxPool2d::new(3, 1))
                .add(nn::Flatten::new())
                .add(nn::Linear::new(36, 10)),
            vec![1, 10, 10],
        ),
    };
    nn_benchmark("MNIST_S", "VIP-Bench MNIST CNN (1 convolutional kernel)", model, shape, 1.0, 1.0)
}

/// `MNIST_M` — the paper's medium CNN with two convolutional kernels.
pub fn mnist_m(scale: Scale) -> Benchmark {
    let dtype = DType::Fixed { width: 12, frac: 6 };
    let (model, shape) = match scale {
        Scale::Test => (
            nn::Sequential::new(dtype)
                .add(nn::Conv2d::new(1, 2, 3, 1))
                .add(nn::ReLU::new())
                .add(nn::MaxPool2d::new(2, 1))
                .add(nn::Flatten::new())
                .add(nn::Linear::new(18, 4)),
            vec![1, 6, 6],
        ),
        Scale::Paper => (
            nn::Sequential::new(dtype)
                .add(nn::Conv2d::new(1, 2, 3, 1))
                .add(nn::ReLU::new())
                .add(nn::MaxPool2d::new(3, 1))
                .add(nn::Flatten::new())
                .add(nn::Linear::new(72, 10)),
            vec![1, 10, 10],
        ),
    };
    nn_benchmark("MNIST_M", "medium MNIST CNN (2 convolutional kernels)", model, shape, 1.0, 1.2)
}

/// `MNIST_L` — the paper's large CNN with three convolutional kernels.
pub fn mnist_l(scale: Scale) -> Benchmark {
    let dtype = DType::Fixed { width: 12, frac: 6 };
    let (model, shape) = match scale {
        Scale::Test => (
            nn::Sequential::new(dtype)
                .add(nn::Conv2d::new(1, 3, 3, 1))
                .add(nn::ReLU::new())
                .add(nn::MaxPool2d::new(2, 1))
                .add(nn::Flatten::new())
                .add(nn::Linear::new(27, 4)),
            vec![1, 6, 6],
        ),
        Scale::Paper => (
            nn::Sequential::new(dtype)
                .add(nn::Conv2d::new(1, 3, 3, 1))
                .add(nn::ReLU::new())
                .add(nn::MaxPool2d::new(3, 1))
                .add(nn::Flatten::new())
                .add(nn::Linear::new(192, 10)),
            vec![1, 12, 12],
        ),
    };
    nn_benchmark("MNIST_L", "large MNIST CNN (3 convolutional kernels)", model, shape, 1.0, 1.5)
}

fn attention(
    name: &'static str,
    description: &'static str,
    seq: usize,
    hidden: usize,
    tolerance: f64,
) -> Benchmark {
    let dtype = DType::Fixed { width: 16, frac: 8 };
    let model = nn::Sequential::new(dtype).add(nn::SelfAttention::new(seq, hidden));
    nn_benchmark(name, description, model, vec![seq, hidden], 1.0, tolerance)
}

/// `Attention_S` — the paper's self-attention layer with hidden size 32.
pub fn attention_s(scale: Scale) -> Benchmark {
    match scale {
        Scale::Test => attention("Attention_S", "self-attention layer (hidden 32)", 2, 4, 0.15),
        Scale::Paper => attention("Attention_S", "self-attention layer (hidden 32)", 4, 32, 0.25),
    }
}

/// `Attention_L` — the paper's self-attention layer with hidden size 64.
pub fn attention_l(scale: Scale) -> Benchmark {
    match scale {
        Scale::Test => attention("Attention_L", "self-attention layer (hidden 64)", 2, 6, 0.15),
        Scale::Paper => attention("Attention_L", "self-attention layer (hidden 64)", 4, 64, 0.3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_seeds(b: &Benchmark, seeds: std::ops::Range<u64>) {
        for seed in seeds {
            let input = b.sample_input(seed);
            b.check_detailed(&input).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn mnist_s_matches_oracle() {
        check_seeds(&mnist_s(Scale::Test), 0..3);
    }

    #[test]
    fn mnist_m_matches_oracle() {
        check_seeds(&mnist_m(Scale::Test), 0..2);
    }

    #[test]
    fn mnist_l_matches_oracle() {
        check_seeds(&mnist_l(Scale::Test), 0..2);
    }

    #[test]
    fn attention_matches_oracle() {
        check_seeds(&attention_s(Scale::Test), 0..2);
        check_seeds(&attention_l(Scale::Test), 0..2);
    }

    #[test]
    fn model_sizes_are_ordered() {
        let s = mnist_s(Scale::Test).netlist().num_bootstrapped_gates();
        let m = mnist_m(Scale::Test).netlist().num_bootstrapped_gates();
        let l = mnist_l(Scale::Test).netlist().num_bootstrapped_gates();
        assert!(s < m && m < l, "sizes: S={s} M={m} L={l}");
    }
}
