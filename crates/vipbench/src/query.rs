//! Query-and-search workloads: *Distinctness*, *Filtered Query*, *kNN*,
//! *Primality Test* and *Set Intersection*.
//!
//! These exercise the comparison/selection side of the circuit library:
//! wide equality trees, range predicates and data-oblivious argmin.

use crate::spec::util::{output_words, sum_words};
use crate::spec::{Benchmark, Lcg, Scale};
use pytfhe_hdl::{Circuit, DType, Word};

/// *Distinctness*: is every element of an encrypted vector unique?
pub fn distinctness(scale: Scale) -> Benchmark {
    let n = scale.pick(6, 24);
    let w = 8;
    let mut c = Circuit::new();
    let word = c.input_word("input", n * w);
    let elems: Vec<Word> = (0..n).map(|i| word.slice(i * w, (i + 1) * w)).collect();
    let mut all_distinct = pytfhe_hdl::Bit::ONE;
    for i in 0..n {
        for j in i + 1..n {
            let ne = c.ne(&elems[i], &elems[j]).expect("same widths");
            all_distinct = c.and(all_distinct, ne);
        }
    }
    output_words(&mut c, &[Word::from_bits(vec![all_distinct])]);
    Benchmark::new(
        "Distinctness",
        "whether all encrypted elements are pairwise distinct",
        c.finish().expect("netlist"),
        DType::UInt(w),
        DType::UInt(1),
        Box::new(move |input: &[f64]| {
            let mut seen = std::collections::HashSet::new();
            let distinct = input.iter().all(|&x| seen.insert(x as u64));
            vec![f64::from(u8::from(distinct))]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            // Half the seeds produce a deliberate duplicate.
            let mut v: Vec<f64> = (0..n).map(|_| rng.below(256) as f64).collect();
            if seed % 2 == 0 && n >= 2 {
                v[n - 1] = v[0];
            }
            v
        }),
        0.0,
    )
}

/// *Filtered Query*: sum of record values whose encrypted key falls in an
/// encrypted `[lo, hi]` range.
pub fn filtered_query(scale: Scale) -> Benchmark {
    let n = scale.pick(6, 32);
    let w = 8;
    let out_w = 16;
    let mut c = Circuit::new();
    // Layout: n values, n keys, lo, hi.
    let word = c.input_word("input", (2 * n + 2) * w);
    let field = |i: usize| word.slice(i * w, (i + 1) * w);
    let lo = field(2 * n);
    let hi = field(2 * n + 1);
    let mut terms = Vec::with_capacity(n);
    for i in 0..n {
        let value = field(i);
        let key = field(n + i);
        let ge_lo = c.le(&lo, &key, false).expect("w");
        let le_hi = c.le(&key, &hi, false).expect("w");
        let keep = c.and(ge_lo, le_hi);
        let masked: Word = value.bits().iter().map(|&b| c.and(b, keep)).collect();
        terms.push(masked.zext(out_w));
    }
    let total = sum_words(&mut c, &terms);
    output_words(&mut c, &[total]);
    Benchmark::new(
        "FilteredQuery",
        "range-filtered aggregation over encrypted records",
        c.finish().expect("netlist"),
        DType::UInt(w),
        DType::UInt(out_w),
        Box::new(move |input: &[f64]| {
            let lo = input[2 * n];
            let hi = input[2 * n + 1];
            let sum: f64 = (0..n)
                .filter(|&i| input[n + i] >= lo && input[n + i] <= hi)
                .map(|i| input[i])
                .sum();
            vec![sum]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            let mut v: Vec<f64> = (0..2 * n).map(|_| rng.below(256) as f64).collect();
            let a = rng.below(200);
            v.push(a as f64);
            v.push((a + rng.below(56)) as f64);
            v
        }),
        0.0,
    )
}

/// *kNN* (k = 1): index of the nearest stored point to an encrypted query
/// under L1 distance.
pub fn knn(scale: Scale) -> Benchmark {
    let n = scale.pick(4, 16);
    let w = 8;
    let out_w = 8;
    let mut c = Circuit::new();
    // Layout: n * (x, y) points, then qx, qy — all signed.
    let word = c.input_word("input", (2 * n + 2) * w);
    let field = |i: usize| word.slice(i * w, (i + 1) * w);
    let qx = field(2 * n);
    let qy = field(2 * n + 1);
    let mut dists = Vec::with_capacity(n);
    for i in 0..n {
        let px = field(2 * i);
        let py = field(2 * i + 1);
        // |px - qx| + |py - qy| in w+2 bits (no overflow).
        let dx = {
            let a = px.sext(w + 1);
            let b = qx.sext(w + 1);
            let d = c.sub(&a, &b);
            c.abs(&d)
        };
        let dy = {
            let a = py.sext(w + 1);
            let b = qy.sext(w + 1);
            let d = c.sub(&a, &b);
            c.abs(&d)
        };
        dists.push(c.add(&dx.zext(w + 2), &dy.zext(w + 2)));
    }
    let (_, idx) = c.argmin_int(&dists, false).expect("nonempty");
    output_words(&mut c, &[idx.zext(out_w)]);
    Benchmark::new(
        "kNN",
        "nearest neighbour of an encrypted query point (L1)",
        c.finish().expect("netlist"),
        DType::SInt(w),
        DType::UInt(out_w),
        Box::new(move |input: &[f64]| {
            let (qx, qy) = (input[2 * n], input[2 * n + 1]);
            let mut best = (f64::INFINITY, 0usize);
            for i in 0..n {
                let d = (input[2 * i] - qx).abs() + (input[2 * i + 1] - qy).abs();
                if d < best.0 {
                    best = (d, i);
                }
            }
            vec![best.1 as f64]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..2 * n + 2).map(|_| rng.sym(100.0).round()).collect()
        }),
        0.0,
    )
}

/// *Primality Test*: branch-free trial division of an encrypted integer
/// by the first primes.
pub fn primality(scale: Scale) -> Benchmark {
    let w = scale.pick(8, 10);
    const PRIMES: [u64; 11] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31];
    // Divisors up to sqrt(2^w) suffice: 16 for w=8, 32 for w=10.
    let divisors: Vec<u64> = PRIMES.iter().copied().take_while(|&p| p * p < (1 << w)).collect();
    let mut c = Circuit::new();
    let n_word = c.input_word("input", w);
    let mut composite = pytfhe_hdl::Bit::ZERO;
    for &d in &divisors {
        let dw = Word::constant_u64(d, w);
        let (_, rem) = c.div_unsigned(&n_word, &dw);
        let zero = Word::zeros(w);
        let divides = c.eq(&rem, &zero).expect("w");
        let gt_d = c.lt_unsigned(&dw, &n_word).expect("w");
        let witness = c.and(divides, gt_d);
        composite = c.or(composite, witness);
    }
    // prime = (n >= 2) && !composite
    let two = Word::constant_u64(2, w);
    let ge2 = c.le(&two, &n_word, false).expect("w");
    let not_comp = c.not(composite);
    let prime = c.and(ge2, not_comp);
    output_words(&mut c, &[Word::from_bits(vec![prime])]);
    let max = (1u64 << w) - 1;
    Benchmark::new(
        "Primality",
        "branch-free trial-division primality test",
        c.finish().expect("netlist"),
        DType::UInt(w),
        DType::UInt(1),
        Box::new(move |input: &[f64]| {
            let n = input[0] as u64;
            let prime = n >= 2 && (2..n).take_while(|d| d * d <= n).all(|d| !n.is_multiple_of(d));
            vec![f64::from(u8::from(prime))]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            vec![(rng.below(max) + 1) as f64]
        }),
        0.0,
    )
}

/// *Set Intersection*: cardinality of the intersection of two encrypted
/// sets.
pub fn set_intersection(scale: Scale) -> Benchmark {
    let n = scale.pick(4, 16);
    let w = 8;
    let out_w = 8;
    let mut c = Circuit::new();
    let word = c.input_word("input", 2 * n * w);
    let field = |i: usize| word.slice(i * w, (i + 1) * w);
    let mut hits = Vec::with_capacity(n);
    for i in 0..n {
        let a = field(i);
        let mut found = pytfhe_hdl::Bit::ZERO;
        for j in 0..n {
            let b = field(n + j);
            let eq = c.eq(&a, &b).expect("w");
            found = c.or(found, eq);
        }
        hits.push(Word::from_bits(vec![found]).zext(out_w));
    }
    let count = sum_words(&mut c, &hits);
    output_words(&mut c, &[count]);
    Benchmark::new(
        "SetIntersect",
        "cardinality of the intersection of two encrypted sets",
        c.finish().expect("netlist"),
        DType::UInt(w),
        DType::UInt(out_w),
        Box::new(move |input: &[f64]| {
            let (a, b) = input.split_at(n);
            let bs: std::collections::HashSet<u64> = b.iter().map(|&x| x as u64).collect();
            vec![a.iter().filter(|&&x| bs.contains(&(x as u64))).count() as f64]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            // Distinct elements per set so that cardinality is unambiguous.
            let mut a: Vec<u64> = Vec::new();
            while a.len() < n {
                let x = rng.below(64);
                if !a.contains(&x) {
                    a.push(x);
                }
            }
            let mut b: Vec<u64> = Vec::new();
            while b.len() < n {
                let x = rng.below(64);
                if !b.contains(&x) {
                    b.push(x);
                }
            }
            a.into_iter().chain(b).map(|x| x as f64).collect()
        }),
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_seeds(b: &Benchmark, seeds: std::ops::Range<u64>) {
        for seed in seeds {
            let input = b.sample_input(seed);
            b.check_detailed(&input).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn distinctness_matches_oracle() {
        check_seeds(&distinctness(Scale::Test), 0..10);
    }

    #[test]
    fn filtered_query_matches_oracle() {
        check_seeds(&filtered_query(Scale::Test), 0..10);
    }

    #[test]
    fn knn_matches_oracle() {
        check_seeds(&knn(Scale::Test), 0..10);
    }

    #[test]
    fn primality_matches_oracle() {
        let b = primality(Scale::Test);
        check_seeds(&b, 0..10);
        // Spot-check interesting values, including primes, squares of
        // primes, 1 and 2.
        for n in [1.0, 2.0, 3.0, 4.0, 9.0, 25.0, 49.0, 97.0, 121.0, 169.0, 255.0] {
            b.check_detailed(&[n]).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn set_intersection_matches_oracle() {
        check_seeds(&set_intersection(Scale::Test), 0..10);
    }
}
