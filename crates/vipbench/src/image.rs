//! Image-processing workloads: *Roberts-Cross Edge Detection* — one of
//! VIP-Bench's "real-world applications" (Section V-A).

use crate::spec::util::output_words;
use crate::spec::{Benchmark, Lcg, Scale};
use pytfhe_hdl::{Circuit, DType};

/// *Roberts Cross*: the classic 2×2 gradient operator over an encrypted
/// image, using the standard `|gx| + |gy|` magnitude approximation.
pub fn roberts_cross(scale: Scale) -> Benchmark {
    let (h, w) = match scale {
        Scale::Test => (4usize, 4usize),
        Scale::Paper => (16, 16),
    };
    let pw = 8; // pixel width
    let ow = 10; // output magnitude width (<= 2 * 255)
    let mut c = Circuit::new();
    let word = c.input_word("input", h * w * pw);
    let pixel = |i: usize, j: usize| word.slice((i * w + j) * pw, (i * w + j + 1) * pw);
    let mut out = Vec::with_capacity((h - 1) * (w - 1));
    for i in 0..h - 1 {
        for j in 0..w - 1 {
            // gx = p(i, j) - p(i+1, j+1); gy = p(i+1, j) - p(i, j+1).
            let gx = {
                let a = pixel(i, j).zext(pw + 1);
                let b = pixel(i + 1, j + 1).zext(pw + 1);
                let d = c.sub(&a, &b);
                c.abs(&d)
            };
            let gy = {
                let a = pixel(i + 1, j).zext(pw + 1);
                let b = pixel(i, j + 1).zext(pw + 1);
                let d = c.sub(&a, &b);
                c.abs(&d)
            };
            out.push(c.add(&gx.zext(ow), &gy.zext(ow)));
        }
    }
    output_words(&mut c, &out);
    Benchmark::new(
        "RobertsCross",
        "Roberts-Cross edge detection over an encrypted image",
        c.finish().expect("netlist"),
        DType::UInt(pw),
        DType::UInt(ow),
        Box::new(move |input: &[f64]| {
            let px = |i: usize, j: usize| input[i * w + j];
            let mut out = Vec::with_capacity((h - 1) * (w - 1));
            for i in 0..h - 1 {
                for j in 0..w - 1 {
                    let gx = (px(i, j) - px(i + 1, j + 1)).abs();
                    let gy = (px(i + 1, j) - px(i, j + 1)).abs();
                    out.push(gx + gy);
                }
            }
            out
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..h * w).map(|_| rng.below(256) as f64).collect()
        }),
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roberts_cross_matches_oracle() {
        let b = roberts_cross(Scale::Test);
        for seed in 0..8 {
            let input = b.sample_input(seed);
            b.check_detailed(&input).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn flat_image_has_zero_edges() {
        let b = roberts_cross(Scale::Test);
        let out = b.decode_output(&b.netlist().eval_plain(&b.encode_input(&[128.0; 16])));
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn step_edge_is_detected() {
        let b = roberts_cross(Scale::Test);
        // Left half dark, right half bright.
        let img: Vec<f64> = (0..16).map(|i| if i % 4 < 2 { 0.0 } else { 200.0 }).collect();
        let out = b.decode_output(&b.netlist().eval_plain(&b.encode_input(&img)));
        assert!(out.iter().any(|&x| x >= 200.0), "edge response expected: {out:?}");
    }
}
