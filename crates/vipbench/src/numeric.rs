//! Linear-arithmetic and iterative-approximation workloads: *Dot
//! Product*, *Linear Regression*, *Hamming Distance*, *Euler's-number
//! approximation*, *Newton–Raphson solver* and *Gradient Descent*.
//!
//! The first three are wide and parallel; the last three are the
//! "mostly serial workflow" examples the paper singles out as poor
//! scalers (Section V-A: "it is difficult for these mostly serial
//! benchmarks to fully utilize the parallelism of the distributed
//! system").

use crate::spec::util::{inputs, output_words, outputs, sum_words};
use crate::spec::{Benchmark, Lcg, Scale};
use pytfhe_hdl::{Circuit, DType, Value, Word};

/// *Dot-Product*: the inner product of two encrypted fixed-point vectors.
pub fn dot_product(scale: Scale) -> Benchmark {
    let n = scale.pick(8, 64);
    let dtype = DType::Fixed { width: 16, frac: 8 };
    let mut c = Circuit::new();
    let vals = inputs(&mut c, 2 * n, dtype);
    let (a, b) = vals.split_at(n);
    let mut terms = Vec::with_capacity(n);
    for (x, y) in a.iter().zip(b) {
        terms.push(c.v_mul(x, y).expect("same dtype"));
    }
    let mut layer = terms;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                c.v_add(&pair[0], &pair[1]).expect("same dtype")
            } else {
                pair[0].clone()
            });
        }
        layer = next;
    }
    outputs(&mut c, &layer);
    Benchmark::new(
        "DotProduct",
        "inner product of two encrypted fixed-point vectors",
        c.finish().expect("netlist"),
        dtype,
        dtype,
        Box::new(move |input: &[f64]| {
            let q = |x: f64| (x * 256.0).round() / 256.0;
            let (a, b) = input.split_at(n);
            vec![a.iter().zip(b).map(|(x, y)| q(*x) * q(*y)).sum()]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..2 * n).map(|_| rng.sym(1.5)).collect()
        }),
        (n as f64 + 1.0) / 128.0,
    )
}

/// *Linear Regression*: inference `y = w · x + b` with plaintext model
/// parameters folded into the circuit.
pub fn linear_regression(scale: Scale) -> Benchmark {
    let n = scale.pick(6, 32);
    let dtype = DType::Fixed { width: 16, frac: 8 };
    let weights: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 / 13.0 - 0.5).collect();
    let bias = 0.375;
    let mut c = Circuit::new();
    let x = inputs(&mut c, n, dtype);
    let mut terms = Vec::with_capacity(n + 1);
    for (xi, &wi) in x.iter().zip(&weights) {
        let wc = Value::constant(&mut c, wi, dtype);
        terms.push(c.v_mul(xi, &wc).expect("same dtype"));
    }
    terms.push(Value::constant(&mut c, bias, dtype));
    let mut acc = terms[0].clone();
    for t in &terms[1..] {
        acc = c.v_add(&acc, t).expect("same dtype");
    }
    outputs(&mut c, &[acc]);
    let w_or = weights.clone();
    Benchmark::new(
        "LinReg",
        "linear-regression inference with plaintext coefficients",
        c.finish().expect("netlist"),
        dtype,
        dtype,
        Box::new(move |input: &[f64]| {
            let q = |x: f64| (x * 256.0).round() / 256.0;
            let y: f64 = input.iter().zip(&w_or).map(|(x, w)| q(*x) * q(*w)).sum::<f64>() + q(bias);
            vec![y]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..n).map(|_| rng.sym(1.0)).collect()
        }),
        (n as f64 + 2.0) / 128.0,
    )
}

/// *Hamming Distance*: popcount of the XOR of two encrypted bit vectors.
pub fn hamming_distance(scale: Scale) -> Benchmark {
    let n = scale.pick(16, 256);
    let out_bits = (usize::BITS - n.leading_zeros()) as usize;
    let mut c = Circuit::new();
    let word = c.input_word("input", 2 * n);
    let a = word.slice(0, n);
    let b = word.slice(n, 2 * n);
    let x = c.bitwise(pytfhe_netlist::GateKind::Xor, &a, &b).expect("same widths");
    // Popcount: promote each bit and tree-add.
    let ones: Vec<Word> =
        x.bits().iter().map(|&bit| Word::from_bits(vec![bit]).zext(out_bits)).collect();
    let count = sum_words(&mut c, &ones);
    output_words(&mut c, &[count]);
    Benchmark::new(
        "Hamming",
        "Hamming distance of two encrypted bit vectors",
        c.finish().expect("netlist"),
        DType::UInt(1),
        DType::UInt(out_bits),
        Box::new(move |input: &[f64]| {
            let (a, b) = input.split_at(n);
            vec![a.iter().zip(b).filter(|(x, y)| (**x != 0.0) != (**y != 0.0)).count() as f64]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            (0..2 * n).map(|_| rng.below(2) as f64).collect()
        }),
        0.0,
    )
}

/// *Euler's-number approximation*: `x * sum(1/k!)` via iterated division
/// by constants — one of the paper's poorly-scaling iterative workloads.
pub fn eulers_number(scale: Scale) -> Benchmark {
    let terms = scale.pick(6, 10);
    let dtype = DType::Fixed { width: 24, frac: 16 };
    let mut c = Circuit::new();
    let x = inputs(&mut c, 1, dtype).remove(0);
    let mut term = x.clone(); // x / 0! = x
    let mut acc = x.clone();
    for k in 1..=terms {
        let kc = Value::constant(&mut c, k as f64, dtype);
        term = c.v_div(&term, &kc).expect("same dtype");
        acc = c.v_add(&acc, &term).expect("same dtype");
    }
    outputs(&mut c, &[acc]);
    Benchmark::new(
        "Eulers",
        "x * e via the factorial series (iterative division)",
        c.finish().expect("netlist"),
        dtype,
        dtype,
        Box::new(move |input: &[f64]| {
            // Mirror the fixed-point truncation of each division step.
            let scale_f = 65536.0;
            let q = |v: f64| (v * scale_f).round() / scale_f;
            let trunc = |v: f64| (v * scale_f).trunc() / scale_f;
            let x = q(input[0]);
            let mut term = x;
            let mut acc = x;
            for k in 1..=terms {
                term = trunc(term / k as f64);
                acc += term;
            }
            vec![acc]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            vec![0.5 + (rng.below(96) as f64) / 64.0]
        }),
        (terms as f64 + 2.0) / 65536.0 * 4.0,
    )
}

/// *Newton–Raphson solver*: square-root finding via
/// `x <- (x + b / x) / 2` with a restoring divider per iteration — the
/// paper's canonical "mostly serial" benchmark (the divider's
/// bit-by-bit trial subtraction forms a long dependency chain).
pub fn nr_solver(scale: Scale) -> Benchmark {
    let iters = scale.pick(4, 8);
    let frac = 12;
    let dtype = DType::Fixed { width: 20, frac };
    let mut c = Circuit::new();
    let b = inputs(&mut c, 1, dtype).remove(0);
    let half = Value::constant(&mut c, 0.5, dtype);
    let mut x = Value::constant(&mut c, 1.5, dtype);
    for _ in 0..iters {
        let q = c.v_div(&b, &x).expect("same dtype");
        let s = c.v_add(&x, &q).expect("same dtype");
        x = c.v_mul(&s, &half).expect("same dtype");
    }
    outputs(&mut c, &[x]);
    Benchmark::new(
        "NRSolver",
        "Newton-Raphson square root with restoring division (serial chain)",
        c.finish().expect("netlist"),
        dtype,
        dtype,
        Box::new(move |input: &[f64]| {
            // Mirror the circuit in exact raw fixed-point arithmetic.
            let scale_i = 1i64 << frac;
            let b_raw = (input[0] * scale_i as f64).round() as i64;
            let mut x_raw = (1.5 * scale_i as f64) as i64;
            for _ in 0..iters {
                let q_raw = (b_raw << frac) / x_raw; // positive: trunc = floor
                let s_raw = x_raw + q_raw;
                x_raw = (s_raw * (scale_i / 2)) >> frac; // * 0.5, floor
            }
            vec![x_raw as f64 / scale_i as f64]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            vec![1.0 + rng.below(160) as f64 / 64.0]
        }),
        1e-9,
    )
}

/// *Gradient Descent*: minimizing `(x - t)^2` for an encrypted target `t`
/// with a fixed step count.
pub fn gradient_descent(scale: Scale) -> Benchmark {
    let steps = scale.pick(4, 10);
    let dtype = DType::Fixed { width: 20, frac: 10 };
    let lr = 0.25;
    let mut c = Circuit::new();
    let t = inputs(&mut c, 1, dtype).remove(0);
    let mut x = Value::constant(&mut c, 0.0, dtype);
    let factor = Value::constant(&mut c, 2.0 * lr, dtype);
    for _ in 0..steps {
        let diff = c.v_sub(&x, &t).expect("same dtype");
        let step = c.v_mul(&diff, &factor).expect("same dtype");
        x = c.v_sub(&x, &step).expect("same dtype");
    }
    outputs(&mut c, &[x]);
    Benchmark::new(
        "GradDescent",
        "gradient descent on (x - t)^2 with encrypted target",
        c.finish().expect("netlist"),
        dtype,
        dtype,
        Box::new(move |input: &[f64]| {
            let s = 1024.0;
            let q = |v: f64| (v * s).round() / s;
            let t = q(input[0]);
            let mut x = 0.0;
            for _ in 0..steps {
                let step = (((x - t) * (2.0 * lr)) * s).floor() / s;
                x -= step;
            }
            vec![x]
        }),
        Box::new(move |seed| {
            let mut rng = Lcg::new(seed);
            vec![rng.sym(4.0)]
        }),
        (steps as f64) * 2.5 / 1024.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_seeds(b: &Benchmark, seeds: std::ops::Range<u64>) {
        for seed in seeds {
            let input = b.sample_input(seed);
            b.check_detailed(&input).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn dot_product_matches_oracle() {
        check_seeds(&dot_product(Scale::Test), 0..8);
    }

    #[test]
    fn linear_regression_matches_oracle() {
        check_seeds(&linear_regression(Scale::Test), 0..8);
    }

    #[test]
    fn hamming_matches_oracle_exactly() {
        check_seeds(&hamming_distance(Scale::Test), 0..10);
    }

    #[test]
    fn eulers_converges_and_matches() {
        let b = eulers_number(Scale::Test);
        check_seeds(&b, 0..6);
        // sanity: for x = 1 the result approximates e.
        let out = b.decode_output(&b.netlist().eval_plain(&b.encode_input(&[1.0])));
        assert!((out[0] - std::f64::consts::E).abs() < 0.01, "e approx {}", out[0]);
    }

    #[test]
    fn nr_solver_converges_and_matches() {
        let b = nr_solver(Scale::Test);
        check_seeds(&b, 0..6);
        let out = b.decode_output(&b.netlist().eval_plain(&b.encode_input(&[2.0])));
        assert!((out[0] - std::f64::consts::SQRT_2).abs() < 0.01, "sqrt(2) approx {}", out[0]);
    }

    #[test]
    fn gradient_descent_approaches_target() {
        let b = gradient_descent(Scale::Test);
        check_seeds(&b, 0..6);
        let out = b.decode_output(&b.netlist().eval_plain(&b.encode_input(&[3.0])));
        assert!((out[0] - 3.0).abs() < 0.25, "target approach {}", out[0]);
    }

    #[test]
    fn serial_benchmarks_are_narrow() {
        use pytfhe_netlist::topo::Levels;
        let nr = nr_solver(Scale::Test);
        let dot = dot_product(Scale::Test);
        let nr_width = Levels::compute(nr.netlist()).avg_width();
        let dot_width = Levels::compute(dot.netlist()).avg_width();
        assert!(
            dot_width > nr_width,
            "dot product ({dot_width:.1}) should be wider than NR solver ({nr_width:.1})"
        );
    }
}
