//! VIP-Bench workloads as PyTFHE circuits (Section V-A of the paper).
//!
//! VIP-Bench (Biernacki et al., SEED 2021) is the benchmark suite the
//! paper evaluates on: 18 privacy-enhanced-computation workloads ranging
//! from linear arithmetic (*Dot Product*) through iterative approximation
//! (*Euler's number*, *Newton-Raphson solver*) to applications (*MNIST*,
//! *Roberts-Cross edge detection*). This crate reimplements each workload
//! as a data-oblivious circuit generator with a plaintext oracle, plus
//! the paper's additional models: the larger `MNIST_M`/`MNIST_L` CNNs and
//! the `Attention_S`/`Attention_L` self-attention layers.
//!
//! Every workload comes in two scales: [`Scale::Test`] (small instances
//! exhaustively checked against oracles in the test suite) and
//! [`Scale::Paper`] (instances sized for the performance experiments of
//! Figures 10-11).
//!
//! ```
//! use pytfhe_vipbench::{benchmarks, Scale};
//!
//! let bench = pytfhe_vipbench::hamming_distance(Scale::Test);
//! let input = bench.sample_input(1);
//! assert!(bench.check(&input), "circuit agrees with the oracle");
//! assert!(benchmarks(Scale::Test).len() >= 18);
//! ```

mod image;
mod nn;
mod numeric;
mod query;
mod registry;
mod seq;
mod spec;

pub use image::roberts_cross;
pub use nn::{attention_l, attention_s, mnist_l, mnist_m, mnist_s};
pub use numeric::{
    dot_product, eulers_number, gradient_descent, hamming_distance, linear_regression, nr_solver,
};
pub use query::{distinctness, filtered_query, knn, primality, set_intersection};
pub use registry::{benchmarks, find};
pub use seq::{bubble_sort, edit_distance, kepler_calc, parrando, triangle_count};
pub use spec::{Benchmark, Scale};
