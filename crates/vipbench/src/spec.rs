use pytfhe_hdl::DType;
use pytfhe_netlist::Netlist;

/// Workload instance size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Miniature instances for oracle-checked tests.
    Test,
    /// Instances sized like the paper's evaluation (Figures 10–11).
    Paper,
}

impl Scale {
    /// Picks `t` for [`Scale::Test`] and `p` for [`Scale::Paper`].
    pub(crate) fn pick(self, t: usize, p: usize) -> usize {
        match self {
            Scale::Test => t,
            Scale::Paper => p,
        }
    }
}

type Oracle = Box<dyn Fn(&[f64]) -> Vec<f64> + Send + Sync>;
type InputGen = Box<dyn Fn(u64) -> Vec<f64> + Send + Sync>;

/// One benchmark: a compiled circuit, its plaintext oracle, and the input
/// distribution it is meant to run on.
pub struct Benchmark {
    name: &'static str,
    description: &'static str,
    netlist: Netlist,
    dtype_in: DType,
    dtype_out: DType,
    oracle: Oracle,
    input_gen: InputGen,
    tolerance: f64,
}

impl Benchmark {
    /// Assembles a benchmark (crate-internal; users obtain benchmarks
    /// from the workload constructors or [`crate::benchmarks`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: &'static str,
        description: &'static str,
        netlist: Netlist,
        dtype_in: DType,
        dtype_out: DType,
        oracle: Oracle,
        input_gen: InputGen,
        tolerance: f64,
    ) -> Self {
        Benchmark { name, description, netlist, dtype_in, dtype_out, oracle, input_gen, tolerance }
    }

    /// Benchmark name as used on the paper's x-axes (e.g. `"Hamming"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The compiled circuit.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The element data type of inputs.
    pub fn dtype_in(&self) -> DType {
        self.dtype_in
    }

    /// The element data type of outputs.
    pub fn dtype_out(&self) -> DType {
        self.dtype_out
    }

    /// Number of scalar input elements.
    pub fn input_elems(&self) -> usize {
        self.netlist.num_inputs() / self.dtype_in.width()
    }

    /// Number of scalar output elements.
    pub fn output_elems(&self) -> usize {
        self.netlist.outputs().len() / self.dtype_out.width()
    }

    /// A representative input for the given seed.
    pub fn sample_input(&self, seed: u64) -> Vec<f64> {
        (self.input_gen)(seed)
    }

    /// The plaintext reference result.
    pub fn oracle(&self, input: &[f64]) -> Vec<f64> {
        (self.oracle)(input)
    }

    /// Encodes scalars into circuit input bits.
    pub fn encode_input(&self, input: &[f64]) -> Vec<bool> {
        input.iter().flat_map(|&v| self.dtype_in.encode_f64(v)).collect()
    }

    /// Decodes circuit output bits into scalars.
    pub fn decode_output(&self, bits: &[bool]) -> Vec<f64> {
        bits.chunks(self.dtype_out.width()).map(|ch| self.dtype_out.decode_f64(ch)).collect()
    }

    /// Runs the circuit functionally and compares against the oracle
    /// within the workload's tolerance.
    pub fn check(&self, input: &[f64]) -> bool {
        self.check_detailed(input).is_ok()
    }

    /// Like [`Benchmark::check`] but returns the mismatch for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns a description of the first element disagreeing with the
    /// oracle beyond the tolerance.
    pub fn check_detailed(&self, input: &[f64]) -> Result<(), String> {
        let got = self.decode_output(&self.netlist.eval_plain(&self.encode_input(input)));
        let want = self.oracle(input);
        if got.len() != want.len() {
            return Err(format!(
                "{}: output arity {} vs oracle {}",
                self.name,
                got.len(),
                want.len()
            ));
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            if (g - w).abs() > self.tolerance {
                return Err(format!(
                    "{}[{}]: circuit {} vs oracle {} (tol {})",
                    self.name, i, g, w, self.tolerance
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("dtype_in", &self.dtype_in)
            .field("gates", &self.netlist.num_gates())
            .finish_non_exhaustive()
    }
}

/// Deterministic pseudo-random stream used by input generators.
pub(crate) struct Lcg(u64);

impl Lcg {
    pub(crate) fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in `[0, n)`.
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[-bound, bound]`.
    pub(crate) fn sym(&mut self, bound: f64) -> f64 {
        (self.next_u64() % (1 << 24)) as f64 / (1 << 23) as f64 * bound - bound
    }
}

/// Shared builder helpers for the workload modules.
pub(crate) mod util {
    use pytfhe_hdl::{Circuit, DType, Value, Word};

    /// Declares `n` typed input elements under one `input` port.
    pub(crate) fn inputs(c: &mut Circuit, n: usize, dtype: DType) -> Vec<Value> {
        let w = dtype.width();
        let word = c.input_word("input", n * w);
        (0..n).map(|i| Value::new(word.slice(i * w, (i + 1) * w), dtype)).collect()
    }

    /// Declares the output port over typed values.
    pub(crate) fn outputs(c: &mut Circuit, vals: &[Value]) {
        let mut bits = Vec::new();
        for v in vals {
            bits.extend_from_slice(v.word.bits());
        }
        c.output_word("output", &Word::from_bits(bits));
    }

    /// Declares the output port over raw words.
    pub(crate) fn output_words(c: &mut Circuit, words: &[Word]) {
        let mut bits = Vec::new();
        for w in words {
            bits.extend_from_slice(w.bits());
        }
        c.output_word("output", &Word::from_bits(bits));
    }

    /// Balanced-tree sum of raw words (all the same width, wrapping).
    pub(crate) fn sum_words(c: &mut Circuit, words: &[Word]) -> Word {
        let mut layer: Vec<Word> = words.to_vec();
        assert!(!layer.is_empty());
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(c.add(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0].clone());
                }
            }
            layer = next;
        }
        layer.pop().expect("nonempty")
    }
}
