//! The benchmark registry: every workload of the paper's evaluation,
//! buildable at either scale.

use crate::spec::{Benchmark, Scale};

/// Builds the full suite: the 18 VIP-Bench workloads followed by the
/// paper's additional neural-network models (`MNIST_M`, `MNIST_L`,
/// `Attention_S`, `Attention_L`).
///
/// Note: at [`Scale::Paper`] the neural networks compile to
/// multi-million-gate netlists and take a little while to build; use
/// [`Scale::Test`] in test suites.
pub fn benchmarks(scale: Scale) -> Vec<Benchmark> {
    vec![
        crate::hamming_distance(scale),
        crate::eulers_number(scale),
        crate::nr_solver(scale),
        crate::gradient_descent(scale),
        crate::parrando(scale),
        crate::primality(scale),
        crate::distinctness(scale),
        crate::dot_product(scale),
        crate::linear_regression(scale),
        crate::kepler_calc(scale),
        crate::knn(scale),
        crate::set_intersection(scale),
        crate::filtered_query(scale),
        crate::edit_distance(scale),
        crate::bubble_sort(scale),
        crate::triangle_count(scale),
        crate::roberts_cross(scale),
        crate::mnist_s(scale),
        crate::mnist_m(scale),
        crate::mnist_l(scale),
        crate::attention_s(scale),
        crate::attention_l(scale),
    ]
}

/// Looks up one benchmark by its paper name (case-insensitive).
pub fn find(name: &str, scale: Scale) -> Option<Benchmark> {
    benchmarks(scale).into_iter().find(|b| b.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_paper_workloads() {
        let suite = benchmarks(Scale::Test);
        assert!(suite.len() >= 22, "18 VIP-Bench + 4 extra models");
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        for expect in ["Hamming", "NRSolver", "MNIST_S", "MNIST_L", "Attention_L", "Parrando"] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        // Names are unique.
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn every_benchmark_has_gates_and_io() {
        for b in benchmarks(Scale::Test) {
            assert!(b.netlist().num_gates() > 0, "{}", b.name());
            assert!(b.input_elems() > 0, "{}", b.name());
            assert!(b.output_elems() > 0, "{}", b.name());
            assert!(!b.description().is_empty());
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("mnist_s", Scale::Test).is_some());
        assert!(find("HAMMING", Scale::Test).is_some());
        assert!(find("nope", Scale::Test).is_none());
    }
}
