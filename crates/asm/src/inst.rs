use crate::error::AsmError;
use pytfhe_netlist::GateKind;

/// The all-ones pattern of a 62-bit field, used as the "no index here"
/// marker of input/output instructions (Figure 5's `0x3FFF…`).
pub const FIELD_ONES: u64 = (1u64 << 62) - 1;

/// Size of one encoded instruction in bytes.
pub const INSTRUCTION_BYTES: usize = 16;

/// One decoded 128-bit PyTFHE instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// The mandatory first instruction, declaring the total gate count.
    Header {
        /// Number of gate instructions in the program.
        total_gates: u64,
    },
    /// Reserves `index` for an input signal.
    Input {
        /// The reserved index.
        index: u64,
    },
    /// A gate evaluating `kind` on the signals at `input0`/`input1`.
    /// Constants carry [`FIELD_ONES`] in both operand fields.
    Gate {
        /// Gate function.
        kind: GateKind,
        /// First operand index.
        input0: u64,
        /// Second operand index.
        input1: u64,
    },
    /// Declares the signal at `index` as a program output.
    Output {
        /// The producing gate/input index.
        index: u64,
    },
}

impl Instruction {
    /// Encodes into the 128-bit wire format.
    pub fn encode(self) -> u128 {
        let (f1, f2, nib) = match self {
            Instruction::Header { total_gates } => (0, total_gates, 0x0u8),
            Instruction::Input { index } => (FIELD_ONES, index, 0xF),
            Instruction::Gate { kind, input0, input1 } => (input0, input1, kind.opcode()),
            Instruction::Output { index } => (FIELD_ONES, index, 0x3),
        };
        (u128::from(f1) << 66) | (u128::from(f2) << 4) | u128::from(nib)
    }

    /// Decodes an instruction. `position` is its index in the stream
    /// (position 0 must be a header; headers are invalid elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::BadInstruction`] for malformed field patterns.
    pub fn decode(word: u128, position: usize) -> Result<Self, AsmError> {
        let f1 = ((word >> 66) & u128::from(FIELD_ONES)) as u64;
        let f2 = ((word >> 4) & u128::from(FIELD_ONES)) as u64;
        let nib = (word & 0xF) as u8;
        if position == 0 {
            if nib != 0 || f1 != 0 {
                return Err(AsmError::BadInstruction {
                    position,
                    reason: "first instruction must be a header",
                });
            }
            return Ok(Instruction::Header { total_gates: f2 });
        }
        match nib {
            0xF => {
                if f1 != FIELD_ONES {
                    return Err(AsmError::BadInstruction {
                        position,
                        reason: "input instruction must carry all-ones in field 1",
                    });
                }
                Ok(Instruction::Input { index: f2 })
            }
            0x3 => {
                if f1 != FIELD_ONES {
                    return Err(AsmError::BadInstruction {
                        position,
                        reason: "output instruction must carry all-ones in field 1",
                    });
                }
                Ok(Instruction::Output { index: f2 })
            }
            op => {
                let kind = GateKind::from_opcode(op).map_err(|_| AsmError::BadInstruction {
                    position,
                    reason: "unknown gate opcode",
                })?;
                // Constants take no operands; the encoder writes the
                // all-ones reserved pattern, and anything else means the
                // operand fields were corrupted.
                if kind.is_const() && (f1 != FIELD_ONES || f2 != FIELD_ONES) {
                    return Err(AsmError::BadInstruction {
                        position,
                        reason: "constant gate must carry all-ones operand fields",
                    });
                }
                Ok(Instruction::Gate { kind, input0: f1, input1: f2 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let cases = [
            Instruction::Header { total_gates: 2 },
            Instruction::Input { index: 1 },
            Instruction::Gate { kind: GateKind::Xor, input0: 1, input1: 2 },
            Instruction::Gate { kind: GateKind::Const1, input0: FIELD_ONES, input1: FIELD_ONES },
            Instruction::Output { index: 3 },
            Instruction::Input { index: FIELD_ONES - 1 },
        ];
        for (pos, inst) in cases.into_iter().enumerate() {
            let back = Instruction::decode(inst.encode(), pos).unwrap();
            assert_eq!(back, inst, "position {pos}");
        }
    }

    #[test]
    fn figure_6_xor_encoding() {
        // The paper's half adder: XOR at index 3 with inputs 1 and 2,
        // gate type nibble 0110.
        let inst = Instruction::Gate { kind: GateKind::Xor, input0: 1, input1: 2 };
        let word = inst.encode();
        assert_eq!(word & 0xF, 0b0110);
        assert_eq!((word >> 66) as u64 & FIELD_ONES, 1);
        assert_eq!((word >> 4) as u64 & FIELD_ONES, 2);
    }

    #[test]
    fn header_layout() {
        let word = Instruction::Header { total_gates: 2 }.encode();
        // Everything zero except the gate-count field.
        assert_eq!(word, 2u128 << 4);
    }

    #[test]
    fn input_layout_is_all_ones_except_index() {
        let word = Instruction::Input { index: 1 }.encode();
        assert_eq!(word & 0xF, 0xF);
        assert_eq!((word >> 66) as u64 & FIELD_ONES, FIELD_ONES);
        assert_eq!((word >> 4) as u64 & FIELD_ONES, 1);
    }

    #[test]
    fn non_header_at_position_zero_rejected() {
        let word = Instruction::Input { index: 1 }.encode();
        assert!(Instruction::decode(word, 0).is_err());
    }

    #[test]
    fn corrupt_patterns_rejected() {
        // Input nibble with a non-all-ones field 1.
        let bogus = (5u128 << 66) | (1u128 << 4) | 0xF;
        assert!(Instruction::decode(bogus, 3).is_err());
        // Output with bad field 1.
        let bogus = (5u128 << 66) | (1u128 << 4) | 0x3;
        assert!(Instruction::decode(bogus, 3).is_err());
    }
}
