//! The PyTFHE binary format — 128-bit instructions encoding a TFHE
//! program for fast DAG traversal (Section IV-C and Figure 5 of the
//! paper).
//!
//! Each instruction packs two 62-bit fields and a 4-bit type nibble:
//!
//! ```text
//! | 127 .. 66 (62b) | 65 .. 4 (62b)     | 3..0 |
//! | 0               | total # of gates  | 0x0  |  header
//! | all-ones        | assigned index    | 0xF  |  input
//! | input-0 index   | input-1 index     | type |  gate
//! | all-ones        | output gate index | 0x3  |  output
//! ```
//!
//! Indices are assigned sequentially ("naming" the gates), allowing up to
//! `2^62` gates; gate type nibbles are the opcodes of
//! [`pytfhe_netlist::GateKind`] (`XOR = 0b0110`, matching the worked
//! half-adder of the paper's Figure 6). The nibbles `0x3` and `0xF` are
//! reserved for output/input instructions, which is why no gate uses
//! them.
//!
//! [`assemble`] packs a netlist into the binary; [`disassemble`] validates
//! and re-builds the netlist (ports are compile-time metadata and are not
//! part of the run-time binary, exactly as Verilog port names do not
//! survive synthesis to a bitstream).

mod binary;
mod error;
mod inst;

pub use binary::{assemble, binary_stats, disassemble, dump, try_assemble, BinaryStats};
pub use error::AsmError;
pub use inst::{Instruction, FIELD_ONES, INSTRUCTION_BYTES};
