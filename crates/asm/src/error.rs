use std::fmt;

/// Errors produced while assembling or disassembling PyTFHE binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// The binary length is not a multiple of 16 bytes (128-bit
    /// instructions).
    Misaligned {
        /// Byte length found.
        len: usize,
    },
    /// The binary is empty or missing its header instruction.
    MissingHeader,
    /// The header's gate count disagrees with the instruction stream.
    GateCountMismatch {
        /// Count declared in the header.
        declared: u64,
        /// Gates actually present.
        actual: u64,
    },
    /// An instruction's type nibble or field pattern is invalid.
    BadInstruction {
        /// Index of the offending instruction.
        position: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// A gate or output referenced an index that was not yet defined.
    DanglingReference {
        /// Index of the offending instruction.
        position: usize,
        /// The index referenced.
        index: u64,
    },
    /// The netlist is too large for this in-memory representation.
    TooLarge,
    /// The netlist contains fused multi-input LUT nodes, which the 4-bit
    /// two-operand instruction format of Figure 5 cannot encode. Run LUT
    /// covering *after* binary distribution (it is a backend-side
    /// lowering), or ship the un-lowered netlist.
    LutNotRepresentable {
        /// Node id of the first LUT encountered.
        node: u64,
    },
    /// The netlist rejected reconstruction (should not happen for valid
    /// binaries).
    Netlist(pytfhe_netlist::NetlistError),
    /// Formatting a listing failed (propagated from [`std::fmt::Write`]).
    Format,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Misaligned { len } => {
                write!(f, "binary length {len} is not a multiple of 16 bytes")
            }
            AsmError::MissingHeader => write!(f, "binary is missing its header instruction"),
            AsmError::GateCountMismatch { declared, actual } => {
                write!(f, "header declares {declared} gates but binary contains {actual}")
            }
            AsmError::BadInstruction { position, reason } => {
                write!(f, "invalid instruction at position {position}: {reason}")
            }
            AsmError::DanglingReference { position, index } => {
                write!(f, "instruction {position} references undefined index {index}")
            }
            AsmError::TooLarge => write!(f, "program too large for in-memory netlist"),
            AsmError::LutNotRepresentable { node } => {
                write!(
                    f,
                    "node {node} is a fused LUT; the binary format encodes 2-input gates only"
                )
            }
            AsmError::Netlist(e) => write!(f, "netlist reconstruction failed: {e}"),
            AsmError::Format => write!(f, "formatting a listing failed"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pytfhe_netlist::NetlistError> for AsmError {
    fn from(e: pytfhe_netlist::NetlistError) -> Self {
        AsmError::Netlist(e)
    }
}

impl From<fmt::Error> for AsmError {
    fn from(_: fmt::Error) -> Self {
        AsmError::Format
    }
}
