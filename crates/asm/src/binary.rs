use crate::error::AsmError;
use crate::inst::{Instruction, FIELD_ONES, INSTRUCTION_BYTES};
use bytes::{BufMut, Bytes, BytesMut};
use pytfhe_netlist::{Netlist, Node, NodeId};
use std::fmt::Write as _;

/// Iterates the 128-bit words of a binary after alignment has been
/// checked. `chunks_exact` guarantees every chunk is 16 bytes, so this
/// cannot panic on truncated input regardless of what callers checked.
fn words(binary: &[u8]) -> impl Iterator<Item = u128> + '_ {
    binary
        .chunks_exact(INSTRUCTION_BYTES)
        .map(|chunk| u128::from_le_bytes(chunk.try_into().expect("chunks_exact yields 16 bytes")))
}

/// Assembles a netlist into the PyTFHE binary format.
///
/// Node `i` of the netlist is assigned index `i + 1` (index 0 is never
/// used, matching the paper's Figure 6 where inputs start at index 1).
/// Instruction order is: header, then one instruction per node in id
/// order (inputs and gates interleaved exactly as built — the netlist is
/// topologically ordered by construction), then one output instruction
/// per declared output.
/// # Panics
///
/// Panics if the netlist contains fused LUT nodes; use
/// [`try_assemble`] to get the typed [`AsmError::LutNotRepresentable`]
/// instead. LUT covering is a backend-side lowering and runs after
/// binary distribution.
pub fn assemble(nl: &Netlist) -> Bytes {
    try_assemble(nl).expect("netlist with fused LUTs cannot be assembled to the binary format")
}

/// Fallible [`assemble`]: returns [`AsmError::LutNotRepresentable`] for
/// netlists holding fused LUT nodes (the 4-bit instruction format of
/// Figure 5 has no opcode space for `2^16` truth tables).
///
/// # Errors
///
/// Returns an error only for LUT-bearing netlists.
pub fn try_assemble(nl: &Netlist) -> Result<Bytes, AsmError> {
    let _span = pytfhe_telemetry::span_with("asm", || {
        format!("assemble: {} nodes, {} outputs", nl.num_nodes(), nl.outputs().len())
    });
    let mut buf =
        BytesMut::with_capacity((1 + nl.num_nodes() + nl.outputs().len()) * INSTRUCTION_BYTES);
    let mut put = |inst: Instruction| buf.put_u128_le(inst.encode());
    put(Instruction::Header { total_gates: nl.num_gates() as u64 });
    for (i, node) in nl.nodes().iter().enumerate() {
        let index = i as u64 + 1;
        match *node {
            Node::Input => put(Instruction::Input { index }),
            Node::Gate { kind, a, b } => {
                let (input0, input1) = if kind.is_const() {
                    (FIELD_ONES, FIELD_ONES)
                } else {
                    (u64::from(a.0) + 1, u64::from(b.0) + 1)
                };
                put(Instruction::Gate { kind, input0, input1 });
            }
            Node::Lut { .. } => return Err(AsmError::LutNotRepresentable { node: i as u64 }),
        }
    }
    for out in nl.outputs() {
        put(Instruction::Output { index: u64::from(out.0) + 1 });
    }
    Ok(buf.freeze())
}

/// Disassembles and validates a PyTFHE binary back into a netlist.
///
/// Validation covers alignment, the mandatory header, the header's gate
/// count, reserved field patterns, backward-only references, and the
/// 4-bit opcode space — everything an untrusted binary could get wrong.
///
/// # Errors
///
/// Returns the specific [`AsmError`] for the first violation found.
pub fn disassemble(binary: &[u8]) -> Result<Netlist, AsmError> {
    let _span =
        pytfhe_telemetry::span_with("asm", || format!("disassemble: {} bytes", binary.len()));
    if !binary.len().is_multiple_of(INSTRUCTION_BYTES) {
        return Err(AsmError::Misaligned { len: binary.len() });
    }
    let count = binary.len() / INSTRUCTION_BYTES;
    if count == 0 {
        return Err(AsmError::MissingHeader);
    }
    // Node ids are u32; a stream with more instructions than that cannot
    // be reconstructed (and at 64 GiB could not be honest anyway).
    if count - 1 > u32::MAX as usize {
        return Err(AsmError::TooLarge);
    }
    let mut nl = Netlist::with_capacity(count - 1);
    // index (1-based, instruction order) -> netlist node id
    let mut index_of: Vec<NodeId> = Vec::with_capacity(count);
    let mut declared_gates = 0u64;
    let mut actual_gates = 0u64;
    for (position, word) in words(binary).enumerate() {
        let inst = Instruction::decode(word, position)?;
        match inst {
            Instruction::Header { total_gates } => {
                if total_gates > u64::from(u32::MAX) {
                    return Err(AsmError::TooLarge);
                }
                declared_gates = total_gates;
            }
            Instruction::Input { index } => {
                expect_next_index(index, index_of.len(), position)?;
                index_of.push(nl.add_input());
            }
            Instruction::Gate { kind, input0, input1 } => {
                actual_gates += 1;
                let id = if kind.is_const() {
                    nl.add_gate(kind, NodeId(0), NodeId(0)).map_err(AsmError::from)?
                } else {
                    let a = resolve(&index_of, input0, position)?;
                    let b = if kind.is_unary() { a } else { resolve(&index_of, input1, position)? };
                    nl.add_gate(kind, a, b).map_err(AsmError::from)?
                };
                index_of.push(id);
            }
            Instruction::Output { index } => {
                let id = resolve(&index_of, index, position)?;
                nl.mark_output(id).map_err(AsmError::from)?;
            }
        }
    }
    if declared_gates != actual_gates {
        return Err(AsmError::GateCountMismatch { declared: declared_gates, actual: actual_gates });
    }
    nl.validate()?;
    Ok(nl)
}

/// Indices are assigned sequentially; an input/gate instruction at stream
/// slot `n` must carry index `n + 1`.
fn expect_next_index(index: u64, defined: usize, position: usize) -> Result<(), AsmError> {
    if index != defined as u64 + 1 {
        return Err(AsmError::BadInstruction {
            position,
            reason: "indices must be assigned sequentially",
        });
    }
    Ok(())
}

fn resolve(index_of: &[NodeId], index: u64, position: usize) -> Result<NodeId, AsmError> {
    if index == 0 || index > index_of.len() as u64 {
        return Err(AsmError::DanglingReference { position, index });
    }
    Ok(index_of[(index - 1) as usize])
}

/// Summary statistics of a binary, without full disassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryStats {
    /// Total instructions (incl. header and outputs).
    pub instructions: usize,
    /// Gates declared by the header.
    pub declared_gates: u64,
    /// Size in bytes.
    pub bytes: usize,
}

/// Reads the header and sizes of a binary.
///
/// # Errors
///
/// Returns [`AsmError`] on misalignment or a missing/invalid header.
pub fn binary_stats(binary: &[u8]) -> Result<BinaryStats, AsmError> {
    if !binary.len().is_multiple_of(INSTRUCTION_BYTES) {
        return Err(AsmError::Misaligned { len: binary.len() });
    }
    if binary.is_empty() {
        return Err(AsmError::MissingHeader);
    }
    let Some(word) = words(binary).next() else {
        return Err(AsmError::MissingHeader);
    };
    let Instruction::Header { total_gates } = Instruction::decode(word, 0)? else {
        return Err(AsmError::MissingHeader);
    };
    Ok(BinaryStats {
        instructions: binary.len() / INSTRUCTION_BYTES,
        declared_gates: total_gates,
        bytes: binary.len(),
    })
}

/// Renders a human-readable disassembly listing (for debugging and for
/// the worked Figure 6 reproduction in the benchmark harness).
///
/// # Errors
///
/// Returns [`AsmError`] if the binary is malformed.
pub fn dump(binary: &[u8]) -> Result<String, AsmError> {
    if !binary.len().is_multiple_of(INSTRUCTION_BYTES) {
        return Err(AsmError::Misaligned { len: binary.len() });
    }
    let mut out = String::new();
    for (position, word) in words(binary).enumerate() {
        let inst = Instruction::decode(word, position)?;
        let desc = match inst {
            Instruction::Header { total_gates } => format!("header  gates={total_gates}"),
            Instruction::Input { index } => format!("input   %{index}"),
            Instruction::Gate { kind, input0: _, input1: _ } if kind.is_const() => {
                format!("gate    {kind}")
            }
            Instruction::Gate { kind, input0, input1 } => {
                format!("gate    {kind} %{input0} %{input1}")
            }
            Instruction::Output { index } => format!("output  %{index}"),
        };
        writeln!(out, "{position:6}: {word:032x}  {desc}")?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytfhe_netlist::GateKind;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let b = nl.add_input();
        let sum = nl.add_gate(GateKind::Xor, a, b).unwrap();
        let carry = nl.add_gate(GateKind::And, a, b).unwrap();
        nl.mark_output(sum).unwrap();
        nl.mark_output(carry).unwrap();
        nl
    }

    #[test]
    fn half_adder_binary_matches_figure_6() {
        let nl = half_adder();
        let bin = assemble(&nl);
        // 1 header + 2 inputs + 2 gates + 2 outputs = 7 instructions.
        assert_eq!(bin.len(), 7 * INSTRUCTION_BYTES);
        let stats = binary_stats(&bin).unwrap();
        assert_eq!(stats.declared_gates, 2);
        let insts: Vec<Instruction> =
            words(&bin).enumerate().map(|(p, w)| Instruction::decode(w, p).unwrap()).collect();
        assert_eq!(insts[0], Instruction::Header { total_gates: 2 });
        assert_eq!(insts[1], Instruction::Input { index: 1 });
        assert_eq!(insts[2], Instruction::Input { index: 2 });
        assert_eq!(insts[3], Instruction::Gate { kind: GateKind::Xor, input0: 1, input1: 2 });
        assert_eq!(insts[4], Instruction::Gate { kind: GateKind::And, input0: 1, input1: 2 });
        assert_eq!(insts[5], Instruction::Output { index: 3 });
        assert_eq!(insts[6], Instruction::Output { index: 4 });
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let nl = half_adder();
        let bin = assemble(&nl);
        let back = disassemble(&bin).unwrap();
        for bits in 0..4u32 {
            let input = vec![bits & 1 == 1, bits & 2 == 2];
            assert_eq!(nl.eval_plain(&input), back.eval_plain(&input));
        }
        assert_eq!(back.num_gates(), 2);
        assert_eq!(back.num_inputs(), 2);
    }

    #[test]
    fn round_trip_with_constants_and_unary() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let one = nl.add_gate(GateKind::Const1, a, a).unwrap();
        let not = nl.add_gate(GateKind::Not, a, a).unwrap();
        let g = nl.add_gate(GateKind::Andyn, one, not).unwrap();
        nl.mark_output(g).unwrap();
        let back = disassemble(&assemble(&nl)).unwrap();
        for x in [false, true] {
            assert_eq!(nl.eval_plain(&[x]), back.eval_plain(&[x]));
        }
    }

    #[test]
    fn corrupted_binaries_are_rejected() {
        let bin = assemble(&half_adder()).to_vec();
        // Truncated tail.
        assert!(matches!(disassemble(&bin[..bin.len() - 3]), Err(AsmError::Misaligned { .. })));
        // Empty.
        assert!(matches!(disassemble(&[]), Err(AsmError::MissingHeader)));
        // Flipped gate-count header.
        let mut bad = bin.clone();
        bad[1] ^= 0x01; // second byte of the LE count field
        assert!(matches!(disassemble(&bad), Err(AsmError::GateCountMismatch { .. })));
        // Forward reference: rewrite the first gate's input to index 5.
        let mut bad = bin.clone();
        let mut word = u128::from_le_bytes(bad[3 * 16..4 * 16].try_into().unwrap());
        word = (word & !(u128::from(FIELD_ONES) << 66)) | (5u128 << 66);
        bad[3 * 16..4 * 16].copy_from_slice(&word.to_le_bytes());
        assert!(matches!(disassemble(&bad), Err(AsmError::DanglingReference { .. })));
    }

    /// Replaces instruction `position` of `bin` with `word`.
    fn patch(bin: &[u8], position: usize, word: u128) -> Vec<u8> {
        let mut out = bin.to_vec();
        out[position * 16..(position + 1) * 16].copy_from_slice(&word.to_le_bytes());
        out
    }

    #[test]
    fn corrupting_each_field_of_a_gate_word_is_detected() {
        let bin = assemble(&half_adder()).to_vec();
        let gate = u128::from_le_bytes(bin[3 * 16..4 * 16].try_into().unwrap());

        // Operand field 1 out of range (index 0 is never assigned).
        let zero_op = gate & !(u128::from(FIELD_ONES) << 66);
        assert!(matches!(
            disassemble(&patch(&bin, 3, zero_op)),
            Err(AsmError::DanglingReference { position: 3, index: 0 })
        ));
        // Operand field 2 far out of range.
        let wild_op = (gate & !(u128::from(FIELD_ONES) << 4)) | (999u128 << 4);
        assert!(matches!(
            disassemble(&patch(&bin, 3, wild_op)),
            Err(AsmError::DanglingReference { position: 3, index: 999 })
        ));
        // Type nibble flipped to the input marker without the all-ones
        // reserved pattern in field 1.
        let bad_input = (gate & !0xF) | 0xF;
        assert!(matches!(
            disassemble(&patch(&bin, 3, bad_input)),
            Err(AsmError::BadInstruction { position: 3, .. })
        ));
        // A header-shaped word (nibble 0, field 1 zero) mid-stream decodes
        // as a NAND whose zero operand is a dangling reference.
        assert!(matches!(
            disassemble(&patch(&bin, 3, 7u128 << 4)),
            Err(AsmError::DanglingReference { position: 3, index: 0 })
        ));
    }

    #[test]
    fn corrupted_const_gate_operands_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_input();
        let one = nl.add_gate(GateKind::Const1, a, a).unwrap();
        nl.mark_output(one).unwrap();
        let bin = assemble(&nl).to_vec();
        // The const gate is instruction 2; scribble over its reserved
        // operand fields.
        let word = u128::from_le_bytes(bin[2 * 16..3 * 16].try_into().unwrap());
        let bad = (word & !(u128::from(FIELD_ONES) << 66)) | (1u128 << 66);
        assert!(matches!(
            disassemble(&patch(&bin, 2, bad)),
            Err(AsmError::BadInstruction { position: 2, .. })
        ));
        // Untouched, it still round-trips.
        assert!(disassemble(&bin).is_ok());
    }

    #[test]
    fn absurd_header_gate_count_is_too_large() {
        let bin = assemble(&half_adder()).to_vec();
        let huge_header = Instruction::Header { total_gates: u64::from(u32::MAX) + 1 }.encode();
        assert!(matches!(disassemble(&patch(&bin, 0, huge_header)), Err(AsmError::TooLarge)));
    }

    #[test]
    fn truncated_streams_yield_typed_errors_at_every_cut() {
        let bin = assemble(&half_adder()).to_vec();
        for cut in 0..bin.len() {
            // Every truncation must decode to a typed result — never a
            // panic. Unaligned cuts are Misaligned; aligned cuts that
            // only lose output instructions may still form a (smaller)
            // coherent netlist.
            match disassemble(&bin[..cut]) {
                Ok(nl) => assert!(nl.outputs().len() < 2, "cut {cut} lost nothing"),
                Err(e) => {
                    if !cut.is_multiple_of(INSTRUCTION_BYTES) {
                        assert!(matches!(e, AsmError::Misaligned { .. }), "cut {cut}: {e}");
                    }
                }
            }
        }
    }

    #[test]
    fn non_sequential_indices_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u128_le(Instruction::Header { total_gates: 0 }.encode());
        buf.put_u128_le(Instruction::Input { index: 2 }.encode()); // should be 1
        assert!(matches!(
            disassemble(&buf.freeze()),
            Err(AsmError::BadInstruction { position: 1, .. })
        ));
    }

    #[test]
    fn dump_lists_instructions() {
        let bin = assemble(&half_adder());
        let listing = dump(&bin).unwrap();
        assert!(listing.contains("header  gates=2"));
        assert!(listing.contains("xor %1 %2"));
        assert!(listing.contains("output  %3"));
        assert_eq!(listing.lines().count(), 7);
    }

    #[test]
    fn large_random_round_trip() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..8).map(|_| nl.add_input()).collect();
        let mut pool: Vec<_> = inputs.clone();
        let _ = &mut pool;
        for _ in 0..500 {
            let a = pool[rng.random_range(0..pool.len())];
            let b = pool[rng.random_range(0..pool.len())];
            let kinds = [
                GateKind::And,
                GateKind::Or,
                GateKind::Xor,
                GateKind::Nand,
                GateKind::Andny,
                GateKind::Not,
            ];
            let kind = kinds[rng.random_range(0..kinds.len())];
            pool.push(nl.add_gate(kind, a, b).unwrap());
        }
        nl.mark_output(*pool.last().unwrap()).unwrap();
        nl.mark_output(pool[pool.len() / 2]).unwrap();
        let back = disassemble(&assemble(&nl)).unwrap();
        let mut bits_rng = rand::rngs::StdRng::seed_from_u64(100);
        for _ in 0..20 {
            let input: Vec<bool> = (0..8).map(|_| bits_rng.random()).collect();
            assert_eq!(nl.eval_plain(&input), back.eval_plain(&input));
        }
    }
}
