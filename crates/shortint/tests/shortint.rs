//! Oracle tests of the shortint layer against plain integer arithmetic:
//! every encrypted operation must agree with the corresponding `u64`
//! computation, across every message/carry split the parameter set
//! admits, under whichever SIMD path `PYTFHE_SIMD` selects.

use proptest::prelude::*;
use pytfhe_shortint::{ShortintClientKey, ShortintError, ShortintParams, ShortintServerKey};
use pytfhe_tfhe::{NoiseGuard, Params, SecureRng, TfheError};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One registry entry per message/carry split: the split plus its
/// leaked key pair.
type KeyEntry = (u32, u32, &'static ShortintClientKey, &'static Mutex<ShortintServerKey>);

/// One key pair per message/carry split, generated on first use and
/// shared across the suite (bootstrap keygen is the expensive part).
fn keys(
    message_bits: u32,
    carry_bits: u32,
) -> (&'static ShortintClientKey, MutexGuard<'static, ShortintServerKey>) {
    static CELLS: OnceLock<Mutex<Vec<KeyEntry>>> = OnceLock::new();
    let registry = CELLS.get_or_init(|| Mutex::new(Vec::new()));
    let mut reg = registry.lock().unwrap();
    if let Some(&(_, _, ck, sk)) = reg.iter().find(|e| e.0 == message_bits && e.1 == carry_bits) {
        return (ck, sk.lock().unwrap());
    }
    let mut rng = SecureRng::seed_from_u64(0xC0DE + u64::from(message_bits * 8 + carry_bits));
    let split = ShortintParams::new(message_bits, carry_bits).expect("valid split");
    let client = ShortintClientKey::generate(
        split,
        Params::testing_shortint(),
        &NoiseGuard::default(),
        &mut rng,
    )
    .expect("testing_shortint admits 4-bit LUTs");
    let server = client.server_key(&mut rng);
    let ck: &'static ShortintClientKey = Box::leak(Box::new(client));
    let sk: &'static Mutex<ShortintServerKey> = Box::leak(Box::new(Mutex::new(server)));
    reg.push((message_bits, carry_bits, ck, sk));
    (ck, sk.lock().unwrap())
}

#[test]
fn round_trips_cover_every_admissible_precision() {
    // All splits with 1..=4 total bits of precision.
    for (m, c) in [(1, 0), (1, 1), (2, 0), (2, 1), (1, 2), (2, 2), (4, 0), (1, 3)] {
        let split = ShortintParams::new(m, c).expect("valid split");
        let mut rng = SecureRng::seed_from_u64(0x0DD + u64::from(m * 8 + c));
        let client = ShortintClientKey::generate(
            split,
            Params::testing_shortint(),
            &NoiseGuard::default(),
            &mut rng,
        )
        .expect("admissible");
        for v in 0..split.message_space() {
            let ct = client.encrypt(v, &mut rng).expect("in range");
            assert_eq!(client.decrypt(&ct), v, "split {m}+{c}, value {v}");
        }
        assert!(matches!(
            client.encrypt(split.message_space(), &mut rng),
            Err(ShortintError::MessageOutOfRange { .. })
        ));
    }
}

#[test]
fn keygen_refuses_parameters_that_cannot_decode_the_precision() {
    // The boolean-grade testing parameters decode 1-bit gates reliably
    // but their mod-switch noise overwhelms multi-bit windows: the
    // guard must refuse with a typed error rather than hand out keys
    // that corrupt results silently.
    let mut rng = SecureRng::seed_from_u64(99);
    let refused = ShortintClientKey::generate(
        ShortintParams::message_2_carry_2(),
        Params::testing(),
        &NoiseGuard::default(),
        &mut rng,
    );
    assert!(
        matches!(refused, Err(ShortintError::Noise(TfheError::NoiseBudgetExceeded { .. }))),
        "got {refused:?}"
    );
}

#[test]
fn linear_adds_are_bootstrap_free_and_bivariates_cost_one() {
    let (client, mut server) = keys(2, 2);
    let mut rng = SecureRng::seed_from_u64(4242);
    let a = client.encrypt(2, &mut rng).unwrap();
    let b = client.encrypt(3, &mut rng).unwrap();
    server.reset_stats();
    let sum = server.add(&a, &b);
    assert_eq!(client.decrypt(&sum), 5, "carry space holds 2+3 exactly");
    assert_eq!(server.stats().bootstraps, 0, "linear add must not bootstrap");
    assert_eq!(server.stats().linear_ops, 1);
    server.reset_stats();
    let prod = server.mul_low(&a, &b).unwrap();
    assert_eq!(client.decrypt(&prod), (2 * 3) % 4);
    assert_eq!(server.stats().bootstraps, 1, "fresh bivariate costs exactly one bootstrap");
}

#[test]
fn carry_chains_normalize_through_extraction() {
    let (client, mut server) = keys(2, 2);
    let mut rng = SecureRng::seed_from_u64(777);
    let three = client.encrypt(3, &mut rng).unwrap();
    // 3+3+3+3 = 12 fills the carry space (degree 12 < 16).
    let mut acc = server.add(&three, &three);
    acc = server.add(&acc, &three);
    acc = server.add(&acc, &three);
    assert_eq!(client.decrypt(&acc), 12);
    assert_eq!(client.decrypt(&server.message_extract(&acc)), 12 % 4);
    assert_eq!(client.decrypt(&server.carry_extract(&acc)), 12 / 4);
    // One more add exceeds the window; `add` must auto-reduce instead
    // of wrapping silently.
    let wide = server.add(&acc, &three);
    assert_eq!(client.decrypt(&wide) % 4, (12 + 3) % 4);
}

#[test]
fn radix_adds_are_exact_for_8_and_16_bit_values() {
    let (client, mut server) = keys(2, 2);
    let mut rng = SecureRng::seed_from_u64(31337);
    for (x, y, bits) in
        [(200u64, 100u64, 8u32), (255, 255, 8), (0, 173, 8), (51_234, 30_111, 16), (65_535, 1, 16)]
    {
        let blocks = (bits / 2) as usize; // 2 message bits per digit
        let a = client.encrypt_radix(x, blocks, &mut rng).unwrap();
        let b = client.encrypt_radix(y, blocks, &mut rng).unwrap();
        server.reset_stats();
        let sum = server.add_radix(&a, &b).unwrap();
        let want = (x + y) & ((1 << bits) - 1);
        assert_eq!(client.decrypt_radix(&sum), want, "{x}+{y} mod 2^{bits}");
        assert!(
            server.stats().bootstraps <= 2 * blocks as u64,
            "carry propagation is at most two bootstraps per digit"
        );
    }
    assert!(matches!(
        client.encrypt_radix(256, 4, &mut SecureRng::seed_from_u64(1)),
        Err(ShortintError::RadixOutOfRange { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bivariate LUT ops agree with the plain-integer oracles for every
    /// operand pair the message space admits.
    #[test]
    fn bivariate_ops_match_plain_integers(x in 0u64..4, y in 0u64..4) {
        let (client, mut server) = keys(2, 2);
        let mut rng = SecureRng::seed_from_u64(x * 31 + y * 7 + 1);
        let a = client.encrypt(x, &mut rng).unwrap();
        let b = client.encrypt(y, &mut rng).unwrap();
        prop_assert_eq!(client.decrypt(&server.mul_low(&a, &b).unwrap()), (x * y) % 4);
        prop_assert_eq!(client.decrypt(&server.max(&a, &b).unwrap()), x.max(y));
        let ord = client.decrypt(&server.cmp(&a, &b).unwrap());
        prop_assert_eq!(ord, match x.cmp(&y) {
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => 1,
            std::cmp::Ordering::Greater => 2,
        });
        prop_assert_eq!(client.decrypt(&server.add(&a, &b)), x + y);
    }

    /// Univariate LUTs evaluate arbitrary functions over the window.
    #[test]
    fn unary_luts_match_their_tables(x in 0u64..4, k in 1u64..15) {
        let (client, mut server) = keys(2, 2);
        let mut rng = SecureRng::seed_from_u64(x * 131 + k);
        let a = client.encrypt(x, &mut rng).unwrap();
        let out = server.apply_lut(&a, |v| (v * k + 3) % 16);
        prop_assert_eq!(client.decrypt(&out), (x * k + 3) % 16);
    }
}
