//! # pytfhe-shortint — exact multi-bit integers over TFHE
//!
//! Boolean TFHE spends one bootstrap per two-input gate; a 4-bit adder
//! is ~20 bootstraps. This crate moves arithmetic to *shortint*
//! ciphertexts: a single LWE sample carries a 1–4-bit value on the
//! half-torus message encoding, split into a **message** and a
//! **carry** space ([`ShortintParams`]). Linear operations (addition,
//! packing) are bootstrap-free and accumulate into the carry space;
//! one *programmable bootstrap* then evaluates an arbitrary lookup
//! table over the whole window, resetting the carries
//! ([`ShortintServerKey::apply_lut`]).
//!
//! Bivariate functions cost the **same single bootstrap**: the operands
//! are packed as `lhs · 2^m + rhs` with one linear combination, and a
//! LUT over the packed window computes anything of two arguments —
//! multiplication, comparison, maximum
//! ([`ShortintServerKey::bivariate`]). Values wider than one digit
//! compose as radix vectors with rippled carry extraction
//! ([`RadixCiphertext`]).
//!
//! Key generation runs the analytical noise admission check up front
//! ([`pytfhe_tfhe::NoiseGuard::admit_lut`]): a parameter set that
//! cannot decode the requested precision within the failure-probability
//! budget is refused with a typed error, never a silently wrong result.
//!
//! ```
//! use pytfhe_shortint::{ShortintClientKey, ShortintParams};
//! use pytfhe_tfhe::{NoiseGuard, Params, SecureRng};
//!
//! let mut rng = SecureRng::seed_from_u64(7);
//! let client = ShortintClientKey::generate(
//!     ShortintParams::message_2_carry_2(),
//!     Params::testing_shortint(),
//!     &NoiseGuard::default(),
//!     &mut rng,
//! )
//! .expect("parameters admit 4-bit LUTs");
//! let mut server = client.server_key(&mut rng);
//! let a = client.encrypt(3, &mut rng).unwrap();
//! let b = client.encrypt(2, &mut rng).unwrap();
//! let product = server.mul_low(&a, &b).unwrap(); // one bootstrap
//! assert_eq!(client.decrypt(&product), (3 * 2) % 4); // low product digit
//! let bigger = server.max(&a, &b).unwrap(); // also one bootstrap
//! assert_eq!(client.decrypt(&bigger), 3);
//! ```

mod error;
mod keys;
mod params;
mod radix;

pub use error::ShortintError;
pub use keys::{Shortint, ShortintClientKey, ShortintServerKey, ShortintStats};
pub use params::ShortintParams;
pub use radix::RadixCiphertext;
