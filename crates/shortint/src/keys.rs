use crate::{ShortintError, ShortintParams};
use pytfhe_telemetry as telemetry;
use pytfhe_tfhe::{
    ClientKey, GateScratch, LweCiphertext, NoiseGuard, Params, SecureRng, ServerKey,
};

/// A multi-bit ciphertext: one LWE sample carrying a value on the
/// half-torus message encoding, plus the *degree* — a conservative
/// plaintext upper bound the server tracks so linear operations can
/// prove they stay inside the carry headroom without decrypting.
#[derive(Debug, Clone)]
pub struct Shortint {
    pub(crate) ct: LweCiphertext,
    pub(crate) degree: u64,
}

impl Shortint {
    /// The tracked plaintext upper bound.
    pub fn degree(&self) -> u64 {
        self.degree
    }

    /// The raw LWE sample.
    pub fn ciphertext(&self) -> &LweCiphertext {
        &self.ct
    }
}

/// Client-side shortint key: the boolean [`ClientKey`] plus the
/// message/carry split every ciphertext under it uses.
#[derive(Debug, Clone)]
pub struct ShortintClientKey {
    inner: ClientKey,
    shortint: ShortintParams,
}

impl ShortintClientKey {
    /// Generates a key after the noise guard admits the split: the
    /// analytical decode-failure probability of the *worst* packed LUT
    /// this split performs (bivariate packing at full precision) must
    /// stay under the guard's budget, so precisions the parameter set
    /// cannot decode are refused with a typed error instead of
    /// corrupting results silently at runtime.
    ///
    /// # Errors
    ///
    /// [`ShortintError::Noise`] when admission fails.
    pub fn generate(
        shortint: ShortintParams,
        params: Params,
        guard: &NoiseGuard,
        rng: &mut SecureRng,
    ) -> Result<Self, ShortintError> {
        guard.admit_lut(&params, shortint.total_bits(), shortint.worst_coeff_sq_sum())?;
        Ok(ShortintClientKey { inner: ClientKey::generate(params, rng), shortint })
    }

    /// The message/carry split.
    pub fn shortint_params(&self) -> ShortintParams {
        self.shortint
    }

    /// The underlying boolean client key.
    pub fn inner(&self) -> &ClientKey {
        &self.inner
    }

    /// Encrypts a message-space value.
    ///
    /// # Errors
    ///
    /// [`ShortintError::MessageOutOfRange`] when `m` exceeds the
    /// message space.
    pub fn encrypt(&self, m: u64, rng: &mut SecureRng) -> Result<Shortint, ShortintError> {
        if m >= self.shortint.message_space() {
            return Err(ShortintError::MessageOutOfRange {
                value: m,
                space: self.shortint.message_space(),
            });
        }
        let ct = self.inner.encrypt_message(m as u32, self.shortint.total_bits(), rng);
        Ok(Shortint { ct, degree: self.shortint.message_space() - 1 })
    }

    /// Decrypts the full plaintext window (message plus any unresolved
    /// carries). Callers wanting the message alone take the result
    /// modulo [`ShortintParams::message_space`], or bootstrap with
    /// [`ShortintServerKey::message_extract`] first.
    pub fn decrypt(&self, ct: &Shortint) -> u64 {
        u64::from(self.inner.decrypt_message(&ct.ct, self.shortint.total_bits()))
    }

    /// Derives the matching server key.
    pub fn server_key(&self, rng: &mut SecureRng) -> ShortintServerKey {
        let inner = self.inner.server_key(rng);
        let scratch = inner.gate_scratch();
        let packed = inner.constant(false);
        ShortintServerKey {
            inner,
            shortint: self.shortint,
            scratch,
            packed,
            stats: ShortintStats::default(),
        }
    }
}

/// Bootstraps and linear operations a server key has performed —
/// programmable bootstraps are the unit everything in this codebase is
/// priced in, so callers can check an algorithm's cost directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShortintStats {
    /// Programmable bootstraps run (one per LUT evaluation).
    pub bootstraps: u64,
    /// Linear operations (additions, packings) — no bootstrap.
    pub linear_ops: u64,
}

/// Server-side shortint key: the boolean [`ServerKey`] plus reusable
/// scratch, so the hot path ([`pytfhe_tfhe::ServerKey::apply_lut_into`])
/// allocates nothing after warm-up. Operations take `&mut self` for the
/// scratch; clone the key for concurrent evaluation streams.
#[derive(Debug)]
pub struct ShortintServerKey {
    inner: ServerKey,
    shortint: ShortintParams,
    scratch: GateScratch,
    packed: LweCiphertext,
    stats: ShortintStats,
}

impl ShortintServerKey {
    /// The message/carry split.
    pub fn shortint_params(&self) -> ShortintParams {
        self.shortint
    }

    /// The underlying boolean server key.
    pub fn inner(&self) -> &ServerKey {
        &self.inner
    }

    /// Operation counters since construction or the last reset.
    pub fn stats(&self) -> ShortintStats {
        self.stats
    }

    /// Zeroes the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = ShortintStats::default();
    }

    fn count_bootstrap(&mut self) {
        self.stats.bootstraps += 1;
        if telemetry::enabled() {
            telemetry::metrics().counter_add("shortint_bootstraps_total", 1);
        }
    }

    fn count_linear(&mut self) {
        self.stats.linear_ops += 1;
        if telemetry::enabled() {
            telemetry::metrics().counter_add("shortint_linear_ops_total", 1);
        }
    }

    /// Applies a univariate function in one programmable bootstrap.
    /// `f` is tabulated over the full plaintext window (so it sees
    /// unresolved carries) and its outputs are reduced modulo the
    /// window; the result's degree is the table maximum over inputs the
    /// operand can actually take.
    pub fn apply_lut(&mut self, a: &Shortint, f: impl Fn(u64) -> u64) -> Shortint {
        let space = self.shortint.total_space();
        let table: Vec<u32> = (0..space).map(|v| (f(v) % space) as u32).collect();
        let degree = table[..=(a.degree as usize).min(space as usize - 1)]
            .iter()
            .map(|&v| u64::from(v))
            .max()
            .unwrap_or(0);
        let mut out = self.inner.constant(false);
        self.inner.apply_lut_into(
            &a.ct,
            &table,
            self.shortint.total_bits(),
            &mut self.scratch,
            &mut out,
        );
        self.count_bootstrap();
        Shortint { ct: out, degree }
    }

    /// Resolves the operand to its message: `v mod 2^m`, one bootstrap.
    pub fn message_extract(&mut self, a: &Shortint) -> Shortint {
        let m = self.shortint.message_space();
        let mut out = self.apply_lut(a, |v| v % m);
        out.degree = out.degree.min(a.degree).min(m - 1);
        out
    }

    /// Extracts the carries above the message: `v / 2^m`, one bootstrap.
    pub fn carry_extract(&mut self, a: &Shortint) -> Shortint {
        let m = self.shortint.message_space();
        let mut out = self.apply_lut(a, |v| v / m);
        out.degree = out.degree.min(a.degree / m);
        out
    }

    /// Adds without carry management: one linear operation, degrees
    /// accumulate into the carry space.
    ///
    /// # Errors
    ///
    /// [`ShortintError::DegreeOverflow`] when the summed degrees would
    /// wrap the plaintext window.
    pub fn unchecked_add(&mut self, a: &Shortint, b: &Shortint) -> Result<Shortint, ShortintError> {
        let degree = a.degree + b.degree;
        if degree >= self.shortint.total_space() {
            return Err(ShortintError::DegreeOverflow {
                degree,
                space: self.shortint.total_space(),
            });
        }
        let mut out = self.inner.constant(false);
        self.inner.pack_messages_into(
            self.shortint.total_bits(),
            &[(1, &a.ct), (1, &b.ct)],
            &mut out,
        );
        self.count_linear();
        Ok(Shortint { ct: out, degree })
    }

    /// Exact addition into the plaintext window: operands are
    /// bootstrap-reduced to their messages only when the carry space
    /// could not absorb the sum, then added linearly. The result may
    /// carry (degree up to `2·(2^m − 1)`); follow with
    /// [`ShortintServerKey::message_extract`] /
    /// [`ShortintServerKey::carry_extract`] to normalize.
    pub fn add(&mut self, a: &Shortint, b: &Shortint) -> Shortint {
        let space = self.shortint.total_space();
        let (mut a, mut b) = (a.clone(), b.clone());
        if a.degree + b.degree >= space {
            // Reduce the larger operand first; one bootstrap usually
            // restores enough headroom.
            if a.degree >= b.degree {
                a = self.message_extract(&a);
            } else {
                b = self.message_extract(&b);
            }
        }
        if a.degree + b.degree >= space {
            if a.degree >= b.degree {
                a = self.message_extract(&a);
            } else {
                b = self.message_extract(&b);
            }
        }
        self.unchecked_add(&a, &b).expect("message-reduced operands fit the window")
    }

    /// Applies a bivariate function in **one** programmable bootstrap:
    /// the operands are packed as `lhs · 2^m + rhs` (a linear
    /// operation), and a single LUT over the packed window computes
    /// `f(lhs, rhs)`. Operands above the message space are
    /// bootstrap-reduced first; `f`'s outputs are reduced modulo the
    /// plaintext window.
    ///
    /// # Errors
    ///
    /// [`ShortintError::BivariateUnsupported`] when the split has no
    /// packing room (`2m > total`).
    pub fn bivariate(
        &mut self,
        a: &Shortint,
        b: &Shortint,
        f: impl Fn(u64, u64) -> u64,
    ) -> Result<Shortint, ShortintError> {
        if !self.shortint.supports_bivariate() {
            return Err(ShortintError::BivariateUnsupported {
                message_bits: self.shortint.message_bits(),
                carry_bits: self.shortint.carry_bits(),
            });
        }
        let m = self.shortint.message_space();
        let space = self.shortint.total_space();
        let a = if a.degree < m { a.clone() } else { self.message_extract(a) };
        let b = if b.degree < m { b.clone() } else { self.message_extract(b) };
        self.inner.pack_messages_into(
            self.shortint.total_bits(),
            &[(m as i32, &a.ct), (1, &b.ct)],
            &mut self.packed,
        );
        self.count_linear();
        let table: Vec<u32> =
            (0..space).map(|idx| (f((idx / m) % m, idx % m) % space) as u32).collect();
        let degree = (0..=a.degree)
            .flat_map(|x| (0..=b.degree).map(move |y| (x, y)))
            .map(|(x, y)| u64::from(table[(x * m + y) as usize]))
            .max()
            .unwrap_or(0);
        let mut out = self.inner.constant(false);
        self.inner.apply_lut_into(
            &self.packed,
            &table,
            self.shortint.total_bits(),
            &mut self.scratch,
            &mut out,
        );
        self.count_bootstrap();
        Ok(Shortint { ct: out, degree })
    }

    /// The low message-space half of the product: `(a·b) mod 2^m`, one
    /// bootstrap.
    ///
    /// # Errors
    ///
    /// Propagates [`ShortintServerKey::bivariate`] errors.
    pub fn mul_low(&mut self, a: &Shortint, b: &Shortint) -> Result<Shortint, ShortintError> {
        let m = self.shortint.message_space();
        self.bivariate(a, b, |x, y| (x * y) % m)
    }

    /// Three-way comparison in one bootstrap: 0 when `a < b`, 1 when
    /// equal, 2 when `a > b`.
    ///
    /// # Errors
    ///
    /// Propagates [`ShortintServerKey::bivariate`] errors.
    pub fn cmp(&mut self, a: &Shortint, b: &Shortint) -> Result<Shortint, ShortintError> {
        self.bivariate(a, b, |x, y| match x.cmp(&y) {
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => 1,
            std::cmp::Ordering::Greater => 2,
        })
    }

    /// The larger operand, one bootstrap.
    ///
    /// # Errors
    ///
    /// Propagates [`ShortintServerKey::bivariate`] errors.
    pub fn max(&mut self, a: &Shortint, b: &Shortint) -> Result<Shortint, ShortintError> {
        self.bivariate(a, b, u64::max)
    }
}
