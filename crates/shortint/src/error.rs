use pytfhe_tfhe::TfheError;
use std::fmt;

/// Errors of the shortint layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShortintError {
    /// The parameter set cannot decode the requested precision within
    /// the noise guard's failure-probability budget (keygen admission).
    Noise(TfheError),
    /// Invalid message/carry split.
    BadParams { message_bits: u32, carry_bits: u32 },
    /// A plaintext does not fit the message space.
    MessageOutOfRange { value: u64, space: u64 },
    /// An operation would overflow the carry space, silently wrapping
    /// the plaintext window.
    DegreeOverflow { degree: u64, space: u64 },
    /// Bivariate ops pack `lhs · 2^m + rhs` into one window, which
    /// needs `2 · message_bits ≤ message_bits + carry_bits`.
    BivariateUnsupported { message_bits: u32, carry_bits: u32 },
    /// Radix operands have different block counts.
    RadixLengthMismatch { lhs: usize, rhs: usize },
    /// A radix value does not fit the requested block count.
    RadixOutOfRange { value: u64, bits: u32 },
}

impl fmt::Display for ShortintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShortintError::Noise(e) => write!(f, "noise admission refused: {e}"),
            ShortintError::BadParams { message_bits, carry_bits } => {
                write!(
                    f,
                    "invalid shortint split: {message_bits} message + {carry_bits} carry bits"
                )
            }
            ShortintError::MessageOutOfRange { value, space } => {
                write!(f, "message {value} outside the {space}-value message space")
            }
            ShortintError::DegreeOverflow { degree, space } => {
                write!(f, "degree {degree} would overflow the {space}-value plaintext window")
            }
            ShortintError::BivariateUnsupported { message_bits, carry_bits } => write!(
                f,
                "bivariate LUTs need carry_bits >= message_bits, got {message_bits}+{carry_bits}"
            ),
            ShortintError::RadixLengthMismatch { lhs, rhs } => {
                write!(f, "radix operands have {lhs} vs {rhs} blocks")
            }
            ShortintError::RadixOutOfRange { value, bits } => {
                write!(f, "value {value} does not fit {bits} radix bits")
            }
        }
    }
}

impl std::error::Error for ShortintError {}

impl From<TfheError> for ShortintError {
    fn from(e: TfheError) -> Self {
        ShortintError::Noise(e)
    }
}
