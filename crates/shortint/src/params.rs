use crate::ShortintError;

/// The message/carry split of a shortint ciphertext.
///
/// A shortint rides the half-torus message encoding at
/// `message_bits + carry_bits` bits of precision: the low
/// `message_bits` hold the value, the bits above are carry headroom
/// that linear operations (additions, packings) fill before a
/// programmable bootstrap resets it. The canonical split is
/// [`ShortintParams::message_2_carry_2`], mirroring the
/// `message_2_carry_2` class of production shortint libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShortintParams {
    message_bits: u32,
    carry_bits: u32,
}

impl ShortintParams {
    /// Builds a split, validating the combined precision.
    ///
    /// # Errors
    ///
    /// [`ShortintError::BadParams`] when `message_bits` is 0 or the
    /// total exceeds 4 bits — the widest window a packed programmable
    /// bootstrap decodes under the default noise budget.
    pub fn new(message_bits: u32, carry_bits: u32) -> Result<Self, ShortintError> {
        if message_bits == 0 || message_bits + carry_bits > 4 {
            return Err(ShortintError::BadParams { message_bits, carry_bits });
        }
        Ok(ShortintParams { message_bits, carry_bits })
    }

    /// 2 message bits + 2 carry bits: exact nibble-free arithmetic with
    /// enough headroom for bivariate packing and radix carry chains.
    pub fn message_2_carry_2() -> Self {
        ShortintParams { message_bits: 2, carry_bits: 2 }
    }

    /// 1 message bit + 1 carry bit: boolean-sized messages with packing
    /// room for bivariate LUTs.
    pub fn message_1_carry_1() -> Self {
        ShortintParams { message_bits: 1, carry_bits: 1 }
    }

    /// Message bits.
    pub fn message_bits(&self) -> u32 {
        self.message_bits
    }

    /// Carry bits.
    pub fn carry_bits(&self) -> u32 {
        self.carry_bits
    }

    /// Total encoding precision in bits.
    pub fn total_bits(&self) -> u32 {
        self.message_bits + self.carry_bits
    }

    /// Values the message space holds (`2^message_bits`).
    pub fn message_space(&self) -> u64 {
        1 << self.message_bits
    }

    /// Values the full plaintext window holds (`2^total_bits`).
    pub fn total_space(&self) -> u64 {
        1 << self.total_bits()
    }

    /// Whether bivariate LUTs fit: packing `lhs · 2^m + rhs` needs
    /// `2m ≤ total`.
    pub fn supports_bivariate(&self) -> bool {
        2 * self.message_bits <= self.total_bits()
    }

    /// The squared-coefficient sum of the worst linear combination an
    /// evaluation under this split performs — the quantity the noise
    /// guard's LUT admission check takes. Bivariate packing scales the
    /// left operand by `2^m` (coefficients `[2^m, 1]`); splits without
    /// bivariate room only ever add with unit coefficients.
    pub fn worst_coeff_sq_sum(&self) -> f64 {
        if self.supports_bivariate() {
            let shift = self.message_space() as f64;
            shift * shift + 1.0
        } else {
            2.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_validate() {
        assert!(ShortintParams::new(2, 2).is_ok());
        assert!(ShortintParams::new(1, 0).is_ok());
        assert!(ShortintParams::new(4, 0).is_ok());
        assert_eq!(
            ShortintParams::new(0, 2),
            Err(ShortintError::BadParams { message_bits: 0, carry_bits: 2 })
        );
        assert_eq!(
            ShortintParams::new(3, 2),
            Err(ShortintError::BadParams { message_bits: 3, carry_bits: 2 })
        );
    }

    #[test]
    fn spaces_and_packing() {
        let p = ShortintParams::message_2_carry_2();
        assert_eq!(p.message_space(), 4);
        assert_eq!(p.total_space(), 16);
        assert!(p.supports_bivariate());
        assert_eq!(p.worst_coeff_sq_sum(), 17.0);
        let narrow = ShortintParams::new(4, 0).unwrap();
        assert!(!narrow.supports_bivariate());
        assert_eq!(narrow.worst_coeff_sq_sum(), 2.0);
    }
}
