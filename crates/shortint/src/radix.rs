//! Radix composition: wide exact integers as little-endian vectors of
//! shortint digits, with bootstrap-driven carry propagation. An 8-bit
//! value under the `message_2_carry_2` split is 4 digits; 16-bit is 8.

use crate::{Shortint, ShortintClientKey, ShortintError, ShortintServerKey};
use pytfhe_tfhe::SecureRng;

/// A wide integer: `blocks[i]` holds bits `[i·m, (i+1)·m)` of the value
/// under an `m`-message-bit split.
#[derive(Debug, Clone)]
pub struct RadixCiphertext {
    blocks: Vec<Shortint>,
}

impl RadixCiphertext {
    /// The digit vector, least significant first.
    pub fn blocks(&self) -> &[Shortint] {
        &self.blocks
    }

    /// Plaintext bits this radix value spans.
    pub fn bits(&self, client: &ShortintClientKey) -> u32 {
        self.blocks.len() as u32 * client.shortint_params().message_bits()
    }
}

impl ShortintClientKey {
    /// Encrypts `value` into `blocks` radix digits.
    ///
    /// # Errors
    ///
    /// [`ShortintError::RadixOutOfRange`] when the value needs more
    /// bits than the digits hold.
    pub fn encrypt_radix(
        &self,
        value: u64,
        blocks: usize,
        rng: &mut SecureRng,
    ) -> Result<RadixCiphertext, ShortintError> {
        let m = self.shortint_params().message_bits();
        let bits = blocks as u32 * m;
        if bits < 64 && value >= 1 << bits {
            return Err(ShortintError::RadixOutOfRange { value, bits });
        }
        let mask = self.shortint_params().message_space() - 1;
        let blocks = (0..blocks)
            .map(|i| self.encrypt((value >> (i as u32 * m)) & mask, rng))
            .collect::<Result<_, _>>()?;
        Ok(RadixCiphertext { blocks })
    }

    /// Decrypts a radix value, reducing each digit to its message (the
    /// server's carry propagation keeps digits reduced, so this is a
    /// plain weighted sum).
    pub fn decrypt_radix(&self, ct: &RadixCiphertext) -> u64 {
        let m = self.shortint_params().message_bits();
        let mask = self.shortint_params().message_space() - 1;
        ct.blocks
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, b)| acc | ((self.decrypt(b) & mask) << (i as u32 * m)))
    }
}

impl ShortintServerKey {
    /// Exact wrapping addition modulo `2^(blocks·m)`: digits are added
    /// linearly, then each position's carry is extracted and rippled
    /// into the next — two bootstraps per digit (one carry extract, one
    /// message extract), zero for the top digit's dropped carry-out.
    ///
    /// # Errors
    ///
    /// [`ShortintError::RadixLengthMismatch`] on different block
    /// counts, [`ShortintError::DegreeOverflow`] when the split's carry
    /// space cannot hold `digit + digit + carry` (needs at least one
    /// carry bit).
    pub fn add_radix(
        &mut self,
        a: &RadixCiphertext,
        b: &RadixCiphertext,
    ) -> Result<RadixCiphertext, ShortintError> {
        if a.blocks.len() != b.blocks.len() {
            return Err(ShortintError::RadixLengthMismatch {
                lhs: a.blocks.len(),
                rhs: b.blocks.len(),
            });
        }
        let mut out = Vec::with_capacity(a.blocks.len());
        let mut carry: Option<Shortint> = None;
        let last = a.blocks.len().saturating_sub(1);
        for (i, (da, db)) in a.blocks.iter().zip(&b.blocks).enumerate() {
            let mut sum = self.unchecked_add(da, db)?;
            if let Some(c) = carry.take() {
                sum = self.unchecked_add(&sum, &c)?;
            }
            if i < last {
                carry = Some(self.carry_extract(&sum));
            }
            out.push(self.message_extract(&sum));
        }
        Ok(RadixCiphertext { blocks: out })
    }
}
