//! Chrome trace-event JSON exporter.
//!
//! Produces the `{"traceEvents": [...]}` object format understood by
//! `chrome://tracing`, `about:tracing`, and <https://ui.perfetto.dev>.
//! Real events live under pid 1 (`pytfhe`): tid 0.. are OS threads,
//! tids offset by [`WORKER_TID_BASE`] are executor worker lanes.
//! Each simulated process ([`Lane::Sim`]) gets its own pid starting at
//! [`SIM_PID_BASE`], so virtual Fig. 8/9 schedules render alongside the
//! real execution without their (virtual) timestamps colliding.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use super::{escape_json, json_f64};
use crate::{Event, EventKind, Lane};

/// pid of the real process in the exported trace.
pub const REAL_PID: u32 = 1;
/// First pid handed to simulated processes.
pub const SIM_PID_BASE: u32 = 2;
/// Worker-lane tids start here so they never collide with thread tids.
pub const WORKER_TID_BASE: u32 = 1000;

/// Renders events as a Chrome trace-event JSON document.
pub fn chrome_trace(events: &[Event]) -> String {
    // Assign pids to simulated processes and tids to their lanes, in
    // first-appearance order so output is deterministic for a given
    // event sequence.
    let mut sim_pids: BTreeMap<&'static str, u32> = BTreeMap::new();
    let mut sim_tids: BTreeMap<(u32, String), u32> = BTreeMap::new();
    let mut threads_seen: BTreeMap<u32, ()> = BTreeMap::new();
    let mut workers_seen: BTreeMap<u32, ()> = BTreeMap::new();
    for e in events {
        match &e.lane {
            Lane::Thread(t) => {
                threads_seen.insert(*t, ());
            }
            Lane::Worker(w) => {
                workers_seen.insert(*w, ());
            }
            Lane::Sim { process, lane } => {
                let next_pid = SIM_PID_BASE + sim_pids.len() as u32;
                let pid = *sim_pids.entry(process).or_insert(next_pid);
                let next_tid = sim_tids.iter().filter(|((p, _), _)| *p == pid).count() as u32;
                sim_tids.entry((pid, lane.clone())).or_insert(next_tid);
            }
        }
    }

    let mut entries: Vec<String> = Vec::with_capacity(events.len() + 8);

    // Metadata: process and thread names.
    entries.push(meta_process(REAL_PID, "pytfhe"));
    for (&t, ()) in &threads_seen {
        entries.push(meta_thread(REAL_PID, t, &format!("thread {t}")));
    }
    for (&w, ()) in &workers_seen {
        entries.push(meta_thread(REAL_PID, WORKER_TID_BASE + w, &format!("worker {w}")));
    }
    for (process, &pid) in &sim_pids {
        entries.push(meta_process(pid, &format!("{process} (virtual time)")));
    }
    for ((pid, lane), &tid) in &sim_tids {
        entries.push(meta_thread(*pid, tid, lane));
    }

    for e in events {
        let (pid, tid) = match &e.lane {
            Lane::Thread(t) => (REAL_PID, *t),
            Lane::Worker(w) => (REAL_PID, WORKER_TID_BASE + w),
            Lane::Sim { process, lane } => {
                let pid = sim_pids[process];
                (pid, sim_tids[&(pid, lane.clone())])
            }
        };
        let ts_us = json_f64(e.ts_ns as f64 / 1000.0);
        let name = escape_json(&e.name);
        let cat = escape_json(e.cat);
        entries.push(match e.kind {
            EventKind::Span { dur_ns } => format!(
                "{{\"ph\":\"X\",\"name\":\"{name}\",\"cat\":\"{cat}\",\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us},\"dur\":{dur}}}",
                dur = json_f64(dur_ns as f64 / 1000.0),
            ),
            EventKind::Instant => format!(
                "{{\"ph\":\"i\",\"name\":\"{name}\",\"cat\":\"{cat}\",\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us},\"s\":\"t\"}}"
            ),
            EventKind::Counter { value } => format!(
                "{{\"ph\":\"C\",\"name\":\"{name}\",\"cat\":\"{cat}\",\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us},\
                 \"args\":{{\"value\":{v}}}}}",
                v = json_f64(value),
            ),
        });
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn meta_process(pid: u32, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    )
}

fn meta_thread(pid: u32, tid: u32, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    )
}

/// Renders `events` with [`chrome_trace`] and writes the document to
/// `path`, creating parent directories as needed.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[Event]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace(events).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                kind: EventKind::Span { dur_ns: 2_500 },
                cat: "exec",
                name: "wave 0".into(),
                lane: Lane::Thread(0),
                ts_ns: 1_000,
            },
            Event {
                kind: EventKind::Span { dur_ns: 1_000 },
                cat: "exec",
                name: "chunk".into(),
                lane: Lane::Worker(2),
                ts_ns: 1_500,
            },
            Event {
                kind: EventKind::Instant,
                cat: "exec",
                name: "retry gate=7 \"quoted\"".into(),
                lane: Lane::Worker(2),
                ts_ns: 2_000,
            },
            Event {
                kind: EventKind::Counter { value: 3.0 },
                cat: "exec",
                name: "queue_depth".into(),
                lane: Lane::Thread(0),
                ts_ns: 2_100,
            },
            Event {
                kind: EventKind::Span { dur_ns: 500_000_000 },
                cat: "sim",
                name: "wave 1".into(),
                lane: Lane::Sim { process: "cluster-sim", lane: "node0/core3".into() },
                ts_ns: 0,
            },
        ]
    }

    #[test]
    fn output_is_valid_json() {
        let doc = chrome_trace(&sample_events());
        json::validate(&doc).expect("chrome trace must be valid JSON");
    }

    #[test]
    fn lanes_map_to_pids_and_tids() {
        let doc = chrome_trace(&sample_events());
        // Worker 2 → tid 1002 under the real pid.
        assert!(doc.contains("\"tid\":1002"));
        // Sim process gets its own pid with a named lane.
        assert!(doc.contains("cluster-sim (virtual time)"));
        assert!(doc.contains("node0/core3"));
        // Metadata names present.
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"thread_name\""));
        // Phases all present.
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"C\""));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let doc = chrome_trace(&sample_events());
        // 1_000 ns start → 1 µs; 2_500 ns dur → 2.5 µs.
        assert!(doc.contains("\"ts\":1.0,\"dur\":2.5"), "doc: {doc}");
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = chrome_trace(&[]);
        json::validate(&doc).expect("empty trace must be valid JSON");
        assert!(doc.contains("traceEvents"));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir =
            std::env::temp_dir().join(format!("pytfhe-telemetry-test-{}", std::process::id()));
        let path = dir.join("nested").join("trace.json");
        write_chrome_trace(&path, &sample_events()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        json::validate(&body).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
