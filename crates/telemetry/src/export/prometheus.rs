//! Prometheus text exposition (version 0.0.4) exporter for the
//! metrics registry.

use std::io::Write as _;
use std::path::Path;

use crate::MetricsSnapshot;

/// Renders a snapshot in Prometheus text exposition format. Histograms
/// expand to `_bucket{le=...}` / `_sum` / `_count` series; labels
/// already carried in a metric name (e.g.
/// `tfhe_blind_rotate_seconds{gate="nand"}`) are preserved and the `le`
/// label is spliced into the existing set.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let base = base_name(name);
        out.push_str(&format!("# TYPE {base} counter\n{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let base = base_name(name);
        out.push_str(&format!("# TYPE {base} gauge\n{name} {}\n", fmt_value(*value)));
    }
    for (name, hist) in &snapshot.histograms {
        let base = base_name(name);
        out.push_str(&format!("# TYPE {base} histogram\n"));
        for (upper, cumulative) in hist.cumulative_buckets() {
            out.push_str(&format!("{} {cumulative}\n", with_label(name, "le", &fmt_value(upper))));
        }
        out.push_str(&format!("{} {}\n", with_label(name, "le", "+Inf"), hist.count()));
        out.push_str(&format!("{} {}\n", suffixed(name, "_sum"), fmt_value(hist.sum())));
        out.push_str(&format!("{} {}\n", suffixed(name, "_count"), hist.count()));
    }
    out
}

/// Metric name with any `{...}` label set stripped.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Appends `_bucket` (or `_sum`/`_count`) before any label set.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.split_once('{') {
        Some((base, labels)) => format!("{base}{suffix}{{{labels}"),
        None => format!("{name}{suffix}"),
    }
}

/// `name_bucket{...existing...,key="value"}`.
fn with_label(name: &str, key: &str, value: &str) -> String {
    match name.split_once('{') {
        Some((base, labels)) => {
            let labels = labels.trim_end_matches('}');
            format!("{base}_bucket{{{labels},{key}=\"{value}\"}}")
        }
        None => format!("{name}_bucket{{{key}=\"{value}\"}}"),
    }
}

fn fmt_value(v: f64) -> String {
    // f64 Display never prints exponents or locale separators, which is
    // exactly the exposition-format number syntax.
    format!("{v}")
}

/// Writes the exposition text to `path`, creating parent directories.
pub fn write_prometheus_text(
    path: impl AsRef<Path>,
    snapshot: &MetricsSnapshot,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(prometheus_text(snapshot).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn counters_and_gauges_expose() {
        let m = Metrics::default();
        m.counter_add("exec_gates_total", 64);
        m.gauge_set("tfhe_noise_budget_bits", 12.5);
        let text = prometheus_text(&m.snapshot());
        assert!(text.contains("# TYPE exec_gates_total counter"));
        assert!(text.contains("exec_gates_total 64"));
        assert!(text.contains("# TYPE tfhe_noise_budget_bits gauge"));
        assert!(text.contains("tfhe_noise_budget_bits 12.5"));
    }

    #[test]
    fn histogram_expands_with_le_buckets() {
        let m = Metrics::default();
        m.observe("lat_seconds", 0.5, &[1.0, 2.0]);
        m.observe("lat_seconds", 5.0, &[1.0, 2.0]);
        let text = prometheus_text(&m.snapshot());
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"2\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_sum 5.5"));
        assert!(text.contains("lat_seconds_count 2"));
    }

    #[test]
    fn labelled_name_splices_le() {
        let m = Metrics::default();
        m.observe("boot_seconds{gate=\"nand\"}", 0.01, &[0.1]);
        let text = prometheus_text(&m.snapshot());
        assert!(text.contains("# TYPE boot_seconds histogram"));
        assert!(text.contains("boot_seconds_bucket{gate=\"nand\",le=\"0.1\"} 1"), "text: {text}");
        assert!(text.contains("boot_seconds_sum{gate=\"nand\"} 0.01"));
        assert!(text.contains("boot_seconds_count{gate=\"nand\"} 1"));
    }
}
