//! Exporters: Chrome trace JSON, Prometheus text exposition, and a
//! compact summary table.

mod chrome;
mod prometheus;
mod summary;

pub use chrome::{chrome_trace, write_chrome_trace};
pub use prometheus::{prometheus_text, write_prometheus_text};
pub use summary::summary_table;

/// Escapes a string for inclusion in a JSON string literal.
///
/// Public because downstream emitters (e.g. the bench harness's
/// `BENCH_*.json` writer) reuse it to stay serde-free.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it is valid JSON (no `inf`/`NaN` literals) and
/// round-trips cleanly.
///
/// Public for the same reason as [`escape_json`].
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on an f64 never prints exponents for typical magnitudes,
        // but guarantee a JSON number shape either way.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else if v.is_nan() {
        "0.0".to_string()
    } else if v > 0.0 {
        "1e308".to_string()
    } else {
        "-1e308".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_f64_is_always_a_number() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "1e308");
        assert_eq!(json_f64(f64::NEG_INFINITY), "-1e308");
    }
}
