//! Compact plain-text summary: spans aggregated by name plus the
//! metrics registry, for terminal output at the end of a run.

use std::collections::BTreeMap;

use crate::{Event, EventKind, MetricsSnapshot};

/// Renders a human-readable summary table: recorded spans aggregated
/// by `(category, name)` with call counts and total/mean durations,
/// followed by counters, gauges, and histogram means.
pub fn summary_table(events: &[Event], snapshot: &MetricsSnapshot) -> String {
    #[derive(Default)]
    struct Agg {
        count: u64,
        total_ns: u64,
    }
    let mut spans: BTreeMap<(String, String), Agg> = BTreeMap::new();
    for e in events {
        if let EventKind::Span { dur_ns } = e.kind {
            let agg = spans.entry((e.cat.to_string(), e.name.clone())).or_default();
            agg.count += 1;
            agg.total_ns += dur_ns;
        }
    }

    let mut rows: Vec<[String; 4]> = Vec::new();
    // Sort hottest-first so the expensive phases top the table.
    let mut by_cost: Vec<_> = spans.into_iter().collect();
    by_cost.sort_by_key(|(_, agg)| std::cmp::Reverse(agg.total_ns));
    for ((cat, name), agg) in by_cost {
        rows.push([
            format!("{cat}/{name}"),
            format!("{}", agg.count),
            fmt_ns(agg.total_ns),
            fmt_ns(agg.total_ns / agg.count.max(1)),
        ]);
    }

    let mut out = String::new();
    if !rows.is_empty() {
        out.push_str(&render(["span", "count", "total", "mean"], &rows));
    }

    let mut metric_rows: Vec<[String; 2]> = Vec::new();
    for (name, value) in &snapshot.counters {
        metric_rows.push([name.clone(), format!("{value}")]);
    }
    for (name, value) in &snapshot.gauges {
        metric_rows.push([name.clone(), format!("{value:.4}")]);
    }
    for (name, hist) in &snapshot.histograms {
        metric_rows.push([
            name.clone(),
            format!(
                "n={} mean={} total={}",
                hist.count(),
                fmt_ns((hist.mean() * 1e9) as u64),
                fmt_ns((hist.sum() * 1e9) as u64)
            ),
        ]);
    }
    if !metric_rows.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&render(["metric", "value"], &metric_rows));
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded; set PYTFHE_TRACE=1)\n");
    }
    out
}

fn render<const N: usize>(header: [&str; N], rows: &[[String; N]]) -> String {
    let mut widths: [usize; N] = [0; N];
    for (i, h) in header.iter().enumerate() {
        widths[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[&str], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..widths[i] {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(&header, &mut out);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let rule_refs: Vec<&str> = rule.iter().map(String::as_str).collect();
    line(&rule_refs, &mut out);
    for row in rows {
        let refs: Vec<&str> = row.iter().map(String::as_str).collect();
        line(&refs, &mut out);
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lane, Metrics};

    #[test]
    fn aggregates_spans_hottest_first() {
        let events = vec![
            Event {
                kind: EventKind::Span { dur_ns: 1_000_000 },
                cat: "exec",
                name: "wave".into(),
                lane: Lane::Thread(0),
                ts_ns: 0,
            },
            Event {
                kind: EventKind::Span { dur_ns: 3_000_000 },
                cat: "exec",
                name: "wave".into(),
                lane: Lane::Thread(0),
                ts_ns: 0,
            },
            Event {
                kind: EventKind::Span { dur_ns: 9_000_000 },
                cat: "tfhe",
                name: "bootstrap".into(),
                lane: Lane::Thread(0),
                ts_ns: 0,
            },
        ];
        let table = summary_table(&events, &MetricsSnapshot::default());
        let boot = table.find("tfhe/bootstrap").unwrap();
        let wave = table.find("exec/wave").unwrap();
        assert!(boot < wave, "hottest span must come first:\n{table}");
        assert!(table.contains("2"), "wave count aggregated:\n{table}");
    }

    #[test]
    fn includes_metrics_sections() {
        let m = Metrics::default();
        m.counter_add("exec_retries_total", 3);
        m.gauge_set("noise_sigma", 0.015);
        m.observe_seconds("boot_seconds", 0.02);
        let table = summary_table(&[], &m.snapshot());
        assert!(table.contains("exec_retries_total"));
        assert!(table.contains("noise_sigma"));
        assert!(table.contains("boot_seconds"));
        assert!(table.contains("n=1"));
    }

    #[test]
    fn empty_summary_points_at_the_env_var() {
        let table = summary_table(&[], &MetricsSnapshot::default());
        assert!(table.contains("PYTFHE_TRACE"));
    }
}
