//! A minimal JSON validator (RFC 8259 grammar, no value tree).
//!
//! The workspace has no serde (vendored-stubs policy), but the
//! integration tests and CI smoke job must assert that exported Chrome
//! traces and bench reports are *well-formed* JSON. This is a small
//! recursive-descent checker: it accepts exactly the JSON grammar and
//! reports the byte offset of the first error.

/// Error from [`validate`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Description of the expectation that failed.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Checks that `input` is exactly one valid JSON value (with optional
/// surrounding whitespace).
pub fn validate(input: &str) -> Result<(), JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 256;

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { pos: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
        self.depth -= 1;
        Ok(())
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
        self.depth -= 1;
        Ok(())
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("invalid \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"a \\\"quoted\\\" string with \\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":false}",
            " \n\t{\"trailing\": \"ws\"} \n",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\x escape\"",
            "nul",
            "{}{}",
            "[1] []",
            "\"raw\ncontrol\"",
        ] {
            assert!(validate(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn error_reports_position() {
        let err = validate("[1, oops]").unwrap_err();
        assert_eq!(err.pos, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(validate(&deep).is_err());
    }
}
