//! The global metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Names follow Prometheus conventions (`snake_case`, unit suffix,
//! `_total` for counters). Labels are carried *in the name* in
//! exposition syntax — e.g. `tfhe_blind_rotate_seconds{gate="nand"}` —
//! which keeps the registry a flat map and lets the Prometheus exporter
//! splice `le` buckets into the existing label set.
//!
//! Unlike the span recorder, the registry is **not** gated on
//! [`crate::enabled`]: updates are explicit calls on [`metrics`], and
//! call sites on hot paths gate themselves (the executors only time and
//! observe when tracing is on). This lets tests and benches use the
//! registry directly without flipping the global trace switch.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Default latency buckets (seconds), log-spaced from 1µs to 10s —
/// wide enough to cover both a single SIMD butterfly pass and a full
/// multi-second encrypted inference.
pub const SECONDS_BUCKETS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// A fixed-bucket histogram: cumulative-style observation counts plus
/// sum, in the shape Prometheus exposition wants.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    uppers: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; one extra slot
    /// at the end for the +Inf overflow bucket.
    counts: Vec<u64>,
    sum: f64,
}

impl Histogram {
    fn new(uppers: &[f64]) -> Self {
        debug_assert!(uppers.windows(2).all(|w| w[0] < w[1]));
        Histogram { uppers: uppers.to_vec(), counts: vec![0; uppers.len() + 1], sum: 0.0 }
    }

    fn observe(&mut self, value: f64) {
        let idx = self.uppers.iter().position(|&u| value <= u).unwrap_or(self.uppers.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// `(upper_bound, cumulative_count)` pairs for the finite buckets;
    /// the +Inf bucket is implied by [`Histogram::count`].
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        self.uppers
            .iter()
            .zip(&self.counts)
            .map(|(&u, &c)| {
                acc += c;
                (u, acc)
            })
            .collect()
    }
}

/// Registry of named counters, gauges, and histograms. Obtain the
/// process-wide instance with [`metrics`].
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics registry poisoned")
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Observes a latency into the named histogram with the default
    /// [`SECONDS_BUCKETS`].
    pub fn observe_seconds(&self, name: &str, seconds: f64) {
        self.observe(name, seconds, SECONDS_BUCKETS);
    }

    /// Observes `value` into the named histogram, creating it with
    /// `buckets` (strictly increasing upper bounds) on first use.
    /// Later observations reuse the histogram's original buckets.
    pub fn observe(&self, name: &str, value: f64, buckets: &[f64]) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(buckets))
            .observe(value);
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Clears every metric (test isolation).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

/// A point-in-time copy of the registry, as sorted maps so exporters
/// emit deterministic output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// The process-wide metrics registry.
pub fn metrics() -> &'static Metrics {
    static REGISTRY: OnceLock<Metrics> = OnceLock::new();
    REGISTRY.get_or_init(Metrics::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.counter_add("gates_total", 2);
        m.counter_add("gates_total", 3);
        assert_eq!(m.snapshot().counters["gates_total"], 5);
    }

    #[test]
    fn gauges_overwrite() {
        let m = Metrics::default();
        m.gauge_set("queue_depth", 4.0);
        m.gauge_set("queue_depth", 1.0);
        assert_eq!(m.snapshot().gauges["queue_depth"], 1.0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let m = Metrics::default();
        m.observe("lat", 0.5, &[1.0, 2.0, 4.0]);
        m.observe("lat", 1.5, &[1.0, 2.0, 4.0]);
        m.observe("lat", 100.0, &[1.0, 2.0, 4.0]); // overflow bucket
        let h = &m.snapshot().histograms["lat"];
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 102.0).abs() < 1e-12);
        assert_eq!(h.cumulative_buckets(), vec![(1.0, 1), (2.0, 2), (4.0, 2)]);
        assert!((h.mean() - 34.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_value_lands_in_its_bucket() {
        // Prometheus buckets are `le` (less-or-equal) bounds.
        let m = Metrics::default();
        m.observe("b", 1.0, &[1.0, 2.0]);
        assert_eq!(m.snapshot().histograms["b"].cumulative_buckets()[0], (1.0, 1));
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::default();
        m.counter_add("c", 1);
        m.gauge_set("g", 1.0);
        m.observe_seconds("h", 0.1);
        m.reset();
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn registry_is_thread_safe() {
        let m = Metrics::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        m.counter_add("hits_total", 1);
                        m.observe_seconds("lat_seconds", 1e-4);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counters["hits_total"], 400);
        assert_eq!(snap.histograms["lat_seconds"].count(), 400);
    }
}
