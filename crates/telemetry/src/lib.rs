//! **pytfhe-telemetry** — tracing, metrics, and profiling for the PyTFHE
//! pipeline.
//!
//! The paper's entire evaluation hangs on *where time goes*: Figure 7's
//! per-gate blind-rotation/key-switch split, Figures 8/9's launch and
//! transfer accounting, Figure 10's scaling curves. This crate is the
//! one observability layer behind all of it:
//!
//! * a low-overhead **span/event tracer** ([`span`], [`instant`],
//!   [`counter_sample`]) — thread-safe recorder, RAII span guards,
//!   monotonic timestamps. Instrumentation is compiled in everywhere but
//!   runtime-gated: with `PYTFHE_TRACE` unset the entire hot path is a
//!   single relaxed atomic load ([`enabled`]);
//! * a **metrics registry** ([`metrics`]) with counters, gauges, and
//!   fixed-bucket histograms (per-gate-kind bootstrap latency, wave
//!   width, retry counts, noise budget);
//! * **exporters** ([`export`]): Chrome `chrome://tracing` /
//!   `about:tracing` JSON, Prometheus text exposition, and a compact
//!   summary table.
//!
//! # Gating
//!
//! The recorder is off by default. Set `PYTFHE_TRACE=1` (or call
//! [`set_enabled`]`(true)` from a harness) to record. The first call to
//! [`enabled`] latches the environment variable into an atomic; every
//! later call is exactly one `Relaxed` load, so instrumented code costs
//! nothing measurable when tracing is off.
//!
//! # Example
//!
//! ```
//! use pytfhe_telemetry as telemetry;
//! telemetry::set_enabled(true);
//! {
//!     let _span = telemetry::span("demo", "outer work");
//!     telemetry::metrics().counter_add("demo_items_total", 3);
//! } // span records on drop
//! let trace = telemetry::export::chrome_trace(&telemetry::drain());
//! assert!(trace.contains("outer work"));
//! # telemetry::set_enabled(false);
//! ```
//!
//! Two time domains coexist: real spans stamp monotonic nanoseconds
//! since process start, while the performance simulators record
//! *virtual-time* spans ([`sim_span`]) whose timestamps are simulated
//! seconds — the Chrome exporter gives each simulated process its own
//! `pid`, so a simulated Figure 8/9 schedule renders in the same trace
//! viewer next to the real execution that produced it.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod export;
pub mod json;
mod metrics;
mod recorder;

pub use metrics::{metrics, Histogram, Metrics, MetricsSnapshot, SECONDS_BUCKETS};
pub use recorder::{
    counter_sample, drain, events, instant, instant_on_worker, sim_span, span, span_count,
    span_with, worker_span, worker_span_with, Event, EventKind, Lane, Span,
};

/// Tri-state gate: 0 = not yet initialized from the environment.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Whether the recorder is on. This is the *only* cost instrumentation
/// pays when tracing is disabled: one relaxed atomic load (after the
/// first call latches `PYTFHE_TRACE`).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Cold path of [`enabled`]: latch `PYTFHE_TRACE` into the atomic.
#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("PYTFHE_TRACE").is_ok_and(|v| {
        let v = v.trim();
        !(v.is_empty()
            || v == "0"
            || v.eq_ignore_ascii_case("false")
            || v.eq_ignore_ascii_case("off"))
    });
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Turns the recorder on or off, overriding `PYTFHE_TRACE` (harnesses
/// and tests; production code should let the environment decide).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// The process epoch all real-time spans are measured from.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first telemetry call of the process.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Sequential ids handed to threads on their first recording.
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_LANE: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
}

/// This thread's stable lane id (assigned on first use, in call order —
/// the main thread is almost always 0).
pub fn thread_lane() -> u32 {
    THREAD_LANE.with(|c| {
        let mut id = c.get();
        if id == u32::MAX {
            id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_lanes_are_stable_and_distinct() {
        let here = thread_lane();
        assert_eq!(here, thread_lane(), "lane id must be stable per thread");
        let other = std::thread::spawn(thread_lane).join().unwrap();
        assert_ne!(here, other, "distinct threads get distinct lanes");
    }

    #[test]
    fn set_enabled_overrides() {
        // Other tests in this binary also toggle the global gate; this
        // only checks that the override round-trips.
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }
}
