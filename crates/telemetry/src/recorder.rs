//! The global event recorder: spans, instants, and counter samples.
//!
//! All recording free functions ([`span`], [`instant`], …) check
//! [`crate::enabled`] first and are no-ops when tracing is off, so call
//! sites never need their own gate for correctness — only to skip the
//! cost of *preparing* arguments (e.g. `format!` names, extra `Instant`
//! reads) on hot paths.

use std::sync::Mutex;

use crate::{enabled, now_ns, thread_lane};

/// Where an event is drawn in the trace viewer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lane {
    /// An OS thread, identified by its stable [`thread_lane`] id.
    Thread(u32),
    /// An executor worker slot (worker ids survive thread reuse across
    /// waves, unlike raw thread ids).
    Worker(u32),
    /// A virtual lane inside a simulated process; timestamps on such
    /// events are *simulated* nanoseconds, not wall clock.
    Sim {
        /// Simulated process name (e.g. `"cluster-sim"`, `"gpu-sim"`).
        process: &'static str,
        /// Lane label within the process (e.g. `"node0/core3"`).
        lane: String,
    },
}

/// What kind of event was recorded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A duration: `[ts_ns, ts_ns + dur_ns)`.
    Span {
        /// Length of the span in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker (retry, eviction, checkpoint, …).
    Instant,
    /// A sampled counter value (queue depth, wave width, …).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span / instant / counter payload.
    pub kind: EventKind,
    /// Category: the subsystem that emitted it (`"session"`, `"exec"`,
    /// `"graph"`, `"tfhe"`, `"sim"`).
    pub cat: &'static str,
    /// Human-readable name shown in the viewer.
    pub name: String,
    /// Which lane the event belongs to.
    pub lane: Lane,
    /// Start time in nanoseconds (monotonic since process start for
    /// real lanes, simulated time for [`Lane::Sim`]).
    pub ts_ns: u64,
}

static RECORDER: Mutex<Vec<Event>> = Mutex::new(Vec::new());

fn push(event: Event) {
    RECORDER.lock().expect("telemetry recorder poisoned").push(event);
}

/// RAII span guard: records a [`EventKind::Span`] covering its
/// lifetime when dropped. Obtained from [`span`] / [`worker_span`]; a
/// guard created while tracing is disabled is inert (and records
/// nothing even if tracing is enabled before it drops).
#[must_use = "a span records on drop; binding it to `_` ends it immediately"]
#[derive(Debug)]
pub struct Span(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    cat: &'static str,
    name: String,
    lane: Lane,
    start_ns: u64,
}

impl Span {
    /// An inert span that records nothing (the disabled path).
    pub const fn disabled() -> Self {
        Span(None)
    }

    /// Ends the span now (explicit alternative to letting it drop).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let end_ns = now_ns();
            push(Event {
                kind: EventKind::Span { dur_ns: end_ns.saturating_sub(inner.start_ns) },
                cat: inner.cat,
                name: inner.name,
                lane: inner.lane,
                ts_ns: inner.start_ns,
            });
        }
    }
}

/// Starts a span on the current thread's lane.
pub fn span(cat: &'static str, name: impl Into<String>) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span(Some(SpanInner {
        cat,
        name: name.into(),
        lane: Lane::Thread(thread_lane()),
        start_ns: now_ns(),
    }))
}

/// Like [`span`], but the name closure only runs when tracing is
/// enabled — use on hot paths where building the name (`format!`)
/// would otherwise cost even while disabled.
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    span(cat, name())
}

/// Starts a span on an explicit executor worker lane.
pub fn worker_span(cat: &'static str, name: impl Into<String>, worker: u32) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span(Some(SpanInner { cat, name: name.into(), lane: Lane::Worker(worker), start_ns: now_ns() }))
}

/// Like [`worker_span`] with a lazily-built name.
pub fn worker_span_with(cat: &'static str, name: impl FnOnce() -> String, worker: u32) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    worker_span(cat, name(), worker)
}

/// Records a point-in-time marker on the current thread's lane.
pub fn instant(cat: &'static str, name: impl Into<String>) {
    if !enabled() {
        return;
    }
    push(Event {
        kind: EventKind::Instant,
        cat,
        name: name.into(),
        lane: Lane::Thread(thread_lane()),
        ts_ns: now_ns(),
    });
}

/// Records a point-in-time marker on an executor worker lane.
pub fn instant_on_worker(cat: &'static str, name: impl Into<String>, worker: u32) {
    if !enabled() {
        return;
    }
    push(Event {
        kind: EventKind::Instant,
        cat,
        name: name.into(),
        lane: Lane::Worker(worker),
        ts_ns: now_ns(),
    });
}

/// Samples a counter series (rendered as a stacked area chart by the
/// Chrome viewer).
pub fn counter_sample(cat: &'static str, name: impl Into<String>, value: f64) {
    if !enabled() {
        return;
    }
    push(Event {
        kind: EventKind::Counter { value },
        cat,
        name: name.into(),
        lane: Lane::Thread(thread_lane()),
        ts_ns: now_ns(),
    });
}

/// Records a *virtual-time* span from a simulator: `start_s..end_s`
/// are simulated seconds, drawn under their own process in the viewer.
pub fn sim_span(
    process: &'static str,
    lane: impl Into<String>,
    name: impl Into<String>,
    start_s: f64,
    end_s: f64,
) {
    if !enabled() {
        return;
    }
    let start_ns = (start_s.max(0.0) * 1e9) as u64;
    let end_ns = (end_s.max(0.0) * 1e9) as u64;
    push(Event {
        kind: EventKind::Span { dur_ns: end_ns.saturating_sub(start_ns) },
        cat: "sim",
        name: name.into(),
        lane: Lane::Sim { process, lane: lane.into() },
        ts_ns: start_ns,
    });
}

/// Takes all recorded events out of the recorder, leaving it empty.
pub fn drain() -> Vec<Event> {
    std::mem::take(&mut *RECORDER.lock().expect("telemetry recorder poisoned"))
}

/// A snapshot of all recorded events (the recorder keeps them).
pub fn events() -> Vec<Event> {
    RECORDER.lock().expect("telemetry recorder poisoned").clone()
}

/// Number of `Span` events currently in the recorder — the overhead
/// gate the integration tests assert on (must be 0 when disabled).
pub fn span_count() -> usize {
    RECORDER
        .lock()
        .expect("telemetry recorder poisoned")
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;
    use std::sync::{Mutex, MutexGuard};

    /// Tests in this binary mutate the global gate + recorder; hold
    /// this while doing so.
    static GATE: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        set_enabled(false);
        drain();
        {
            let _s = span("test", "invisible");
            instant("test", "invisible");
            counter_sample("test", "invisible", 1.0);
            sim_span("simproc", "lane", "invisible", 0.0, 1.0);
        }
        assert_eq!(events().len(), 0);
        assert_eq!(span_count(), 0);
    }

    #[test]
    fn span_records_on_drop_with_duration() {
        let _g = lock();
        set_enabled(true);
        drain();
        {
            let _s = span("test", "work");
            std::hint::black_box(0u64);
        }
        set_enabled(false);
        let evts = drain();
        assert_eq!(evts.len(), 1);
        let e = &evts[0];
        assert_eq!(e.name, "work");
        assert_eq!(e.cat, "test");
        assert!(matches!(e.kind, EventKind::Span { .. }));
        assert!(matches!(e.lane, Lane::Thread(_)));
    }

    #[test]
    fn worker_and_sim_lanes_round_trip() {
        let _g = lock();
        set_enabled(true);
        drain();
        worker_span("exec", "chunk", 3).end();
        instant_on_worker("exec", "retry", 3);
        sim_span("cluster-sim", "node0/core1", "wave 0", 0.5, 1.25);
        set_enabled(false);
        let evts = drain();
        assert_eq!(evts.len(), 3);
        assert_eq!(evts[0].lane, Lane::Worker(3));
        assert_eq!(evts[1].kind, EventKind::Instant);
        let Lane::Sim { process, lane } = &evts[2].lane else {
            panic!("expected sim lane, got {:?}", evts[2].lane);
        };
        assert_eq!(*process, "cluster-sim");
        assert_eq!(lane, "node0/core1");
        assert_eq!(evts[2].ts_ns, 500_000_000);
        assert_eq!(evts[2].kind, EventKind::Span { dur_ns: 750_000_000 });
    }

    #[test]
    fn counter_samples_record_values() {
        let _g = lock();
        set_enabled(true);
        drain();
        counter_sample("exec", "wave_width", 17.0);
        set_enabled(false);
        let evts = drain();
        assert_eq!(evts.len(), 1);
        assert_eq!(evts[0].kind, EventKind::Counter { value: 17.0 });
    }

    #[test]
    fn recorder_is_thread_safe() {
        let _g = lock();
        set_enabled(true);
        drain();
        std::thread::scope(|s| {
            for w in 0..4u32 {
                s.spawn(move || {
                    for i in 0..8 {
                        worker_span("exec", format!("w{w} item {i}"), w).end();
                    }
                });
            }
        });
        set_enabled(false);
        assert_eq!(drain().len(), 32);
    }
}
