//! TLWE (ring-LWE over the torus) samples — the accumulator type of blind
//! rotation.

use crate::lwe::{LweCiphertext, LweKey};
use crate::poly::{naive_negacyclic_mul, IntPoly, TorusPoly};
use crate::rng::SecureRng;
use crate::torus::Torus32;

/// A TLWE secret key: `k` binary polynomials of degree bound `N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlweKey {
    polys: Vec<IntPoly>,
    n: usize,
}

impl TlweKey {
    /// Samples a key with `k` binary polynomials of size `n`.
    pub fn generate(k: usize, n: usize, rng: &mut SecureRng) -> Self {
        TlweKey { polys: (0..k).map(|_| IntPoly::binary(n, rng)).collect(), n }
    }

    /// Builds a key from explicit polynomials (deserialization).
    pub fn from_polys(polys: Vec<IntPoly>) -> Self {
        let n = polys.first().map_or(0, IntPoly::len);
        TlweKey { polys, n }
    }

    /// GLWE dimension `k`.
    pub fn k(&self) -> usize {
        self.polys.len()
    }

    /// Ring dimension `N`.
    pub fn poly_size(&self) -> usize {
        self.n
    }

    /// The key polynomials.
    pub fn polys(&self) -> &[IntPoly] {
        &self.polys
    }

    /// Encrypts a message polynomial with fresh noise.
    pub fn encrypt_poly(
        &self,
        message: &TorusPoly,
        stdev: f64,
        rng: &mut SecureRng,
    ) -> TlweCiphertext {
        debug_assert_eq!(message.len(), self.n);
        let a: Vec<TorusPoly> = (0..self.k()).map(|_| TorusPoly::uniform(self.n, rng)).collect();
        let mut b = message.clone();
        b.add_gaussian(stdev, rng);
        for (ai, si) in a.iter().zip(&self.polys) {
            b.add_assign(&naive_negacyclic_mul(si, ai));
        }
        TlweCiphertext { a, b }
    }

    /// The phase polynomial `b - sum(a_i * s_i)`.
    pub fn phase(&self, ct: &TlweCiphertext) -> TorusPoly {
        let mut phase = ct.b.clone();
        for (ai, si) in ct.a.iter().zip(&self.polys) {
            phase.sub_assign(&naive_negacyclic_mul(si, ai));
        }
        phase
    }

    /// Reinterprets the TLWE key as an LWE key of dimension `k * N` — the
    /// key under which extracted samples decrypt.
    pub fn extracted_lwe_key(&self) -> LweKey {
        let mut bits = Vec::with_capacity(self.k() * self.n);
        for p in &self.polys {
            bits.extend_from_slice(p.coeffs());
        }
        LweKey::from_bits(bits)
    }
}

/// A TLWE ciphertext: `k` mask polynomials plus a body polynomial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlweCiphertext {
    /// Mask polynomials `a_1 .. a_k`.
    pub(crate) a: Vec<TorusPoly>,
    /// Body polynomial `b`.
    pub(crate) b: TorusPoly,
}

impl TlweCiphertext {
    /// The trivial (noiseless) encryption of `message`.
    pub fn trivial(message: TorusPoly, k: usize) -> Self {
        let n = message.len();
        TlweCiphertext { a: (0..k).map(|_| TorusPoly::zero(n)).collect(), b: message }
    }

    /// GLWE dimension `k`.
    pub fn k(&self) -> usize {
        self.a.len()
    }

    /// Ring dimension `N`.
    pub fn poly_size(&self) -> usize {
        self.b.len()
    }

    /// All `k + 1` polynomials, mask first then body.
    pub fn polys(&self) -> impl Iterator<Item = &TorusPoly> {
        self.a.iter().chain(std::iter::once(&self.b))
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &TlweCiphertext) {
        for (x, y) in self.a.iter_mut().zip(&other.a) {
            x.add_assign(y);
        }
        self.b.add_assign(&other.b);
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &TlweCiphertext) {
        for (x, y) in self.a.iter_mut().zip(&other.a) {
            x.sub_assign(y);
        }
        self.b.sub_assign(&other.b);
    }

    /// Rotates every polynomial by `X^amount` (negacyclic).
    pub fn rotate(&self, amount: usize) -> TlweCiphertext {
        TlweCiphertext {
            a: self.a.iter().map(|p| p.mul_by_xk(amount)).collect(),
            b: self.b.mul_by_xk(amount),
        }
    }

    /// Like [`TlweCiphertext::rotate`], writing into `out` (same shape)
    /// without allocating.
    pub fn rotate_into(&self, amount: usize, out: &mut TlweCiphertext) {
        debug_assert_eq!(out.k(), self.k());
        for (src, dst) in self.a.iter().zip(&mut out.a) {
            src.mul_by_xk_into(amount, dst);
        }
        self.b.mul_by_xk_into(amount, &mut out.b);
    }

    /// Overwrites `self` with a copy of `other` (same shape), reusing all
    /// polynomial buffers.
    pub fn copy_from(&mut self, other: &TlweCiphertext) {
        debug_assert_eq!(self.k(), other.k());
        for (dst, src) in self.a.iter_mut().zip(&other.a) {
            dst.copy_from(src);
        }
        self.b.copy_from(&other.b);
    }

    /// Extracts the LWE encryption of the constant coefficient of the
    /// phase, under [`TlweKey::extracted_lwe_key`]. This is the bridge from
    /// the blind-rotated accumulator back to an ordinary LWE sample.
    pub fn extract_lwe(&self) -> LweCiphertext {
        let n = self.poly_size();
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.k() * n);
        self.extract_lwe_into(&mut out);
        out
    }

    /// Like [`TlweCiphertext::extract_lwe`], writing into `out` (dimension
    /// `k * N`) without allocating.
    pub fn extract_lwe_into(&self, out: &mut LweCiphertext) {
        let n = self.poly_size();
        out.assign_trivial(self.b.coeffs()[0], self.k() * n);
        let mask = out.mask_mut();
        for (poly, chunk) in self.a.iter().zip(mask.chunks_exact_mut(n)) {
            let c = poly.coeffs();
            chunk[0] = c[0];
            for j in 1..n {
                chunk[j] = -c[n - j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::Torus32;

    const STDEV: f64 = 1e-8;

    fn max_abs_phase_err(phase: &TorusPoly, want: &TorusPoly) -> f64 {
        phase
            .coeffs()
            .iter()
            .zip(want.coeffs())
            .map(|(&p, &w)| (p - w).to_f64().abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut rng = SecureRng::seed_from_u64(30);
        let key = TlweKey::generate(1, 64, &mut rng);
        let msg = TorusPoly::fill(Torus32::from_fraction(1, 3), 64);
        let ct = key.encrypt_poly(&msg, STDEV, &mut rng);
        let phase = key.phase(&ct);
        assert!(max_abs_phase_err(&phase, &msg) < 1e-5);
    }

    #[test]
    fn trivial_phase_is_exact() {
        let mut rng = SecureRng::seed_from_u64(31);
        let key = TlweKey::generate(2, 32, &mut rng);
        let msg = TorusPoly::fill(Torus32::from_fraction(-1, 3), 32);
        let ct = TlweCiphertext::trivial(msg.clone(), 2);
        assert_eq!(key.phase(&ct), msg);
    }

    #[test]
    fn rotation_commutes_with_phase() {
        let mut rng = SecureRng::seed_from_u64(32);
        let n = 32;
        let key = TlweKey::generate(1, n, &mut rng);
        let msg = TorusPoly::uniform(n, &mut rng);
        let ct = key.encrypt_poly(&msg, STDEV, &mut rng);
        for amount in [1, n / 2, n, 2 * n - 1] {
            let rotated = ct.rotate(amount);
            let phase = key.phase(&rotated);
            let want = key.phase(&ct).mul_by_xk(amount);
            assert_eq!(phase, want, "rotation is exact on ciphertexts, amount={amount}");
        }
    }

    #[test]
    fn extract_yields_constant_coefficient() {
        let mut rng = SecureRng::seed_from_u64(33);
        let n = 64;
        let key = TlweKey::generate(1, n, &mut rng);
        let mut msg = TorusPoly::zero(n);
        msg.coeffs_mut()[0] = Torus32::from_fraction(1, 3);
        msg.coeffs_mut()[1] = Torus32::from_fraction(-1, 2);
        let ct = key.encrypt_poly(&msg, STDEV, &mut rng);
        let lwe = ct.extract_lwe();
        let lwe_key = key.extracted_lwe_key();
        assert_eq!(lwe.dim(), n);
        let phase = lwe_key.phase(&lwe);
        let err = (phase - Torus32::from_fraction(1, 3)).to_f64().abs();
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn extract_after_rotation_reads_other_coefficients() {
        let mut rng = SecureRng::seed_from_u64(34);
        let n = 32;
        let key = TlweKey::generate(1, n, &mut rng);
        let msg = TorusPoly::uniform(n, &mut rng);
        let ct = key.encrypt_poly(&msg, STDEV, &mut rng);
        let lwe_key = key.extracted_lwe_key();
        // Rotating by 2N - j moves coefficient j to position 0.
        for j in [0usize, 1, 7, n - 1] {
            let rotated = ct.rotate((2 * n - j) % (2 * n));
            let phase = lwe_key.phase(&rotated.extract_lwe());
            let err = (phase - msg.coeffs()[j]).to_f64().abs();
            assert!(err < 1e-5, "j={j} err={err}");
        }
    }

    #[test]
    fn homomorphic_add_sub() {
        let mut rng = SecureRng::seed_from_u64(35);
        let n = 32;
        let key = TlweKey::generate(1, n, &mut rng);
        let m1 = TorusPoly::uniform(n, &mut rng);
        let m2 = TorusPoly::uniform(n, &mut rng);
        let c1 = key.encrypt_poly(&m1, STDEV, &mut rng);
        let c2 = key.encrypt_poly(&m2, STDEV, &mut rng);
        let mut sum = c1.clone();
        sum.add_assign(&c2);
        let mut want = m1.clone();
        want.add_assign(&m2);
        assert!(max_abs_phase_err(&key.phase(&sum), &want) < 1e-5);
        sum.sub_assign(&c2);
        assert!(max_abs_phase_err(&key.phase(&sum), &m1) < 1e-5);
    }
}
