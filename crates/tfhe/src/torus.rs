//! Arithmetic on the discretized torus `T = R/Z`, represented with 32 bits
//! of precision.
//!
//! A [`Torus32`] holds the fraction `value / 2^32`; addition and negation
//! are plain wrapping integer operations, and multiplication is only
//! defined against integers (the torus is a `Z`-module, not a ring).

use crate::rng::SecureRng;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An element of the real torus `R/Z` with 32-bit precision.
///
/// `#[repr(transparent)]` is load-bearing: the SIMD kernels in
/// [`crate::simd`] reinterpret `&[Torus32]` as `&[u32]`/`&[i32]` for
/// vector loads, which is only sound with a guaranteed layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Torus32(pub u32);

impl Torus32 {
    /// The torus zero.
    pub const ZERO: Torus32 = Torus32(0);

    /// Reinterprets a torus slice as its signed-integer lifts (the
    /// elementwise [`Torus32::as_i32`]), without copying.
    #[inline]
    pub fn slice_as_i32(s: &[Torus32]) -> &[i32] {
        // SAFETY: Torus32 is #[repr(transparent)] over u32, which has
        // the same size and alignment as i32; every bit pattern is a
        // valid i32.
        unsafe { std::slice::from_raw_parts(s.as_ptr() as *const i32, s.len()) }
    }

    /// Encodes the fraction `numerator / 2^log2_denominator`, e.g.
    /// `Torus32::from_fraction(1, 3)` is `1/8` — the canonical message
    /// amplitude `mu` of gate bootstrapping.
    #[inline]
    pub fn from_fraction(numerator: i32, log2_denominator: u32) -> Self {
        debug_assert!(log2_denominator <= 31);
        Torus32((numerator as u32).wrapping_shl(32 - log2_denominator))
    }

    /// Converts a real number to the nearest torus element (mod 1).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        let frac = x - x.floor();
        // Round to the nearest multiple of 2^-32, wrapping 1.0 to 0.
        Torus32(((frac * 4294967296.0).round() as u64 & 0xFFFF_FFFF) as u32)
    }

    /// The representative of this element in `[-0.5, 0.5)`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        (self.0 as i32) as f64 / 4294967296.0
    }

    /// Interprets the element as a signed 32-bit integer (its lift to
    /// `[-2^31, 2^31)` in units of `2^-32`).
    #[inline]
    pub fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// Adds a centered Gaussian error with the given standard deviation —
    /// the noise injection of every LWE/TLWE encryption.
    #[inline]
    pub fn add_gaussian(self, stdev: f64, rng: &mut SecureRng) -> Self {
        self + Torus32::from_f64(rng.gaussian(stdev))
    }

    /// Uniformly random torus element (the mask of an LWE sample).
    #[inline]
    pub fn uniform(rng: &mut SecureRng) -> Self {
        Torus32(rng.uniform_u32())
    }

    /// Rounds to the nearest multiple of `1/2^log2_denominator`, returning
    /// the numerator in `[0, 2^log2_denominator)`; used when decoding
    /// messages.
    #[inline]
    pub fn round_to(self, log2_denominator: u32) -> u32 {
        let shift = 32 - log2_denominator;
        let half = 1u32 << (shift - 1);
        self.0.wrapping_add(half) >> shift
    }

    /// Switches the element from modulus `2^32` to modulus `2 * n`
    /// (rounding), as done on every LWE coefficient before a blind
    /// rotation. `n` must be a power of two.
    #[inline]
    pub fn mod_switch(self, n: usize) -> usize {
        debug_assert!(n.is_power_of_two());
        let log = (2 * n).trailing_zeros();
        self.round_to(log) as usize % (2 * n)
    }
}

impl Add for Torus32 {
    type Output = Torus32;
    #[inline]
    fn add(self, rhs: Torus32) -> Torus32 {
        Torus32(self.0.wrapping_add(rhs.0))
    }
}

impl AddAssign for Torus32 {
    #[inline]
    fn add_assign(&mut self, rhs: Torus32) {
        self.0 = self.0.wrapping_add(rhs.0);
    }
}

impl Sub for Torus32 {
    type Output = Torus32;
    #[inline]
    fn sub(self, rhs: Torus32) -> Torus32 {
        Torus32(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign for Torus32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Torus32) {
        self.0 = self.0.wrapping_sub(rhs.0);
    }
}

impl Neg for Torus32 {
    type Output = Torus32;
    #[inline]
    fn neg(self) -> Torus32 {
        Torus32(self.0.wrapping_neg())
    }
}

/// Integer scaling: the torus is a `Z`-module.
impl Mul<Torus32> for i32 {
    type Output = Torus32;
    #[inline]
    fn mul(self, rhs: Torus32) -> Torus32 {
        Torus32((self as u32).wrapping_mul(rhs.0))
    }
}

impl fmt::Display for Torus32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        assert_eq!(Torus32::from_fraction(1, 3).to_f64(), 0.125);
        assert_eq!(Torus32::from_fraction(-1, 3).to_f64(), -0.125);
        assert_eq!(Torus32::from_fraction(1, 2).to_f64(), 0.25);
        assert_eq!(Torus32::from_fraction(2, 2).to_f64(), -0.5, "1/2 is its own negative");
    }

    #[test]
    fn from_f64_wraps() {
        assert_eq!(Torus32::from_f64(0.25), Torus32::from_fraction(1, 2));
        assert_eq!(Torus32::from_f64(1.25), Torus32::from_fraction(1, 2));
        assert_eq!(Torus32::from_f64(-0.75), Torus32::from_fraction(1, 2));
        assert_eq!(Torus32::from_f64(0.0), Torus32::ZERO);
        assert_eq!(Torus32::from_f64(1.0), Torus32::ZERO);
    }

    #[test]
    fn group_laws() {
        let a = Torus32::from_f64(0.3);
        let b = Torus32::from_f64(0.9);
        assert_eq!(a + b - b, a);
        assert_eq!(a + (-a), Torus32::ZERO);
        assert_eq!(3 * a, a + a + a);
    }

    #[test]
    fn round_to_decodes_messages() {
        // mu = 1/8 must decode as numerator 1 out of 8; small noise must not
        // change that.
        let mu = Torus32::from_fraction(1, 3);
        let noisy = mu + Torus32::from_f64(0.01);
        assert_eq!(noisy.round_to(3), 1);
        let noisy = mu - Torus32::from_f64(0.01);
        assert_eq!(noisy.round_to(3), 1);
    }

    #[test]
    fn mod_switch_rounds() {
        let n = 512;
        // 1/4 of the torus maps to 1/4 of 2n = 256.
        assert_eq!(Torus32::from_f64(0.25).mod_switch(n), 256);
        assert_eq!(Torus32::from_f64(0.0).mod_switch(n), 0);
        // -1/4 maps to 3/4 of 2n.
        assert_eq!(Torus32::from_f64(-0.25).mod_switch(n), 768);
        // Just below the rounding boundary stays, just above advances.
        let eps = 1.0 / (4.0 * n as f64) - 1e-6;
        assert_eq!(Torus32::from_f64(eps).mod_switch(n), 0);
        assert_eq!(Torus32::from_f64(eps + 3e-6).mod_switch(n), 1);
    }

    #[test]
    fn gaussian_noise_is_small() {
        let mut rng = SecureRng::seed_from_u64(3);
        let stdev = 1e-5;
        for _ in 0..100 {
            let x = Torus32::ZERO.add_gaussian(stdev, &mut rng);
            assert!(x.to_f64().abs() < 1e-4);
        }
    }
}
