//! TGSW ciphertexts, gadget decomposition, and the external product — the
//! machinery of the CMUX gate inside blind rotation.

use crate::fft::{FftPlan, FreqPoly, FreqPolyBatch};
use crate::poly::{IntPoly, TorusPoly};
use crate::rng::SecureRng;
use crate::tlwe::{TlweCiphertext, TlweKey};
use crate::torus::Torus32;

/// Parameters of the signed gadget decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gadget {
    /// Number of levels `l`.
    pub levels: usize,
    /// Log2 of the base (`Bg = 2^base_log`).
    pub base_log: usize,
}

impl Gadget {
    /// The gadget torus constants `1/Bg, 1/Bg², …, 1/Bg^l` as `Torus32`.
    pub fn h(&self, level: usize) -> Torus32 {
        debug_assert!(level < self.levels);
        Torus32(1u32 << (32 - (level + 1) * self.base_log))
    }

    /// The rounding offset added before digit extraction (the TFHE-library
    /// trick that makes the decomposition signed and balanced).
    fn offset(&self) -> u32 {
        let half_base = 1u32 << (self.base_log - 1);
        let mut offset = 0u32;
        for level in 1..=self.levels {
            offset =
                offset.wrapping_add(half_base.wrapping_shl((32 - level * self.base_log) as u32));
        }
        offset
    }

    /// Decomposes every coefficient of `p` into `l` signed digits in
    /// `[-Bg/2, Bg/2)`, such that `sum_j digit_j * h_j ≈ p` with error at
    /// most `1 / (2 * Bg^l)` per coefficient.
    pub fn decompose_poly(&self, p: &TorusPoly) -> Vec<IntPoly> {
        let mut out: Vec<IntPoly> = (0..self.levels).map(|_| IntPoly::zero(p.len())).collect();
        self.decompose_poly_into(p, &mut out);
        out
    }

    /// Like [`Gadget::decompose_poly`] but reuses allocations.
    ///
    /// Runs level-major so each level is one flat pass over the
    /// coefficients through the dispatched [`crate::simd`] digit-extract
    /// kernel; every digit is a pure function of its own coefficient, so
    /// the loop order does not change any result.
    pub fn decompose_poly_into(&self, p: &TorusPoly, out: &mut [IntPoly]) {
        debug_assert_eq!(out.len(), self.levels);
        let base_mask = (1u32 << self.base_log) - 1;
        let half_base = 1i32 << (self.base_log - 1);
        let offset = self.offset();
        let kernels = crate::simd::kernels();
        for (level, digits) in out.iter_mut().enumerate() {
            let shift = (32 - (level + 1) * self.base_log) as u32;
            kernels.extract_digits(
                p.coeffs(),
                offset,
                shift,
                base_mask,
                half_base,
                digits.coeffs_mut(),
            );
        }
    }
}

/// A TGSW ciphertext in the coefficient domain: `(k + 1) * l` TLWE rows
/// forming the gadget matrix encryption of a small integer message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgswCiphertext {
    rows: Vec<TlweCiphertext>,
    gadget: Gadget,
}

impl TgswCiphertext {
    /// Encrypts the integer `message` (in practice a key bit, 0 or 1).
    ///
    /// Row `u * l + level` is a TLWE encryption of zero plus
    /// `message * h_level` added to polynomial `u` of the sample.
    pub fn encrypt(
        key: &TlweKey,
        message: i32,
        gadget: Gadget,
        stdev: f64,
        rng: &mut SecureRng,
    ) -> Self {
        let n = key.poly_size();
        let k = key.k();
        let zero = TorusPoly::zero(n);
        let mut rows = Vec::with_capacity((k + 1) * gadget.levels);
        for u in 0..=k {
            for level in 0..gadget.levels {
                let mut row = key.encrypt_poly(&zero, stdev, rng);
                let bump = message * gadget.h(level);
                if u < k {
                    row.a[u].coeffs_mut()[0] += bump;
                } else {
                    row.b.coeffs_mut()[0] += bump;
                }
                rows.push(row);
            }
        }
        TgswCiphertext { rows, gadget }
    }

    /// The gadget parameters.
    pub fn gadget(&self) -> Gadget {
        self.gadget
    }

    /// The TLWE rows.
    pub fn rows(&self) -> &[TlweCiphertext] {
        &self.rows
    }

    /// Precomputes the frequency-domain form used by the hot loop.
    pub fn to_fft(&self, plan: &FftPlan) -> TgswFft {
        TgswFft {
            rows: self
                .rows
                .iter()
                .map(|row| row.polys().map(|p| plan.forward_torus(p)).collect())
                .collect(),
            gadget: self.gadget,
        }
    }
}

/// A TGSW ciphertext with every polynomial pre-transformed to the twisted
/// frequency domain. The bootstrapping key is stored in this form, exactly
/// as the reference TFHE library stores its FFT-domain bootstrapping key.
#[derive(Debug, Clone)]
pub struct TgswFft {
    /// `rows[r][col]` is polynomial `col` (mask polys then body) of row `r`.
    rows: Vec<Vec<FreqPoly>>,
    gadget: Gadget,
}

/// Scratch buffers for [`TgswFft::external_product`], reused across the
/// `n` iterations of a blind rotation.
#[derive(Debug)]
pub struct ExternalProductScratch {
    digits: Vec<IntPoly>,
    digit_freq: FreqPoly,
    acc_freq: Vec<FreqPoly>,
}

impl ExternalProductScratch {
    /// Allocates scratch for ring dimension `n`, GLWE dimension `k` and the
    /// given gadget.
    pub fn new(n: usize, k: usize, gadget: Gadget) -> Self {
        ExternalProductScratch {
            digits: (0..gadget.levels).map(|_| IntPoly::zero(n)).collect(),
            digit_freq: FreqPoly::zero(n),
            acc_freq: (0..=k).map(|_| FreqPoly::zero(n)).collect(),
        }
    }
}

/// Scratch for the allocation-free CMUX paths: the external-product
/// buffers plus the difference and product ciphertexts of one CMUX step.
/// One per worker; [`TgswFft::cmux_into`] and
/// [`TgswFft::rotate_cmux_assign`] run entirely on these buffers.
#[derive(Debug)]
pub struct CmuxScratch {
    pub(crate) ep: ExternalProductScratch,
    pub(crate) diff: TlweCiphertext,
    pub(crate) ext: TlweCiphertext,
}

impl CmuxScratch {
    /// Allocates scratch for ring dimension `n`, GLWE dimension `k` and the
    /// given gadget.
    pub fn new(n: usize, k: usize, gadget: Gadget) -> Self {
        CmuxScratch {
            ep: ExternalProductScratch::new(n, k, gadget),
            diff: TlweCiphertext::trivial(TorusPoly::zero(n), k),
            ext: TlweCiphertext::trivial(TorusPoly::zero(n), k),
        }
    }
}

/// Scratch for the *lockstep batched* external product
/// ([`TgswFft::external_product_batch_into`]): per-lane decomposition
/// digits, the staged point-major digit spectra, and one frequency
/// accumulator batch per output column. Sized once for a maximum batch
/// width; every call runs allocation-free.
#[derive(Debug)]
pub struct BatchExternalScratch {
    /// Per-lane gadget digits (`levels` polynomials each).
    digits: Vec<Vec<IntPoly>>,
    /// Per-lane transform temp (twist + gather staging).
    tmp: FreqPoly,
    /// Staged digit spectra, point-major across the batch.
    digit_batch: FreqPolyBatch,
    /// Frequency accumulators, one batch per output polynomial.
    acc_batch: Vec<FreqPolyBatch>,
    max_lanes: usize,
}

impl BatchExternalScratch {
    /// Allocates scratch for ring dimension `n`, GLWE dimension `k`, the
    /// given gadget, and batches of up to `max_lanes` ciphertexts.
    pub fn new(n: usize, k: usize, gadget: Gadget, max_lanes: usize) -> Self {
        assert!(max_lanes > 0);
        BatchExternalScratch {
            digits: (0..max_lanes)
                .map(|_| (0..gadget.levels).map(|_| IntPoly::zero(n)).collect())
                .collect(),
            tmp: FreqPoly::zero(n),
            digit_batch: FreqPolyBatch::new(n, max_lanes),
            acc_batch: (0..=k).map(|_| FreqPolyBatch::new(n, max_lanes)).collect(),
            max_lanes,
        }
    }

    /// The maximum batch width this scratch was sized for.
    pub fn max_lanes(&self) -> usize {
        self.max_lanes
    }
}

impl TgswFft {
    /// Raw rows (crate-internal, for serialization).
    pub(crate) fn rows_raw(&self) -> &[Vec<FreqPoly>] {
        &self.rows
    }

    /// Rebuilds from raw rows (crate-internal, for deserialization).
    pub(crate) fn from_rows(rows: Vec<Vec<FreqPoly>>, gadget: Gadget) -> Self {
        TgswFft { rows, gadget }
    }

    /// The gadget parameters.
    pub fn gadget(&self) -> Gadget {
        self.gadget
    }

    /// The external product `self ⊡ tlwe`: decomposes the TLWE sample and
    /// multiplies it against the gadget matrix in the frequency domain.
    ///
    /// If `self` encrypts bit `m ∈ {0, 1}`, the result is (approximately)
    /// `m * tlwe` — with fresh noise, which is what makes bootstrapping
    /// noise-resetting.
    pub fn external_product(
        &self,
        tlwe: &TlweCiphertext,
        plan: &FftPlan,
        scratch: &mut ExternalProductScratch,
    ) -> TlweCiphertext {
        let n = tlwe.poly_size();
        let mut out = TlweCiphertext::trivial(TorusPoly::zero(n), tlwe.k());
        self.external_product_into(tlwe, plan, scratch, &mut out);
        out
    }

    /// Like [`TgswFft::external_product`], writing into `out` (same shape
    /// as `tlwe`) without allocating. `out` may not alias `tlwe`.
    pub fn external_product_into(
        &self,
        tlwe: &TlweCiphertext,
        plan: &FftPlan,
        scratch: &mut ExternalProductScratch,
        out: &mut TlweCiphertext,
    ) {
        let k = tlwe.k();
        let l = self.gadget.levels;
        debug_assert_eq!(self.rows.len(), (k + 1) * l);
        debug_assert_eq!(out.k(), k);
        for f in &mut scratch.acc_freq {
            f.clear();
        }
        for (u, poly) in tlwe.polys().enumerate() {
            self.gadget.decompose_poly_into(poly, &mut scratch.digits);
            for (level, digit) in scratch.digits.iter().enumerate() {
                plan.forward_int_into(digit, &mut scratch.digit_freq);
                let row = &self.rows[u * l + level];
                for (col, acc) in scratch.acc_freq.iter_mut().enumerate() {
                    acc.add_mul_assign(&scratch.digit_freq, &row[col]);
                }
            }
        }
        let (mask_accs, body_acc) = scratch.acc_freq.split_at_mut(k);
        for (acc, dst) in mask_accs.iter_mut().zip(&mut out.a) {
            plan.inverse_torus_destructive(acc, dst);
        }
        plan.inverse_torus_destructive(&mut body_acc[0], &mut out.b);
    }

    /// The CMUX gate: returns `c0 + self ⊡ (c1 - c0)`, i.e. selects `c1`
    /// when `self` encrypts 1 and `c0` when it encrypts 0. Allocates only
    /// the returned ciphertext; all intermediates live in `scratch`.
    pub fn cmux(
        &self,
        c0: &TlweCiphertext,
        c1: &TlweCiphertext,
        plan: &FftPlan,
        scratch: &mut CmuxScratch,
    ) -> TlweCiphertext {
        let mut out = TlweCiphertext::trivial(TorusPoly::zero(c0.poly_size()), c0.k());
        self.cmux_into(c0, c1, plan, scratch, &mut out);
        out
    }

    /// Like [`TgswFft::cmux`], writing into `out` (same shape as `c0`)
    /// with zero heap allocation. `out` may not alias `c0` or `c1`.
    pub fn cmux_into(
        &self,
        c0: &TlweCiphertext,
        c1: &TlweCiphertext,
        plan: &FftPlan,
        scratch: &mut CmuxScratch,
        out: &mut TlweCiphertext,
    ) {
        let CmuxScratch { ep, diff, .. } = scratch;
        diff.copy_from(c1);
        diff.sub_assign(c0);
        self.external_product_into(diff, plan, ep, out);
        out.add_assign(c0);
    }

    /// Lockstep external product `self ⊡ inputs[lane]` for every lane at
    /// once, writing into `outs` (same shapes) without allocating.
    ///
    /// All lanes share `self` — in blind rotation, CMUX step `i` applies
    /// the *same* bootstrapping-key row to every ciphertext of the
    /// batch, so the row spectra are streamed from memory once per batch
    /// instead of once per lane ([`FreqPolyBatch::add_mul_bcast`]), and
    /// the digit transforms run through the batched butterfly kernel
    /// with full vector lanes on every stage. Per lane the arithmetic
    /// rounds to exactly the same torus coefficients as
    /// [`TgswFft::external_product_into`] (the torus-domain equality
    /// contract of [`crate::simd`]), so batched and single-lane blind
    /// rotations remain bit-identical.
    pub fn external_product_batch_into(
        &self,
        inputs: &[TlweCiphertext],
        plan: &FftPlan,
        scratch: &mut BatchExternalScratch,
        outs: &mut [TlweCiphertext],
    ) {
        let b = inputs.len();
        debug_assert!(b > 0 && b <= scratch.max_lanes);
        debug_assert_eq!(outs.len(), b);
        let k = inputs[0].k();
        let l = self.gadget.levels;
        debug_assert_eq!(self.rows.len(), (k + 1) * l);
        for acc in &mut scratch.acc_batch[..=k] {
            acc.reset(b);
        }
        scratch.digit_batch.reset(b);
        for u in 0..=k {
            for (lane, input) in inputs.iter().enumerate() {
                let poly = if u < k { &input.a[u] } else { &input.b };
                self.gadget.decompose_poly_into(poly, &mut scratch.digits[lane]);
            }
            for level in 0..l {
                for lane in 0..b {
                    plan.forward_int_stage_lane(
                        &scratch.digits[lane][level],
                        lane,
                        &mut scratch.digit_batch,
                        &mut scratch.tmp,
                    );
                }
                plan.forward_batch_passes(&mut scratch.digit_batch);
                let row = &self.rows[u * l + level];
                for (col, acc) in scratch.acc_batch[..=k].iter_mut().enumerate() {
                    acc.add_mul_bcast(&scratch.digit_batch, &row[col]);
                }
            }
        }
        for (col, acc) in scratch.acc_batch[..=k].iter_mut().enumerate() {
            plan.inverse_batch_passes(acc);
            for (lane, out) in outs.iter_mut().enumerate() {
                let dst = if col < k { &mut out.a[col] } else { &mut out.b };
                plan.inverse_torus_lane_into(acc, lane, &mut scratch.tmp, dst);
            }
        }
    }

    /// One in-place CMUX step of blind rotation:
    /// `acc <- acc + self ⊡ (X^bara·acc - acc)`, entirely on `scratch`.
    /// This is the no-alloc kernel every public rotation path routes
    /// through.
    pub fn rotate_cmux_assign(
        &self,
        acc: &mut TlweCiphertext,
        bara: usize,
        plan: &FftPlan,
        scratch: &mut CmuxScratch,
    ) {
        let CmuxScratch { ep, diff, ext } = scratch;
        acc.rotate_into(bara, diff);
        diff.sub_assign(acc);
        self.external_product_into(diff, plan, ep, ext);
        acc.add_assign(ext);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STDEV: f64 = 1e-9;

    fn gadget() -> Gadget {
        Gadget { levels: 3, base_log: 7 }
    }

    #[test]
    fn decomposition_reconstructs() {
        let mut rng = SecureRng::seed_from_u64(40);
        let g = gadget();
        let p = TorusPoly::uniform(64, &mut rng);
        let digits = g.decompose_poly(&p);
        let half_base = 1 << (g.base_log - 1);
        for d in &digits {
            for &c in d.coeffs() {
                assert!((-half_base..half_base).contains(&c), "digit {c} out of range");
            }
        }
        // Reconstruction error per coefficient < 1 / Bg^l = 2^-21 (the
        // TFHE-library offset trick gives a one-sided error of that size).
        for j in 0..p.len() {
            let mut approx = Torus32::ZERO;
            for (level, d) in digits.iter().enumerate() {
                approx += d.coeffs()[j] * g.h(level);
            }
            let err = (approx - p.coeffs()[j]).to_f64().abs();
            assert!(err < 1.0 / ((1u64 << 21) as f64), "err={err}");
        }
    }

    #[test]
    fn external_product_by_zero_kills_message() {
        let mut rng = SecureRng::seed_from_u64(41);
        let n = 64;
        let key = TlweKey::generate(1, n, &mut rng);
        let plan = FftPlan::new(n);
        let g = gadget();
        let tgsw = TgswCiphertext::encrypt(&key, 0, g, STDEV, &mut rng);
        let msg = TorusPoly::fill(Torus32::from_fraction(1, 3), n);
        let tlwe = key.encrypt_poly(&msg, STDEV, &mut rng);
        let mut scratch = ExternalProductScratch::new(n, 1, g);
        let out = tgsw.to_fft(&plan).external_product(&tlwe, &plan, &mut scratch);
        let phase = key.phase(&out);
        for &c in phase.coeffs() {
            assert!(c.to_f64().abs() < 1e-4, "phase {c} should be ~0");
        }
    }

    #[test]
    fn external_product_by_one_preserves_message() {
        let mut rng = SecureRng::seed_from_u64(42);
        let n = 64;
        let key = TlweKey::generate(1, n, &mut rng);
        let plan = FftPlan::new(n);
        let g = gadget();
        let tgsw = TgswCiphertext::encrypt(&key, 1, g, STDEV, &mut rng);
        let msg = TorusPoly::fill(Torus32::from_fraction(1, 3), n);
        let tlwe = key.encrypt_poly(&msg, STDEV, &mut rng);
        let mut scratch = ExternalProductScratch::new(n, 1, g);
        let out = tgsw.to_fft(&plan).external_product(&tlwe, &plan, &mut scratch);
        let phase = key.phase(&out);
        for (&got, &want) in phase.coeffs().iter().zip(msg.coeffs()) {
            assert!((got - want).to_f64().abs() < 1e-4);
        }
    }

    #[test]
    fn cmux_selects() {
        let mut rng = SecureRng::seed_from_u64(43);
        let n = 64;
        let key = TlweKey::generate(1, n, &mut rng);
        let plan = FftPlan::new(n);
        let g = gadget();
        let m0 = TorusPoly::fill(Torus32::from_fraction(1, 3), n);
        let m1 = TorusPoly::fill(Torus32::from_fraction(-1, 3), n);
        let c0 = key.encrypt_poly(&m0, STDEV, &mut rng);
        let c1 = key.encrypt_poly(&m1, STDEV, &mut rng);
        let mut scratch = CmuxScratch::new(n, 1, g);
        for (bit, want) in [(0, &m0), (1, &m1)] {
            let sel = TgswCiphertext::encrypt(&key, bit, g, STDEV, &mut rng).to_fft(&plan);
            let out = sel.cmux(&c0, &c1, &plan, &mut scratch);
            let phase = key.phase(&out);
            for (&got, &w) in phase.coeffs().iter().zip(want.coeffs()) {
                assert!((got - w).to_f64().abs() < 1e-4, "bit={bit}");
            }
        }
    }

    #[test]
    fn cmux_into_is_allocation_free() {
        let mut rng = SecureRng::seed_from_u64(44);
        let n = 64;
        let key = TlweKey::generate(1, n, &mut rng);
        let plan = FftPlan::new(n);
        let g = gadget();
        let c0 =
            key.encrypt_poly(&TorusPoly::fill(Torus32::from_fraction(1, 3), n), STDEV, &mut rng);
        let c1 =
            key.encrypt_poly(&TorusPoly::fill(Torus32::from_fraction(-1, 3), n), STDEV, &mut rng);
        let sel = TgswCiphertext::encrypt(&key, 1, g, STDEV, &mut rng).to_fft(&plan);
        let mut scratch = CmuxScratch::new(n, 1, g);
        let mut out = TlweCiphertext::trivial(TorusPoly::zero(n), 1);
        // Warm-up, then assert the steady state never touches the allocator.
        sel.cmux_into(&c0, &c1, &plan, &mut scratch, &mut out);
        let before = crate::trace::thread_buffer_allocs();
        sel.cmux_into(&c0, &c1, &plan, &mut scratch, &mut out);
        sel.rotate_cmux_assign(&mut out, 3, &plan, &mut scratch);
        assert_eq!(crate::trace::thread_buffer_allocs() - before, 0);
    }
}
