//! LWE-to-LWE key switching: converts samples under the extracted
//! dimension-`k·N` key back to the small dimension-`n` gate key.
//!
//! Figure 7 of the paper shows key switching as the second-largest cost of
//! a bootstrapped gate evaluation (after blind rotation).

use crate::lwe::{LweCiphertext, LweKey};
use crate::rng::SecureRng;
use crate::torus::Torus32;

/// Upper bound on decomposition levels, so [`KeySwitchKey::switch_into`]
/// can keep its per-element digit vector on the stack (default params use
/// `t = 8`).
const MAX_KS_LEVELS: usize = 32;

/// A key-switching key: `src_dim × t × (base - 1)` LWE samples under the
/// destination key.
///
/// `ks[i][j][v-1]` encrypts `v * s_i / base^(j+1)` where `s_i` is bit `i`
/// of the source key. For the default parameters (`N = 1024`, `t = 8`,
/// `base = 4`, `n = 630`) this is ~62 MB — the dominant share of TFHE's
/// "public key of a few megabytes to ~100 MB" footprint.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    samples: Vec<LweCiphertext>,
    src_dim: usize,
    dst_dim: usize,
    levels: usize,
    base_log: usize,
}

impl KeySwitchKey {
    /// Generates the key-switching key from `src` to `dst`.
    pub fn generate(
        src: &LweKey,
        dst: &LweKey,
        levels: usize,
        base_log: usize,
        noise_stdev: f64,
        rng: &mut SecureRng,
    ) -> Self {
        let base = 1usize << base_log;
        let mut samples = Vec::with_capacity(src.dim() * levels * (base - 1));
        for i in 0..src.dim() {
            let s_i = src.bits()[i];
            for j in 0..levels {
                // message(v) = v * s_i / base^(j+1)
                let unit = Torus32(1u32 << (32 - (j + 1) * base_log));
                for v in 1..base {
                    let message = (v as i32 * s_i) * unit;
                    samples.push(dst.encrypt(message, noise_stdev, rng));
                }
            }
        }
        KeySwitchKey { samples, src_dim: src.dim(), dst_dim: dst.dim(), levels, base_log }
    }

    /// Raw samples (crate-internal, for serialization).
    pub(crate) fn samples_raw(&self) -> &[LweCiphertext] {
        &self.samples
    }

    /// Rebuilds from parts (crate-internal, for deserialization).
    pub(crate) fn from_parts(
        samples: Vec<LweCiphertext>,
        src_dim: usize,
        dst_dim: usize,
        levels: usize,
        base_log: usize,
    ) -> Self {
        KeySwitchKey { samples, src_dim, dst_dim, levels, base_log }
    }

    /// Decomposition levels `t` (for serialization headers).
    pub(crate) fn levels(&self) -> usize {
        self.levels
    }

    /// Decomposition base log (for serialization headers).
    pub(crate) fn base_log(&self) -> usize {
        self.base_log
    }

    /// Source dimension (`k * N`).
    pub fn src_dim(&self) -> usize {
        self.src_dim
    }

    /// Destination dimension (`n`).
    pub fn dst_dim(&self) -> usize {
        self.dst_dim
    }

    /// Total stored samples (for size accounting).
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Switches `ct` (under the source key) to a sample under the
    /// destination key encrypting the same message (plus key-switch noise).
    ///
    /// # Panics
    ///
    /// Panics if `ct` does not have the source dimension.
    pub fn switch(&self, ct: &LweCiphertext) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.dst_dim);
        self.switch_into(ct, &mut out);
        out
    }

    /// Like [`KeySwitchKey::switch`], writing into `out` without allocating
    /// (reusing `out`'s mask buffer when it already has the destination
    /// dimension).
    pub fn switch_into(&self, ct: &LweCiphertext, out: &mut LweCiphertext) {
        assert_eq!(ct.dim(), self.src_dim, "key switch input dimension mismatch");
        assert!(self.levels <= MAX_KS_LEVELS, "key switch supports at most {MAX_KS_LEVELS} levels");
        out.assign_trivial(ct.body(), self.dst_dim);
        let base = 1usize << self.base_log;
        let base_mask = (1u32 << self.base_log) - 1;
        let total_bits = (self.levels * self.base_log) as u32;
        // Rounding offset: half of the smallest represented step.
        let round = 1u32 << (32 - total_bits - 1);
        // Hoisted out of the per-mask-element loop: the per-level shift
        // amounts and the sample-row stride are invariant across `i`.
        let mut shifts = [0u32; MAX_KS_LEVELS];
        for (j, s) in shifts[..self.levels].iter_mut().enumerate() {
            *s = 32 - ((j + 1) * self.base_log) as u32;
        }
        let row_stride = self.levels * (base - 1);
        let mut digits = [0u32; MAX_KS_LEVELS];
        // Nonzero-digit rows are applied in *fused pairs* through the
        // dispatched `sub_assign2` kernel (`out -= a + b` in one
        // contiguous full-width pass over the mask), halving the number
        // of times the destination streams through the vector units
        // relative to one `sub_assign` per digit. Pairing carries across
        // mask elements, so odd digit counts don't strand a partner.
        // Wrapping arithmetic mod 2^32 is associative, so the fused form
        // is bit-identical to sequential subtractions.
        let kern = crate::simd::kernels();
        let mut pending: Option<&LweCiphertext> = None;
        for (i, &a_i) in ct.mask().iter().enumerate() {
            // Extract the whole digit vector of this mask element in one
            // flat pass, then do the (branchy, memory-bound) accumulation.
            let tmp = a_i.0.wrapping_add(round);
            for (d, &s) in digits[..self.levels].iter_mut().zip(&shifts[..self.levels]) {
                *d = (tmp >> s) & base_mask;
            }
            let row = i * row_stride;
            for (j, &digit) in digits[..self.levels].iter().enumerate() {
                if digit != 0 {
                    let sample = &self.samples[row + j * (base - 1) + (digit as usize - 1)];
                    match pending.take() {
                        None => pending = Some(sample),
                        Some(first) => {
                            kern.sub_assign2(out.mask_mut(), first.mask(), sample.mask());
                            out.b -= first.body() + sample.body();
                        }
                    }
                }
            }
        }
        if let Some(first) = pending {
            out.sub_assign(first);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_switch_preserves_message() {
        let mut rng = SecureRng::seed_from_u64(50);
        let src = LweKey::generate(256, &mut rng);
        let dst = LweKey::generate(64, &mut rng);
        let ksk = KeySwitchKey::generate(&src, &dst, 8, 2, 1e-9, &mut rng);
        for frac in [-1, 1] {
            let m = Torus32::from_fraction(frac, 3);
            let ct = src.encrypt(m, 1e-9, &mut rng);
            let switched = ksk.switch(&ct);
            assert_eq!(switched.dim(), 64);
            let err = (dst.phase(&switched) - m).to_f64().abs();
            assert!(err < 1e-3, "frac={frac} err={err}");
        }
    }

    #[test]
    fn key_switch_is_linear() {
        let mut rng = SecureRng::seed_from_u64(51);
        let src = LweKey::generate(128, &mut rng);
        let dst = LweKey::generate(32, &mut rng);
        let ksk = KeySwitchKey::generate(&src, &dst, 8, 2, 1e-9, &mut rng);
        let m1 = Torus32::from_fraction(1, 3);
        let m2 = Torus32::from_fraction(1, 3);
        let c1 = src.encrypt(m1, 1e-9, &mut rng);
        let c2 = src.encrypt(m2, 1e-9, &mut rng);
        let mut sum = c1.clone();
        sum.add_assign(&c2);
        let switched = ksk.switch(&sum);
        let err = (dst.phase(&switched) - (m1 + m2)).to_f64().abs();
        assert!(err < 1e-3, "err={err}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let mut rng = SecureRng::seed_from_u64(52);
        let src = LweKey::generate(128, &mut rng);
        let dst = LweKey::generate(32, &mut rng);
        let ksk = KeySwitchKey::generate(&src, &dst, 8, 2, 1e-9, &mut rng);
        let ct = LweCiphertext::trivial(Torus32::ZERO, 64);
        let _ = ksk.switch(&ct);
    }

    #[test]
    fn paired_accumulation_is_bit_exact_with_sequential() {
        let mut rng = SecureRng::seed_from_u64(54);
        let src = LweKey::generate(128, &mut rng);
        let dst = LweKey::generate(32, &mut rng);
        let ksk = KeySwitchKey::generate(&src, &dst, 8, 2, 1e-9, &mut rng);
        for seed in 0..4u64 {
            let mut rng = SecureRng::seed_from_u64(100 + seed);
            let ct = src.encrypt(Torus32::from_fraction(1, 3), 1e-9, &mut rng);
            let got = ksk.switch(&ct);
            // Reference: one sub_assign per nonzero digit, no pairing.
            let mut want = LweCiphertext::trivial(ct.body(), ksk.dst_dim);
            let base = 1usize << ksk.base_log;
            let base_mask = (1u32 << ksk.base_log) - 1;
            let round = 1u32 << (32 - (ksk.levels * ksk.base_log) as u32 - 1);
            for (i, &a_i) in ct.mask().iter().enumerate() {
                let tmp = a_i.0.wrapping_add(round);
                for j in 0..ksk.levels {
                    let digit = (tmp >> (32 - ((j + 1) * ksk.base_log) as u32)) & base_mask;
                    if digit != 0 {
                        let row = i * ksk.levels * (base - 1);
                        want.sub_assign(&ksk.samples[row + j * (base - 1) + (digit as usize - 1)]);
                    }
                }
            }
            assert_eq!(got, want, "seed={seed}");
        }
    }

    #[test]
    fn sample_count_accounting() {
        let mut rng = SecureRng::seed_from_u64(53);
        let src = LweKey::generate(16, &mut rng);
        let dst = LweKey::generate(8, &mut rng);
        let ksk = KeySwitchKey::generate(&src, &dst, 3, 2, 1e-9, &mut rng);
        assert_eq!(ksk.num_samples(), 16 * 3 * 3);
        assert_eq!(ksk.src_dim(), 16);
        assert_eq!(ksk.dst_dim(), 8);
    }
}
