//! A from-scratch Rust implementation of the **TFHE** (Fast Fully
//! Homomorphic Encryption over the Torus, a.k.a. CGGI) scheme — the
//! cryptographic substrate of the PyTFHE framework.
//!
//! This crate implements the full gate-bootstrapping stack of the TFHE
//! library the paper builds on (Chillotti et al., *Journal of Cryptology*
//! 2020):
//!
//! * torus arithmetic over `Torus32` ([`torus`]),
//! * LWE samples and keys ([`lwe`]),
//! * polynomial rings `T[X]/(X^N + 1)` with both schoolbook and
//!   FFT-accelerated negacyclic multiplication ([`poly`], [`fft`]),
//! * TLWE (ring-LWE over the torus) and TGSW ciphertexts with gadget
//!   decomposition and external products ([`tlwe`], [`tgsw`]),
//! * blind rotation and gate bootstrapping ([`bootstrap`]),
//! * LWE-to-LWE key switching ([`keyswitch`]),
//! * the eleven bootstrapped binary gates used by PyTFHE programs
//!   ([`gates`]),
//! * key generation and the client/cloud key split ([`keys`]),
//! * byte-level serialization of keys and ciphertexts ([`io`]),
//! * runtime-dispatched SIMD kernels (AVX-512 / AVX2+FMA / NEON /
//!   portable scalar) for the transform, external-product,
//!   decomposition, and key-switch hot loops ([`simd`]), selectable with
//!   the `PYTFHE_SIMD` environment variable,
//! * an exact prime-field NTT prototype behind `PYTFHE_TRANSFORM=ntt`
//!   ([`ntt`]), property-tested against the FFT path.
//!
//! # Security
//!
//! [`Params::default_128`](crate::Params::default_128) mirrors the default
//! 128-bit gate-bootstrapping parameter set of the original TFHE library
//! (Section II-D of the PyTFHE paper). [`Params::testing`] is a small,
//! **insecure** parameter set that keeps the identical algebra but runs two
//! orders of magnitude faster; it exists purely so test suites can execute
//! thousands of bootstrapped gates.
//!
//! # Example
//!
//! ```
//! use pytfhe_tfhe::{ClientKey, Params, SecureRng};
//!
//! let mut rng = SecureRng::seed_from_u64(7);
//! let client = ClientKey::generate(Params::testing(), &mut rng);
//! let server = client.server_key(&mut rng);
//!
//! let a = client.encrypt_bit(true, &mut rng);
//! let b = client.encrypt_bit(false, &mut rng);
//! let out = server.nand(&a, &b);
//! assert!(client.decrypt_bit(&out));
//! ```

pub mod align;
pub mod bootstrap;
mod error;
pub mod fft;
pub mod gates;
pub mod io;
pub mod keys;
pub mod keyswitch;
pub mod lut;
pub mod lwe;
pub mod noise;
pub mod ntt;
pub mod params;
pub mod poly;
pub mod reference;
mod rng;
pub mod simd;
pub mod tgsw;
pub mod tlwe;
pub mod torus;
pub mod trace;

pub use bootstrap::BootstrapScratch;
pub use error::TfheError;
pub use gates::{BootGate, GateScratch, FUSE_CHUNK};
pub use keys::{ClientKey, ServerKey};
pub use lut::{build_test_vector, decode_message, encode_message, PackedLutTables};
pub use lwe::{LweCiphertext, LweKey, LweSoa};
pub use noise::{NoiseGuard, NoiseModel};
pub use ntt::Transform;
pub use params::{Params, SecurityLevel};
pub use rng::SecureRng;
pub use simd::SimdPath;
pub use torus::Torus32;
pub use trace::thread_buffer_allocs;
