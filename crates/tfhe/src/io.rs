//! Byte-level serialization of keys and ciphertexts.
//!
//! Ciphertexts and client keys use simple little-endian layouts with a
//! magic tag and a parameter-set identifier, so that the cloud backend
//! can reject mismatched material instead of computing garbage. This is
//! the transfer path of Figure 1: ciphertexts and the public (server)
//! key travel to the cloud; the client key never does.
//!
//! The server key — the one artifact large enough and long-lived enough
//! to persist — is wrapped in the [`pytfhe_wire`] envelope: magic,
//! format id, version, payload length, and a CRC32C over header and
//! payload, with the bootstrapping and key-switching keys framed as
//! separate payload sections. Torn writes, bit rot, and version skew
//! all surface as typed errors before a single payload byte is
//! interpreted. [`server_key_from_bytes`] still reads the legacy
//! pre-envelope `TFS\x02` layout through a compat shim (pinned by a
//! golden file in `tests/golden/`); the retired full-spectrum `TFS\x01`
//! tag is recognised only to produce a precise rejection.
//!
//! Every decoder in this module is hardened against adversarial input:
//! declared counts are checked against the bytes actually present
//! (with overflow-safe arithmetic) before anything is allocated or
//! sliced, so hostile buffers yield [`TfheError`]s, never panics.

use crate::bootstrap::BootstrappingKey;
use crate::error::TfheError;
use crate::fft::FreqPoly;
use crate::keys::{ClientKey, ServerKey};
use crate::keyswitch::KeySwitchKey;
use crate::lwe::{LweCiphertext, LweKey};
use crate::params::Params;
use crate::poly::IntPoly;
use crate::tgsw::{Gadget, TgswFft};
use crate::tlwe::TlweKey;
use crate::torus::Torus32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pytfhe_wire as wire;
pub use pytfhe_wire::Vintage;

const CT_MAGIC: u32 = 0x5446_4301; // "TFC\x01"
const CK_MAGIC: u32 = 0x5446_4B01; // "TFK\x01"
/// Legacy server-key format v2: half-complex bootstrapping key, stored
/// as split re/im arrays of N/2 points per polynomial (half the bytes
/// of v1). Read-only since the move to the wire envelope.
const SK_MAGIC: u32 = 0x5446_5302; // "TFS\x02"
/// The retired v1 tag (full-size interleaved complex spectra). Recognised
/// only to produce a precise rejection.
const SK_MAGIC_V1: u32 = 0x5446_5301; // "TFS\x01"

/// Current server-key payload version inside the wire envelope: the
/// `TFS\x02` body split into parameter/bootstrapping/key-switch
/// sections.
const SK_WIRE_VERSION: u16 = 3;
/// Payload section holding the parameter-set id.
const SK_SECTION_PARAMS: u16 = 1;
/// Payload section holding the FFT-domain bootstrapping key.
const SK_SECTION_BSK: u16 = 2;
/// Payload section holding the key-switching key.
const SK_SECTION_KSK: u16 = 3;

/// Clamp for speculative `Vec::with_capacity` calls driven by
/// length fields read from untrusted bytes: never pre-reserve more than
/// this many elements before the data proving them present has been
/// seen. Growth past the clamp happens organically as real bytes are
/// consumed.
const MAX_PREALLOC: usize = 1 << 16;

/// Serializes one LWE ciphertext.
pub fn ciphertext_to_bytes(ct: &LweCiphertext, params: &Params) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + ct.dim() * 4 + 4);
    buf.put_u32_le(CT_MAGIC);
    buf.put_u32_le(params.id());
    buf.put_u32_le(ct.dim() as u32);
    for t in ct.mask() {
        buf.put_u32_le(t.0);
    }
    buf.put_u32_le(ct.body().0);
    buf.freeze()
}

/// Deserializes one LWE ciphertext.
///
/// # Errors
///
/// Returns [`TfheError::Corrupt`] on truncated or mistagged input and
/// [`TfheError::UnknownParams`] for unknown parameter identifiers.
pub fn ciphertext_from_bytes(mut data: &[u8]) -> Result<(LweCiphertext, Params), TfheError> {
    if data.remaining() < 12 {
        return Err(TfheError::Corrupt { what: "ciphertext (truncated header)" });
    }
    if data.get_u32_le() != CT_MAGIC {
        return Err(TfheError::Corrupt { what: "ciphertext (bad magic)" });
    }
    let params = Params::from_id(data.get_u32_le()).ok_or(TfheError::UnknownParams)?;
    let dim = data.get_u32_le();
    // Overflow-safe: the declared mask length is validated against the
    // bytes actually present before anything is allocated, so an
    // adversarial `dim` of u32::MAX cannot reserve 16 GB or slice past
    // the buffer.
    if data.remaining() as u64 != (u64::from(dim) + 1) * 4 {
        return Err(TfheError::Corrupt { what: "ciphertext (length mismatch)" });
    }
    let a = (0..dim).map(|_| Torus32(data.get_u32_le())).collect();
    let b = Torus32(data.get_u32_le());
    Ok((LweCiphertext::from_parts(a, b), params))
}

/// Serializes the client (secret) key. Handle with care.
pub fn client_key_to_bytes(key: &ClientKey) -> Bytes {
    let params = *key.params();
    let mut buf = BytesMut::new();
    buf.put_u32_le(CK_MAGIC);
    buf.put_u32_le(params.id());
    let lwe = key.lwe_key();
    buf.put_u32_le(lwe.dim() as u32);
    for &b in lwe.bits() {
        buf.put_u8(b as u8);
    }
    let tlwe = key.tlwe_key();
    buf.put_u32_le(tlwe.k() as u32);
    buf.put_u32_le(tlwe.poly_size() as u32);
    for poly in tlwe.polys() {
        for &c in poly.coeffs() {
            buf.put_u8(c as u8);
        }
    }
    buf.freeze()
}

/// Deserializes a client key.
///
/// # Errors
///
/// Returns [`TfheError::Corrupt`] / [`TfheError::UnknownParams`] like
/// [`ciphertext_from_bytes`].
pub fn client_key_from_bytes(mut data: &[u8]) -> Result<ClientKey, TfheError> {
    if data.remaining() < 12 {
        return Err(TfheError::Corrupt { what: "client key (truncated header)" });
    }
    if data.get_u32_le() != CK_MAGIC {
        return Err(TfheError::Corrupt { what: "client key (bad magic)" });
    }
    let params = Params::from_id(data.get_u32_le()).ok_or(TfheError::UnknownParams)?;
    let n = data.get_u32_le() as usize;
    if data.remaining() < n {
        return Err(TfheError::Corrupt { what: "client key (LWE bits truncated)" });
    }
    let bits: Vec<i32> = (0..n).map(|_| i32::from(data.get_u8())).collect();
    if data.remaining() < 8 {
        return Err(TfheError::Corrupt { what: "client key (TLWE header truncated)" });
    }
    let k = data.get_u32_le();
    let poly_size = data.get_u32_le();
    // `k * poly_size` can reach 2^64 for adversarial headers; compare in
    // u64 against the bytes actually present instead of multiplying in
    // usize (which would wrap on 32-bit targets and mis-slice).
    let declared = u64::from(k).checked_mul(u64::from(poly_size));
    if declared != Some(data.remaining() as u64) {
        return Err(TfheError::Corrupt { what: "client key (TLWE length mismatch)" });
    }
    let polys = (0..k)
        .map(|_| IntPoly::from_coeffs((0..poly_size).map(|_| i32::from(data.get_u8())).collect()))
        .collect();
    Ok(ClientKey::from_parts(params, LweKey::from_bits(bits), TlweKey::from_polys(polys)))
}

/// Serializes the public server key (bootstrapping key in FFT form plus
/// key-switching key) into a checksummed wire envelope. For the default
/// parameters this is on the order of 100 MB — dominated by the
/// FFT-domain bootstrapping key, as in the reference TFHE library —
/// which is exactly why the envelope frames the bootstrapping and
/// key-switching keys as separate sections and covers everything with
/// a CRC32C.
pub fn server_key_to_bytes(key: &ServerKey) -> Bytes {
    let params = *key.params();
    let mut bsk = BytesMut::new();
    write_bsk(&mut bsk, key);
    let mut ksk = BytesMut::new();
    write_ksk(&mut ksk, key);
    let mut payload = Vec::with_capacity(14 + 20 + bsk.len() + ksk.len());
    wire::put_section(&mut payload, SK_SECTION_PARAMS, &params.id().to_le_bytes());
    wire::put_section(&mut payload, SK_SECTION_BSK, &bsk);
    wire::put_section(&mut payload, SK_SECTION_KSK, &ksk);
    Bytes::from(wire::encode(wire::Format::ServerKey, SK_WIRE_VERSION, &payload))
}

/// Deserializes a server key — either the current wire envelope or,
/// through the compat shim, the legacy pre-envelope `TFS\x02` layout.
///
/// # Errors
///
/// Returns [`TfheError::Wire`] when the envelope fails validation
/// (checksum mismatch, truncation, version skew), and
/// [`TfheError::Corrupt`] / [`TfheError::UnknownParams`] like
/// [`ciphertext_from_bytes`] for body-level corruption.
pub fn server_key_from_bytes(data: &[u8]) -> Result<ServerKey, TfheError> {
    server_key_from_bytes_tagged(data).map(|(key, _)| key)
}

/// [`server_key_from_bytes`] plus the [`Vintage`] of the accepted
/// layout, so stores can count and transparently re-persist legacy
/// artifacts in the current envelope.
///
/// # Errors
///
/// Same as [`server_key_from_bytes`].
pub fn server_key_from_bytes_tagged(mut data: &[u8]) -> Result<(ServerKey, Vintage), TfheError> {
    if wire::is_enveloped(data) {
        let env = wire::decode_expecting(
            data,
            wire::Format::ServerKey,
            SK_WIRE_VERSION..=SK_WIRE_VERSION,
        )
        .map_err(TfheError::Wire)?;
        let mut params_bytes = wire::find_section(env.payload, SK_SECTION_PARAMS)?;
        if params_bytes.remaining() != 4 {
            return Err(TfheError::Corrupt { what: "server key (params section)" });
        }
        let params = Params::from_id(params_bytes.get_u32_le()).ok_or(TfheError::UnknownParams)?;
        let mut bsk = wire::find_section(env.payload, SK_SECTION_BSK)?;
        let bootstrap = parse_bsk(&mut bsk, params)?;
        if bsk.remaining() > 0 {
            return Err(TfheError::Corrupt { what: "server key (trailing bootstrap bytes)" });
        }
        let mut ksk = wire::find_section(env.payload, SK_SECTION_KSK)?;
        let keyswitch = parse_ksk(&mut ksk)?;
        return Ok((ServerKey { params, bootstrap, keyswitch }, Vintage::Current));
    }
    // Legacy compat shim: the pre-envelope TFS\x02 layout (magic,
    // params id, bootstrap body, key-switch body back to back).
    if data.remaining() < 12 {
        return Err(TfheError::Corrupt { what: "server key (truncated header)" });
    }
    match data.get_u32_le() {
        SK_MAGIC => {}
        // The v1 full-size layout is gone; keys must be re-exported.
        SK_MAGIC_V1 => return Err(TfheError::Corrupt { what: "server key (obsolete v1 format)" }),
        _ => return Err(TfheError::Corrupt { what: "server key (bad magic)" }),
    }
    let params = Params::from_id(data.get_u32_le()).ok_or(TfheError::UnknownParams)?;
    let bootstrap = parse_bsk(&mut data, params)?;
    let keyswitch = parse_ksk(&mut data)?;
    Ok((ServerKey { params, bootstrap, keyswitch }, Vintage::Legacy))
}

/// Writes the bootstrapping-key body (shared by the legacy layout and
/// the envelope's BSK section).
fn write_bsk(buf: &mut BytesMut, key: &ServerKey) {
    let tgsw = key.bootstrapping_key().tgsw_raw();
    buf.put_u32_le(tgsw.len() as u32);
    for t in tgsw {
        let rows = t.rows_raw();
        buf.put_u32_le(rows.len() as u32);
        for row in rows {
            buf.put_u32_le(row.len() as u32);
            for poly in row {
                // Split layout: point count, then all N/2 real parts, then
                // all N/2 imaginary parts (matching the in-memory SoA form).
                buf.put_u32_le(poly.points() as u32);
                for &re in poly.re_raw() {
                    buf.put_f64_le(re);
                }
                for &im in poly.im_raw() {
                    buf.put_f64_le(im);
                }
            }
        }
    }
}

/// Writes the key-switching-key body (shared like [`write_bsk`]).
fn write_ksk(buf: &mut BytesMut, key: &ServerKey) {
    let ks = key.keyswitch_key();
    buf.put_u32_le(ks.src_dim() as u32);
    buf.put_u32_le(ks.dst_dim() as u32);
    buf.put_u32_le(ks.levels() as u32);
    buf.put_u32_le(ks.base_log() as u32);
    buf.put_u32_le(ks.num_samples() as u32);
    for s in ks.samples_raw() {
        for t in s.mask() {
            buf.put_u32_le(t.0);
        }
        buf.put_u32_le(s.body().0);
    }
}

/// Parses a bootstrapping-key body. Every declared count is validated
/// against the remaining bytes before allocation, so hostile lengths
/// cannot trigger huge reservations or slicing panics.
fn parse_bsk(data: &mut &[u8], params: Params) -> Result<BootstrappingKey, TfheError> {
    let gadget = Gadget { levels: params.decomp_levels, base_log: params.decomp_base_log };
    if data.remaining() < 4 {
        return Err(TfheError::Corrupt { what: "server key (bootstrap count truncated)" });
    }
    let n_tgsw = data.get_u32_le() as usize;
    let mut tgsw = Vec::with_capacity(n_tgsw.min(MAX_PREALLOC));
    for _ in 0..n_tgsw {
        if data.remaining() < 4 {
            return Err(TfheError::Corrupt { what: "server key (bootstrap rows truncated)" });
        }
        let n_rows = data.get_u32_le() as usize;
        let mut rows = Vec::with_capacity(n_rows.min(MAX_PREALLOC));
        for _ in 0..n_rows {
            if data.remaining() < 4 {
                return Err(TfheError::Corrupt { what: "server key (bootstrap row truncated)" });
            }
            let n_polys = data.get_u32_le() as usize;
            let mut row = Vec::with_capacity(n_polys.min(MAX_PREALLOC));
            for _ in 0..n_polys {
                if data.remaining() < 4 {
                    return Err(TfheError::Corrupt { what: "server key (spectrum truncated)" });
                }
                let points = data.get_u32_le() as usize;
                // `points * 16` in u64: a declared count of u32::MAX
                // must fail the length check, not wrap it.
                if (data.remaining() as u64) < points as u64 * 16 {
                    return Err(TfheError::Corrupt { what: "server key (spectrum truncated)" });
                }
                let re: Vec<f64> = (0..points).map(|_| data.get_f64_le()).collect();
                let im: Vec<f64> = (0..points).map(|_| data.get_f64_le()).collect();
                row.push(FreqPoly::from_split(re, im));
            }
            rows.push(row);
        }
        tgsw.push(TgswFft::from_rows(rows, gadget));
    }
    Ok(BootstrappingKey::from_parts(params, tgsw))
}

/// Parses a key-switching-key body, consuming the slice exactly.
fn parse_ksk(data: &mut &[u8]) -> Result<KeySwitchKey, TfheError> {
    if data.remaining() < 20 {
        return Err(TfheError::Corrupt { what: "server key (key-switch header truncated)" });
    }
    let src_dim = data.get_u32_le() as usize;
    let dst_dim = data.get_u32_le() as usize;
    let levels = data.get_u32_le() as usize;
    let base_log = data.get_u32_le() as usize;
    let n_samples = data.get_u32_le() as usize;
    // The sample block length can reach 2^66 for adversarial headers;
    // validate in u128 so the comparison itself cannot overflow.
    let declared = n_samples as u128 * (dst_dim as u128 + 1) * 4;
    if data.remaining() as u128 != declared {
        return Err(TfheError::Corrupt { what: "server key (key-switch length mismatch)" });
    }
    let mut samples = Vec::with_capacity(n_samples.min(MAX_PREALLOC));
    for _ in 0..n_samples {
        let a = (0..dst_dim).map(|_| Torus32(data.get_u32_le())).collect();
        let b = Torus32(data.get_u32_le());
        samples.push(LweCiphertext::from_parts(a, b));
    }
    Ok(KeySwitchKey::from_parts(samples, src_dim, dst_dim, levels, base_log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecureRng;

    #[test]
    fn ciphertext_round_trip() {
        let mut rng = SecureRng::seed_from_u64(90);
        let params = Params::testing();
        let client = ClientKey::generate(params, &mut rng);
        let ct = client.encrypt_bit(true, &mut rng);
        let bytes = ciphertext_to_bytes(&ct, &params);
        assert_eq!(bytes.len(), 12 + params.ciphertext_bytes());
        let (back, p2) = ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back, ct);
        assert_eq!(p2, params);
    }

    #[test]
    fn ciphertext_rejects_corruption() {
        let mut rng = SecureRng::seed_from_u64(91);
        let params = Params::testing();
        let client = ClientKey::generate(params, &mut rng);
        let ct = client.encrypt_bit(false, &mut rng);
        let bytes = ciphertext_to_bytes(&ct, &params);
        // Truncated.
        assert!(ciphertext_from_bytes(&bytes[..bytes.len() - 1]).is_err());
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(ciphertext_from_bytes(&bad).is_err());
        // Unknown params id.
        let mut bad = bytes.to_vec();
        bad[4] = 0xEE;
        assert_eq!(ciphertext_from_bytes(&bad).unwrap_err(), TfheError::UnknownParams);
    }

    #[test]
    fn client_key_round_trip() {
        let mut rng = SecureRng::seed_from_u64(92);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let bytes = client_key_to_bytes(&client);
        let back = client_key_from_bytes(&bytes).unwrap();
        // The restored key must decrypt what the original encrypted.
        let ct = client.encrypt_bit(true, &mut rng);
        assert!(back.decrypt_bit(&ct));
        let ct = client.encrypt_bit(false, &mut rng);
        assert!(!back.decrypt_bit(&ct));
    }

    /// Re-encodes a key in the legacy pre-envelope `TFS\x02` layout, as
    /// old deployments wrote it (the golden file freezes real old
    /// bytes; this keeps the shim covered at every parameter set).
    fn legacy_server_key_bytes(key: &ServerKey) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(super::SK_MAGIC);
        buf.put_u32_le(key.params().id());
        super::write_bsk(&mut buf, key);
        super::write_ksk(&mut buf, key);
        buf.to_vec()
    }

    #[test]
    fn server_key_round_trip_evaluates_gates() {
        let mut rng = SecureRng::seed_from_u64(93);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let bytes = server_key_to_bytes(&server);
        let (back, vintage) = server_key_from_bytes_tagged(&bytes).unwrap();
        assert_eq!(vintage, Vintage::Current);
        let a = client.encrypt_bit(true, &mut rng);
        let b = client.encrypt_bit(true, &mut rng);
        assert!(!client.decrypt_bit(&back.nand(&a, &b)));
        assert!(client.decrypt_bit(&back.and(&a, &b)));
    }

    #[test]
    fn legacy_server_key_loads_through_the_compat_shim() {
        let mut rng = SecureRng::seed_from_u64(97);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let legacy = legacy_server_key_bytes(&server);
        let (back, vintage) = server_key_from_bytes_tagged(&legacy).unwrap();
        assert_eq!(vintage, Vintage::Legacy);
        let a = client.encrypt_bit(true, &mut rng);
        let b = client.encrypt_bit(false, &mut rng);
        assert!(client.decrypt_bit(&back.nand(&a, &b)));
    }

    #[test]
    fn server_key_rejects_corruption() {
        let mut rng = SecureRng::seed_from_u64(94);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let bytes = server_key_to_bytes(&server);
        // Truncation breaks the declared envelope length.
        assert!(server_key_from_bytes(&bytes[..100]).is_err());
        // A corrupted envelope magic is not routed to the legacy shim.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0x10;
        assert!(server_key_from_bytes(&bad).is_err());
        // A payload bit flip fails the CRC32C.
        let mut bad = bytes.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(
            matches!(server_key_from_bytes(&bad), Err(TfheError::Wire(_))),
            "payload bit flip must fail the envelope checksum"
        );
    }

    #[test]
    fn legacy_server_key_rejects_truncation() {
        let mut rng = SecureRng::seed_from_u64(98);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let legacy = legacy_server_key_bytes(&server);
        for keep in [0, 7, 11, 12, 40, legacy.len() - 1] {
            assert!(server_key_from_bytes(&legacy[..keep]).is_err(), "truncation to {keep}");
        }
    }

    #[test]
    fn server_key_rejects_obsolete_v1_version_byte() {
        let mut rng = SecureRng::seed_from_u64(95);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let mut bytes = legacy_server_key_bytes(&server);
        // Rewrite the little-endian magic to the retired v1 tag; the body
        // that follows is a valid v2 payload, which v1 readers would have
        // misparsed — so the version byte alone must cause rejection.
        bytes[..4].copy_from_slice(&super::SK_MAGIC_V1.to_le_bytes());
        let err = server_key_from_bytes(&bytes).unwrap_err();
        assert_eq!(err, TfheError::Corrupt { what: "server key (obsolete v1 format)" });
    }

    #[test]
    fn adversarial_lengths_error_instead_of_panicking() {
        // Ciphertext declaring a u32::MAX-element mask over a tiny
        // buffer: the length check must fail without allocating.
        let mut ct = Vec::new();
        ct.extend_from_slice(&super::CT_MAGIC.to_le_bytes());
        ct.extend_from_slice(&Params::testing().id().to_le_bytes());
        ct.extend_from_slice(&u32::MAX.to_le_bytes());
        ct.extend_from_slice(&[0u8; 8]);
        assert!(ciphertext_from_bytes(&ct).is_err());

        // Client key whose k × poly_size product overflows.
        let mut ck = Vec::new();
        ck.extend_from_slice(&super::CK_MAGIC.to_le_bytes());
        ck.extend_from_slice(&Params::testing().id().to_le_bytes());
        ck.extend_from_slice(&0u32.to_le_bytes()); // zero LWE bits
        ck.extend_from_slice(&u32::MAX.to_le_bytes()); // k
        ck.extend_from_slice(&u32::MAX.to_le_bytes()); // poly_size
        ck.extend_from_slice(&[0u8; 16]);
        assert!(client_key_from_bytes(&ck).is_err());

        // Legacy server key declaring 2^32-1 TGSW entries / samples:
        // must fail a length check, not reserve gigabytes or slice.
        let mut sk = Vec::new();
        sk.extend_from_slice(&super::SK_MAGIC.to_le_bytes());
        sk.extend_from_slice(&Params::testing().id().to_le_bytes());
        sk.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(server_key_from_bytes(&sk).is_err());
        let mut sk = Vec::new();
        sk.extend_from_slice(&super::SK_MAGIC.to_le_bytes());
        sk.extend_from_slice(&Params::testing().id().to_le_bytes());
        sk.extend_from_slice(&0u32.to_le_bytes()); // zero TGSW entries
        for v in [7u32, 3, 8, 2, u32::MAX] {
            sk.extend_from_slice(&v.to_le_bytes()); // ksk header, huge count
        }
        assert!(server_key_from_bytes(&sk).is_err());
    }

    #[test]
    fn server_key_stores_half_size_spectra() {
        let mut rng = SecureRng::seed_from_u64(96);
        let params = Params::testing();
        let client = ClientKey::generate(params, &mut rng);
        let server = client.server_key(&mut rng);
        // Every stored spectrum is folded: exactly N/2 points.
        let mut bsk_len = 4usize; // tgsw count
        for t in server.bootstrapping_key().tgsw_raw() {
            bsk_len += 4;
            for row in t.rows_raw() {
                bsk_len += 4;
                for poly in row {
                    assert_eq!(poly.points(), params.poly_size / 2);
                    bsk_len += 4 + poly.points() * 16;
                }
            }
        }
        let ks = server.keyswitch_key();
        let ksk_len = 20 + ks.num_samples() * (ks.dst_dim() + 1) * 4;
        // Envelope header + three sections (10-byte section headers):
        // params id, bootstrap body, key-switch body.
        let expected = pytfhe_wire::HEADER_LEN + (10 + 4) + (10 + bsk_len) + (10 + ksk_len);
        let bytes = server_key_to_bytes(&server);
        assert_eq!(bytes.len(), expected);
    }
}
