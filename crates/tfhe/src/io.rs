//! Byte-level serialization of keys and ciphertexts.
//!
//! The wire formats are simple little-endian layouts with a magic tag and a
//! parameter-set identifier, so that the cloud backend can reject
//! mismatched material instead of computing garbage. This is the transfer
//! path of Figure 1: ciphertexts and the public (server) key travel to the
//! cloud; the client key never does.

use crate::bootstrap::BootstrappingKey;
use crate::error::TfheError;
use crate::fft::FreqPoly;
use crate::keys::{ClientKey, ServerKey};
use crate::keyswitch::KeySwitchKey;
use crate::lwe::{LweCiphertext, LweKey};
use crate::params::Params;
use crate::poly::IntPoly;
use crate::tgsw::{Gadget, TgswFft};
use crate::tlwe::TlweKey;
use crate::torus::Torus32;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const CT_MAGIC: u32 = 0x5446_4301; // "TFC\x01"
const CK_MAGIC: u32 = 0x5446_4B01; // "TFK\x01"
/// Server-key format v2: half-complex bootstrapping key, stored as split
/// re/im arrays of N/2 points per polynomial (half the bytes of v1).
const SK_MAGIC: u32 = 0x5446_5302; // "TFS\x02"
/// The retired v1 tag (full-size interleaved complex spectra). Recognised
/// only to produce a precise rejection.
const SK_MAGIC_V1: u32 = 0x5446_5301; // "TFS\x01"

/// Serializes one LWE ciphertext.
pub fn ciphertext_to_bytes(ct: &LweCiphertext, params: &Params) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + ct.dim() * 4 + 4);
    buf.put_u32_le(CT_MAGIC);
    buf.put_u32_le(params.id());
    buf.put_u32_le(ct.dim() as u32);
    for t in ct.mask() {
        buf.put_u32_le(t.0);
    }
    buf.put_u32_le(ct.body().0);
    buf.freeze()
}

/// Deserializes one LWE ciphertext.
///
/// # Errors
///
/// Returns [`TfheError::Corrupt`] on truncated or mistagged input and
/// [`TfheError::UnknownParams`] for unknown parameter identifiers.
pub fn ciphertext_from_bytes(mut data: &[u8]) -> Result<(LweCiphertext, Params), TfheError> {
    let corrupt = TfheError::Corrupt { what: "ciphertext" };
    if data.remaining() < 12 {
        return Err(corrupt.clone());
    }
    if data.get_u32_le() != CT_MAGIC {
        return Err(corrupt.clone());
    }
    let params = Params::from_id(data.get_u32_le()).ok_or(TfheError::UnknownParams)?;
    let dim = data.get_u32_le() as usize;
    if data.remaining() != (dim + 1) * 4 {
        return Err(corrupt);
    }
    let a = (0..dim).map(|_| Torus32(data.get_u32_le())).collect();
    let b = Torus32(data.get_u32_le());
    Ok((LweCiphertext::from_parts(a, b), params))
}

/// Serializes the client (secret) key. Handle with care.
pub fn client_key_to_bytes(key: &ClientKey) -> Bytes {
    let params = *key.params();
    let mut buf = BytesMut::new();
    buf.put_u32_le(CK_MAGIC);
    buf.put_u32_le(params.id());
    let lwe = key.lwe_key();
    buf.put_u32_le(lwe.dim() as u32);
    for &b in lwe.bits() {
        buf.put_u8(b as u8);
    }
    let tlwe = key.tlwe_key();
    buf.put_u32_le(tlwe.k() as u32);
    buf.put_u32_le(tlwe.poly_size() as u32);
    for poly in tlwe.polys() {
        for &c in poly.coeffs() {
            buf.put_u8(c as u8);
        }
    }
    buf.freeze()
}

/// Deserializes a client key.
///
/// # Errors
///
/// Returns [`TfheError::Corrupt`] / [`TfheError::UnknownParams`] like
/// [`ciphertext_from_bytes`].
pub fn client_key_from_bytes(mut data: &[u8]) -> Result<ClientKey, TfheError> {
    let corrupt = TfheError::Corrupt { what: "client key" };
    if data.remaining() < 12 || data.get_u32_le() != CK_MAGIC {
        return Err(corrupt.clone());
    }
    let params = Params::from_id(data.get_u32_le()).ok_or(TfheError::UnknownParams)?;
    let n = data.get_u32_le() as usize;
    if data.remaining() < n {
        return Err(corrupt.clone());
    }
    let bits: Vec<i32> = (0..n).map(|_| i32::from(data.get_u8())).collect();
    if data.remaining() < 8 {
        return Err(corrupt.clone());
    }
    let k = data.get_u32_le() as usize;
    let poly_size = data.get_u32_le() as usize;
    if data.remaining() != k * poly_size {
        return Err(corrupt);
    }
    let polys = (0..k)
        .map(|_| IntPoly::from_coeffs((0..poly_size).map(|_| i32::from(data.get_u8())).collect()))
        .collect();
    Ok(ClientKey::from_parts(params, LweKey::from_bits(bits), TlweKey::from_polys(polys)))
}

/// Serializes the public server key (bootstrapping key in FFT form plus
/// key-switching key). For the default parameters this is on the order of
/// 100 MB — dominated by the FFT-domain bootstrapping key, as in the
/// reference TFHE library.
pub fn server_key_to_bytes(key: &ServerKey) -> Bytes {
    let params = *key.params();
    let mut buf = BytesMut::new();
    buf.put_u32_le(SK_MAGIC);
    buf.put_u32_le(params.id());
    // Bootstrapping key.
    let tgsw = key.bootstrapping_key().tgsw_raw();
    buf.put_u32_le(tgsw.len() as u32);
    for t in tgsw {
        let rows = t.rows_raw();
        buf.put_u32_le(rows.len() as u32);
        for row in rows {
            buf.put_u32_le(row.len() as u32);
            for poly in row {
                // Split layout: point count, then all N/2 real parts, then
                // all N/2 imaginary parts (matching the in-memory SoA form).
                buf.put_u32_le(poly.points() as u32);
                for &re in poly.re_raw() {
                    buf.put_f64_le(re);
                }
                for &im in poly.im_raw() {
                    buf.put_f64_le(im);
                }
            }
        }
    }
    // Key-switching key.
    let ks = key.keyswitch_key();
    buf.put_u32_le(ks.src_dim() as u32);
    buf.put_u32_le(ks.dst_dim() as u32);
    buf.put_u32_le(ks.levels() as u32);
    buf.put_u32_le(ks.base_log() as u32);
    buf.put_u32_le(ks.num_samples() as u32);
    for s in ks.samples_raw() {
        for t in s.mask() {
            buf.put_u32_le(t.0);
        }
        buf.put_u32_le(s.body().0);
    }
    buf.freeze()
}

/// Deserializes a server key.
///
/// # Errors
///
/// Returns [`TfheError::Corrupt`] / [`TfheError::UnknownParams`] like
/// [`ciphertext_from_bytes`].
pub fn server_key_from_bytes(mut data: &[u8]) -> Result<ServerKey, TfheError> {
    let corrupt = TfheError::Corrupt { what: "server key" };
    if data.remaining() < 12 {
        return Err(corrupt.clone());
    }
    match data.get_u32_le() {
        SK_MAGIC => {}
        // The v1 full-size layout is gone; keys must be re-exported.
        SK_MAGIC_V1 => return Err(TfheError::Corrupt { what: "server key (obsolete v1 format)" }),
        _ => return Err(corrupt.clone()),
    }
    let params = Params::from_id(data.get_u32_le()).ok_or(TfheError::UnknownParams)?;
    let gadget = Gadget { levels: params.decomp_levels, base_log: params.decomp_base_log };
    let n_tgsw = data.get_u32_le() as usize;
    let mut tgsw = Vec::with_capacity(n_tgsw);
    for _ in 0..n_tgsw {
        if data.remaining() < 4 {
            return Err(corrupt.clone());
        }
        let n_rows = data.get_u32_le() as usize;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            if data.remaining() < 4 {
                return Err(corrupt.clone());
            }
            let n_polys = data.get_u32_le() as usize;
            let mut row = Vec::with_capacity(n_polys);
            for _ in 0..n_polys {
                if data.remaining() < 4 {
                    return Err(corrupt.clone());
                }
                let points = data.get_u32_le() as usize;
                if data.remaining() < points * 16 {
                    return Err(corrupt.clone());
                }
                let re: Vec<f64> = (0..points).map(|_| data.get_f64_le()).collect();
                let im: Vec<f64> = (0..points).map(|_| data.get_f64_le()).collect();
                row.push(FreqPoly::from_split(re, im));
            }
            rows.push(row);
        }
        tgsw.push(TgswFft::from_rows(rows, gadget));
    }
    if data.remaining() < 20 {
        return Err(corrupt.clone());
    }
    let src_dim = data.get_u32_le() as usize;
    let dst_dim = data.get_u32_le() as usize;
    let levels = data.get_u32_le() as usize;
    let base_log = data.get_u32_le() as usize;
    let n_samples = data.get_u32_le() as usize;
    if data.remaining() != n_samples * (dst_dim + 1) * 4 {
        return Err(corrupt);
    }
    let mut samples = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let a = (0..dst_dim).map(|_| Torus32(data.get_u32_le())).collect();
        let b = Torus32(data.get_u32_le());
        samples.push(LweCiphertext::from_parts(a, b));
    }
    let bootstrap = BootstrappingKey::from_parts(params, tgsw);
    let keyswitch = KeySwitchKey::from_parts(samples, src_dim, dst_dim, levels, base_log);
    Ok(ServerKey { params, bootstrap, keyswitch })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecureRng;

    #[test]
    fn ciphertext_round_trip() {
        let mut rng = SecureRng::seed_from_u64(90);
        let params = Params::testing();
        let client = ClientKey::generate(params, &mut rng);
        let ct = client.encrypt_bit(true, &mut rng);
        let bytes = ciphertext_to_bytes(&ct, &params);
        assert_eq!(bytes.len(), 12 + params.ciphertext_bytes());
        let (back, p2) = ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back, ct);
        assert_eq!(p2, params);
    }

    #[test]
    fn ciphertext_rejects_corruption() {
        let mut rng = SecureRng::seed_from_u64(91);
        let params = Params::testing();
        let client = ClientKey::generate(params, &mut rng);
        let ct = client.encrypt_bit(false, &mut rng);
        let bytes = ciphertext_to_bytes(&ct, &params);
        // Truncated.
        assert!(ciphertext_from_bytes(&bytes[..bytes.len() - 1]).is_err());
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(ciphertext_from_bytes(&bad).is_err());
        // Unknown params id.
        let mut bad = bytes.to_vec();
        bad[4] = 0xEE;
        assert_eq!(ciphertext_from_bytes(&bad).unwrap_err(), TfheError::UnknownParams);
    }

    #[test]
    fn client_key_round_trip() {
        let mut rng = SecureRng::seed_from_u64(92);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let bytes = client_key_to_bytes(&client);
        let back = client_key_from_bytes(&bytes).unwrap();
        // The restored key must decrypt what the original encrypted.
        let ct = client.encrypt_bit(true, &mut rng);
        assert!(back.decrypt_bit(&ct));
        let ct = client.encrypt_bit(false, &mut rng);
        assert!(!back.decrypt_bit(&ct));
    }

    #[test]
    fn server_key_round_trip_evaluates_gates() {
        let mut rng = SecureRng::seed_from_u64(93);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let bytes = server_key_to_bytes(&server);
        let back = server_key_from_bytes(&bytes).unwrap();
        let a = client.encrypt_bit(true, &mut rng);
        let b = client.encrypt_bit(true, &mut rng);
        assert!(!client.decrypt_bit(&back.nand(&a, &b)));
        assert!(client.decrypt_bit(&back.and(&a, &b)));
    }

    #[test]
    fn server_key_rejects_corruption() {
        let mut rng = SecureRng::seed_from_u64(94);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let bytes = server_key_to_bytes(&server);
        assert!(server_key_from_bytes(&bytes[..100]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] ^= 0x10;
        assert!(server_key_from_bytes(&bad).is_err());
    }

    #[test]
    fn server_key_rejects_obsolete_v1_version_byte() {
        let mut rng = SecureRng::seed_from_u64(95);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let mut bytes = server_key_to_bytes(&server).to_vec();
        // Rewrite the little-endian magic to the retired v1 tag; the body
        // that follows is a valid v2 payload, which v1 readers would have
        // misparsed — so the version byte alone must cause rejection.
        bytes[..4].copy_from_slice(&super::SK_MAGIC_V1.to_le_bytes());
        let err = server_key_from_bytes(&bytes).unwrap_err();
        assert_eq!(err, TfheError::Corrupt { what: "server key (obsolete v1 format)" });
    }

    #[test]
    fn server_key_stores_half_size_spectra() {
        let mut rng = SecureRng::seed_from_u64(96);
        let params = Params::testing();
        let client = ClientKey::generate(params, &mut rng);
        let server = client.server_key(&mut rng);
        // Every stored spectrum is folded: exactly N/2 points.
        let mut expected = 12usize; // SK magic + params id + tgsw count
        for t in server.bootstrapping_key().tgsw_raw() {
            expected += 4;
            for row in t.rows_raw() {
                expected += 4;
                for poly in row {
                    assert_eq!(poly.points(), params.poly_size / 2);
                    expected += 4 + poly.points() * 16;
                }
            }
        }
        let ks = server.keyswitch_key();
        expected += 20 + ks.num_samples() * (ks.dst_dim() + 1) * 4;
        let bytes = server_key_to_bytes(&server);
        // Exact wire size: half the v1 spectra footprint (v1 stored N
        // interleaved complex points per polynomial).
        assert_eq!(bytes.len(), expected);
    }
}
