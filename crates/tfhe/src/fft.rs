//! Fast negacyclic polynomial multiplication via the folded ("Lagrange
//! half-complex") twisted FFT.
//!
//! TFHE's hot loop — the external products inside blind rotation —
//! multiplies small-integer polynomials by torus polynomials in
//! `T[X]/(X^N + 1)`. The negacyclic DFT evaluates a polynomial at the `N`
//! odd roots of unity `e^{iπ(2t+1)/N}`; because the inputs are *real*,
//! the values at conjugate root pairs are conjugates of each other, so
//! only `N/2` of them carry information. Folding coefficient pairs
//! `(p[j], p[j + N/2])` into one complex input
//!
//! ```text
//! c[j] = (p[j] + i·p[j + N/2]) · e^{iπj/N},      j < N/2
//! ```
//!
//! and running an `N/2`-point FFT with `e^{+2πi/M}` twiddles yields
//! exactly the evaluations `p(ζ_k)` at `ζ_k = e^{iπ(1 + 4k)/N}` — one
//! representative from each conjugate pair (the angles `1 + 4k` are the
//! odd residues `≡ 1 (mod 4)`, whose negations are `≡ 3 (mod 4)`).
//! Pointwise products of these `N/2` values therefore realise negacyclic
//! convolution with *half* the transform work and half the storage of
//! the classic full-size complex FFT, which is why the TFHE library (and
//! every accelerator since — MATCHA batches exactly these transforms)
//! stores its bootstrapping key in this form.
//!
//! [`FreqPoly`] keeps the `N/2` points as split `re`/`im` arrays
//! (structure-of-arrays), so the external-product multiply-accumulate
//! compiles to straight-line FMA-friendly loops over four flat `f64`
//! slices instead of an array-of-structs gather.
//!
//! Precision: products of decomposed digits (`|d| ≤ Bg/2 = 64`) with
//! torus values (`< 2^31`) accumulated over `N = 1024` taps stay below
//! `2^47`, comfortably inside an `f64` mantissa even after the
//! `(k+1)·l`-row accumulation of the external product; the sub-unit
//! rounding error folds into the scheme's noise budget exactly as in the
//! reference TFHE library. Folding does not change the magnitudes — the
//! `N/2` stored values are the *same* evaluations the full-size
//! transform produced — and removes one butterfly stage, so the folded
//! path is never less accurate than the full-size one it replaced (kept
//! as an oracle in [`crate::reference`]).

use crate::align::AlignedBuf;
use crate::poly::{IntPoly, TorusPoly};
use crate::simd;
use crate::torus::Torus32;
use crate::trace::note_buffer_alloc;

/// A real negacyclic polynomial in the folded twisted frequency domain
/// ("Lagrange half-complex" in TFHE-library terminology): `N/2` complex
/// points stored as split `re`/`im` arrays. Pointwise products here
/// correspond to negacyclic products in the coefficient domain.
#[derive(Debug, PartialEq)]
pub struct FreqPoly {
    re: Vec<f64>,
    im: Vec<f64>,
}

/// `Clone` is implemented manually so every fresh pair of buffers is
/// visible to the allocation accounting in [`crate::trace`] — the derived
/// impl would allocate behind the counter's back. `clone_from` reuses the
/// destination's buffers and stays alloc-free for same-size sources.
impl Clone for FreqPoly {
    fn clone(&self) -> Self {
        note_buffer_alloc();
        FreqPoly { re: self.re.clone(), im: self.im.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.re.clone_from(&source.re);
        self.im.clone_from(&source.im);
    }
}

impl FreqPoly {
    /// The zero frequency-domain polynomial for *polynomial* degree bound
    /// `n` (a power of two, at least 2): holds exactly `n/2` points.
    ///
    /// # Panics
    ///
    /// Panics if `n` is odd or smaller than 2.
    pub fn zero(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "FreqPoly is sized for even polynomial lengths >= 2"
        );
        note_buffer_alloc();
        FreqPoly { re: vec![0.0; n / 2], im: vec![0.0; n / 2] }
    }

    /// Number of stored frequency points (`N/2`).
    #[inline]
    pub fn points(&self) -> usize {
        self.re.len()
    }

    /// Degree bound `N` of the coefficient-domain polynomial
    /// (`2 * points`).
    #[inline]
    pub fn poly_len(&self) -> usize {
        2 * self.re.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Raw real parts (crate-internal, for serialization).
    pub(crate) fn re_raw(&self) -> &[f64] {
        &self.re
    }

    /// Raw imaginary parts (crate-internal, for serialization).
    pub(crate) fn im_raw(&self) -> &[f64] {
        &self.im
    }

    /// Rebuilds from split raw arrays (crate-internal, for
    /// deserialization). The arrays must have equal length.
    pub(crate) fn from_split(re: Vec<f64>, im: Vec<f64>) -> Self {
        debug_assert_eq!(re.len(), im.len());
        note_buffer_alloc();
        FreqPoly { re, im }
    }

    /// Resets to zero without reallocating.
    pub fn clear(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
    }

    /// `self += a * b` pointwise — the multiply-accumulate at the heart of
    /// the external product. Dispatched through the [`crate::simd`]
    /// kernel layer (explicit FMA lanes on AVX2/NEON hosts, the
    /// autovectorized flat-slice loop on the scalar path).
    pub fn add_mul_assign(&mut self, a: &FreqPoly, b: &FreqPoly) {
        let m = self.re.len();
        debug_assert_eq!(m, a.re.len());
        debug_assert_eq!(m, b.re.len());
        simd::kernels().mac(&mut self.re, &mut self.im, &a.re, &a.im, &b.re, &b.im);
    }
}

/// A *batch* of frequency-domain polynomials in point-major interleaved
/// layout: value `re[point * lanes + lane]` is frequency point `point`
/// of batch member `lane`. The layout is what makes lockstep blind
/// rotation pay off — a butterfly's twiddle is loaded once per point
/// and applied to `lanes` contiguous values, the early FFT stages run
/// full vectors instead of scalars, and the external product's
/// bootstrapping-key row is streamed once per batch instead of once per
/// ciphertext (see [`crate::simd::Kernels::fft_passes_batch`] and
/// [`crate::simd::Kernels::mac_bcast`]).
///
/// Storage is 64-byte aligned ([`AlignedBuf`]) and sized for a maximum
/// lane count at construction; [`FreqPolyBatch::reset`] re-arms it for
/// the (possibly smaller) live width of each batch step without
/// reallocating.
#[derive(Debug, Clone)]
pub struct FreqPolyBatch {
    re: AlignedBuf<f64>,
    im: AlignedBuf<f64>,
    /// Frequency points per lane (`M = N/2`).
    points: usize,
    /// Current live batch width.
    lanes: usize,
}

impl FreqPolyBatch {
    /// A zeroed batch for polynomials of degree bound `n`, able to hold
    /// up to `max_lanes` members.
    pub fn new(n: usize, max_lanes: usize) -> Self {
        assert!(n >= 2 && n.is_multiple_of(2) && max_lanes > 0);
        note_buffer_alloc();
        let points = n / 2;
        FreqPolyBatch {
            re: AlignedBuf::zeroed(points * max_lanes),
            im: AlignedBuf::zeroed(points * max_lanes),
            points,
            lanes: max_lanes,
        }
    }

    /// Frequency points per lane (`N/2`).
    #[inline]
    pub fn points(&self) -> usize {
        self.points
    }

    /// Current live batch width.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Re-arms the batch for `lanes` members and zeroes the live region
    /// (growing the allocation only if `lanes` exceeds the constructed
    /// maximum).
    pub fn reset(&mut self, lanes: usize) {
        assert!(lanes > 0);
        let need = self.points * lanes;
        if need > self.re.len() {
            self.re.resize_zeroed(need);
            self.im.resize_zeroed(need);
        }
        self.lanes = lanes;
        debug_assert!(self.re.is_aligned() && self.im.is_aligned());
        self.re[..need].fill(0.0);
        self.im[..need].fill(0.0);
    }

    /// Live split slices (`points * lanes` values each).
    #[inline]
    fn live_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        let need = self.points * self.lanes;
        (&mut self.re[..need], &mut self.im[..need])
    }

    /// `self += a * b` pointwise per lane, with `b` one spectrum shared
    /// by every lane — the batched external-product MAC.
    pub fn add_mul_bcast(&mut self, a: &FreqPolyBatch, b: &FreqPoly) {
        let lanes = self.lanes;
        debug_assert_eq!(a.lanes, lanes);
        debug_assert_eq!(a.points, self.points);
        debug_assert_eq!(b.points(), self.points);
        let need = self.points * lanes;
        simd::kernels().mac_bcast(
            &mut self.re[..need],
            &mut self.im[..need],
            &a.re[..need],
            &a.im[..need],
            &b.re,
            &b.im,
            lanes,
        );
    }
}

/// Precomputed tables for folded transforms of one polynomial size `N`
/// (transform size `M = N/2`).
///
/// The butterfly twiddles are stored as *per-stage contiguous tables*
/// (`M - 1` entries: the stage-`len = 2` table, then stage-`4`, …, then
/// stage-`M`, each holding `len/2` twiddles in `j` order). The classic
/// strided indexing `w[j · M/len]` defeats vector loads; laying each
/// stage out contiguously lets the [`crate::simd`] butterfly kernels
/// stream twiddles with plain unaligned loads, and costs the same
/// `O(M)` total storage as the strided table it replaces.
#[derive(Debug, Clone)]
pub struct FftPlan {
    /// Polynomial degree bound `N`.
    n: usize,
    /// Transform size `M = N/2`.
    m: usize,
    /// Forward per-stage twiddles `e^{+2πik/M}` (split re/im), 64-byte
    /// aligned so the wide butterfly kernels never split a cache line.
    fwd_re: AlignedBuf<f64>,
    fwd_im: AlignedBuf<f64>,
    /// Inverse per-stage twiddles `e^{-2πik/M}`, precomputed so the
    /// butterfly kernel never branches on direction.
    inv_re: AlignedBuf<f64>,
    inv_im: AlignedBuf<f64>,
    /// Twist `e^{iπj/N}` for `j < M` (split re/im).
    tw_re: AlignedBuf<f64>,
    tw_im: AlignedBuf<f64>,
    /// Bit-reversal permutation of size `M`.
    rev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for polynomials of degree bound `n` (a power of two,
    /// at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "FFT size must be a power of two >= 2");
        let m = n / 2;
        // Stage-concatenated twiddles: for each stage `len`, entry `j`
        // is the old strided `w[j · M/len]`, i.e. angle `2π·j·(M/len)/M`.
        let mut fwd_re = Vec::with_capacity(m.saturating_sub(1));
        let mut fwd_im = Vec::with_capacity(m.saturating_sub(1));
        let mut inv_re = Vec::with_capacity(m.saturating_sub(1));
        let mut inv_im = Vec::with_capacity(m.saturating_sub(1));
        let mut len = 2;
        while len <= m {
            let step = m / len;
            for j in 0..len / 2 {
                let theta = 2.0 * std::f64::consts::PI * (j * step) as f64 / m as f64;
                fwd_re.push(theta.cos());
                fwd_im.push(theta.sin());
                inv_re.push(theta.cos());
                inv_im.push(-theta.sin());
            }
            len <<= 1;
        }
        let mut tw_re = Vec::with_capacity(m);
        let mut tw_im = Vec::with_capacity(m);
        for j in 0..m {
            let theta = std::f64::consts::PI * j as f64 / n as f64;
            tw_re.push(theta.cos());
            tw_im.push(theta.sin());
        }
        let bits = m.trailing_zeros();
        let rev = (0..m as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        let plan = FftPlan {
            n,
            m,
            fwd_re: AlignedBuf::from_slice(&fwd_re),
            fwd_im: AlignedBuf::from_slice(&fwd_im),
            inv_re: AlignedBuf::from_slice(&inv_re),
            inv_im: AlignedBuf::from_slice(&inv_im),
            tw_re: AlignedBuf::from_slice(&tw_re),
            tw_im: AlignedBuf::from_slice(&tw_im),
            rev,
        };
        debug_assert!(plan.fwd_re.is_aligned() && plan.tw_re.is_aligned());
        plan
    }

    /// Polynomial degree bound `N`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Folded transform size `M = N/2`.
    pub fn points(&self) -> usize {
        self.m
    }

    /// Whether the plan is empty (never true; present for API symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place iterative radix-2 DIT FFT over split re/im buffers with
    /// the given per-stage twiddle table (forward or inverse — both
    /// precomputed, so there is no per-butterfly direction branch). The
    /// bit-reversal permutation stays here; the butterfly passes run in
    /// the dispatched [`crate::simd`] kernel.
    fn fft_split(&self, re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
        let m = self.m;
        debug_assert_eq!(re.len(), m);
        debug_assert_eq!(im.len(), m);
        for i in 0..m {
            let j = self.rev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        simd::kernels().fft_passes(re, im, st_re, st_im);
    }

    /// Forward transform of a torus polynomial (coefficients lifted to
    /// signed integers), allocating the output.
    pub fn forward_torus(&self, p: &TorusPoly) -> FreqPoly {
        let mut out = FreqPoly::zero(self.n);
        self.forward_torus_into(p, &mut out);
        out
    }

    /// Like [`FftPlan::forward_torus`] but reuses `out`'s buffers.
    pub fn forward_torus_into(&self, p: &TorusPoly, out: &mut FreqPoly) {
        debug_assert_eq!(p.len(), self.n);
        debug_assert_eq!(out.points(), self.m);
        let c = Torus32::slice_as_i32(p.coeffs());
        let FreqPoly { re, im } = out;
        simd::kernels().fwd_twist(c, &self.tw_re, &self.tw_im, re, im);
        self.fft_split(re, im, &self.fwd_re, &self.fwd_im);
    }

    /// Forward transform of an integer polynomial, allocating the output.
    pub fn forward_int(&self, p: &IntPoly) -> FreqPoly {
        let mut out = FreqPoly::zero(self.n);
        self.forward_int_into(p, &mut out);
        out
    }

    /// Like [`FftPlan::forward_int`] but reuses `out`'s buffers — the
    /// per-digit transform of the external product's hot loop.
    pub fn forward_int_into(&self, p: &IntPoly, out: &mut FreqPoly) {
        debug_assert_eq!(p.len(), self.n);
        debug_assert_eq!(out.points(), self.m);
        let FreqPoly { re, im } = out;
        simd::kernels().fwd_twist(p.coeffs(), &self.tw_re, &self.tw_im, re, im);
        self.fft_split(re, im, &self.fwd_re, &self.fwd_im);
    }

    /// Inverse transform, rounding back to torus coefficients. Allocates
    /// a working copy (counted); the hot path uses
    /// [`FftPlan::inverse_torus_destructive`] on scratch instead.
    pub fn inverse_torus(&self, f: &FreqPoly) -> TorusPoly {
        let mut tmp = f.clone();
        let mut out = TorusPoly::zero(self.n);
        self.inverse_torus_destructive(&mut tmp, &mut out);
        out
    }

    /// Inverse transform consuming `f`'s contents (the inverse FFT runs in
    /// `f`'s own buffers), writing rounded torus coefficients into `out`.
    /// Allocation-free; `f` holds garbage afterwards.
    pub fn inverse_torus_destructive(&self, f: &mut FreqPoly, out: &mut TorusPoly) {
        debug_assert_eq!(f.points(), self.m);
        debug_assert_eq!(out.len(), self.n);
        self.fft_split(&mut f.re, &mut f.im, &self.inv_re, &self.inv_im);
        // Unscale, untwist (multiply by conj(twist)), unfold, and round to
        // the nearest torus element in one dispatched pass: the real part
        // is coefficient j, the imaginary part j + N/2.
        simd::kernels().inv_untwist_round(
            &mut f.re,
            &mut f.im,
            &self.tw_re,
            &self.tw_im,
            out.coeffs_mut(),
        );
    }

    /// Convenience: full negacyclic product `a * b` through the frequency
    /// domain. The hot paths use the split transforms directly to batch
    /// multiply-accumulates.
    pub fn negacyclic_mul(&self, a: &IntPoly, b: &TorusPoly) -> TorusPoly {
        let fa = self.forward_int(a);
        let fb = self.forward_torus(b);
        let mut acc = FreqPoly::zero(self.n);
        acc.add_mul_assign(&fa, &fb);
        self.inverse_torus(&acc)
    }

    // ------------------------------------------------------------------
    // Batched transforms (point-major SoA lockstep path)
    // ------------------------------------------------------------------

    /// Stages one integer polynomial into lane `lane` of `batch`: twist
    /// into `tmp` with the per-lane kernel, then scatter into the
    /// point-major layout with the bit-reversal permutation fused in
    /// (so [`FftPlan::forward_batch_passes`] runs straight DIT stages).
    pub fn forward_int_stage_lane(
        &self,
        p: &IntPoly,
        lane: usize,
        batch: &mut FreqPolyBatch,
        tmp: &mut FreqPoly,
    ) {
        debug_assert_eq!(p.len(), self.n);
        self.stage_lane(p.coeffs(), lane, batch, tmp)
    }

    /// [`FftPlan::forward_int_stage_lane`] for a torus polynomial
    /// (coefficients reinterpreted as signed integers).
    pub fn forward_torus_stage_lane(
        &self,
        p: &TorusPoly,
        lane: usize,
        batch: &mut FreqPolyBatch,
        tmp: &mut FreqPoly,
    ) {
        debug_assert_eq!(p.len(), self.n);
        self.stage_lane(Torus32::slice_as_i32(p.coeffs()), lane, batch, tmp)
    }

    fn stage_lane(&self, c: &[i32], lane: usize, batch: &mut FreqPolyBatch, tmp: &mut FreqPoly) {
        let m = self.m;
        let lanes = batch.lanes();
        debug_assert!(lane < lanes);
        debug_assert_eq!(batch.points(), m);
        debug_assert_eq!(tmp.points(), m);
        simd::kernels().fwd_twist(c, &self.tw_re, &self.tw_im, &mut tmp.re, &mut tmp.im);
        for j in 0..m {
            let d = self.rev[j] as usize * lanes + lane;
            batch.re[d] = tmp.re[j];
            batch.im[d] = tmp.im[j];
        }
    }

    /// Runs the forward butterfly stages over every staged lane at once
    /// through the dispatched batch kernel.
    pub fn forward_batch_passes(&self, batch: &mut FreqPolyBatch) {
        debug_assert_eq!(batch.points(), self.m);
        let lanes = batch.lanes();
        let (re, im) = batch.live_mut();
        simd::kernels().fft_passes_batch(re, im, &self.fwd_re, &self.fwd_im, lanes);
    }

    /// Forward-transforms `polys` in lockstep: stages every polynomial
    /// and runs the shared butterfly passes. `batch` is reset to
    /// `polys.len()` lanes.
    pub fn forward_torus_batch(
        &self,
        polys: &[&TorusPoly],
        batch: &mut FreqPolyBatch,
        tmp: &mut FreqPoly,
    ) {
        batch.reset(polys.len());
        for (lane, p) in polys.iter().enumerate() {
            self.forward_torus_stage_lane(p, lane, batch, tmp);
        }
        self.forward_batch_passes(batch);
    }

    /// [`FftPlan::forward_torus_batch`] for integer polynomials — the
    /// decomposed-digit transforms of the batched external product.
    pub fn forward_int_batch(
        &self,
        polys: &[&IntPoly],
        batch: &mut FreqPolyBatch,
        tmp: &mut FreqPoly,
    ) {
        batch.reset(polys.len());
        for (lane, p) in polys.iter().enumerate() {
            self.forward_int_stage_lane(p, lane, batch, tmp);
        }
        self.forward_batch_passes(batch);
    }

    /// First half of the batched inverse transform: block bit-reversal
    /// (swapping whole lane groups) followed by the inverse butterfly
    /// stages over every lane. Lanes are then extracted one at a time
    /// with [`FftPlan::inverse_torus_lane_into`].
    pub fn inverse_batch_passes(&self, batch: &mut FreqPolyBatch) {
        debug_assert_eq!(batch.points(), self.m);
        let lanes = batch.lanes();
        let (re, im) = batch.live_mut();
        for i in 0..self.m {
            let j = self.rev[i] as usize;
            if i < j {
                for l in 0..lanes {
                    re.swap(i * lanes + l, j * lanes + l);
                    im.swap(i * lanes + l, j * lanes + l);
                }
            }
        }
        simd::kernels().fft_passes_batch(re, im, &self.inv_re, &self.inv_im, lanes);
    }

    /// Second half of the batched inverse transform: gathers lane
    /// `lane` out of the point-major layout into `tmp` and runs the
    /// untwist/unfold/round kernel into `out`. Call after
    /// [`FftPlan::inverse_batch_passes`].
    pub fn inverse_torus_lane_into(
        &self,
        batch: &FreqPolyBatch,
        lane: usize,
        tmp: &mut FreqPoly,
        out: &mut TorusPoly,
    ) {
        let m = self.m;
        let lanes = batch.lanes();
        debug_assert!(lane < lanes);
        debug_assert_eq!(tmp.points(), m);
        debug_assert_eq!(out.len(), self.n);
        for j in 0..m {
            let s = j * lanes + lane;
            tmp.re[j] = batch.re[s];
            tmp.im[j] = batch.im[s];
        }
        simd::kernels().inv_untwist_round(
            &mut tmp.re,
            &mut tmp.im,
            &self.tw_re,
            &self.tw_im,
            out.coeffs_mut(),
        );
    }

    /// Convenience inverse for contiguous outputs: the batched inverse
    /// passes plus one [`FftPlan::inverse_torus_lane_into`] per lane.
    /// `batch` holds garbage afterwards (the passes run in place).
    pub fn inverse_torus_batch(
        &self,
        batch: &mut FreqPolyBatch,
        tmp: &mut FreqPoly,
        outs: &mut [TorusPoly],
    ) {
        debug_assert_eq!(outs.len(), batch.lanes());
        self.inverse_batch_passes(batch);
        for (lane, out) in outs.iter_mut().enumerate() {
            self.inverse_torus_lane_into(batch, lane, tmp, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::naive_negacyclic_mul;
    use crate::reference::RefFftPlan;
    use crate::rng::SecureRng;
    use crate::trace::thread_buffer_allocs;

    #[test]
    fn fft_matches_naive_small() {
        let mut rng = SecureRng::seed_from_u64(10);
        for n in [2usize, 4, 8, 32, 128] {
            let plan = FftPlan::new(n);
            for _ in 0..5 {
                let a = IntPoly::from_coeffs(
                    (0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect(),
                );
                let b = TorusPoly::uniform(n, &mut rng);
                assert_eq!(plan.negacyclic_mul(&a, &b), naive_negacyclic_mul(&a, &b), "n={n}");
            }
        }
    }

    #[test]
    fn fft_matches_naive_production_size() {
        let mut rng = SecureRng::seed_from_u64(11);
        let n = 1024;
        let plan = FftPlan::new(n);
        let a =
            IntPoly::from_coeffs((0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect());
        let b = TorusPoly::uniform(n, &mut rng);
        assert_eq!(plan.negacyclic_mul(&a, &b), naive_negacyclic_mul(&a, &b));
    }

    #[test]
    fn folded_matches_full_size_reference() {
        // The retired full-size complex FFT is kept in `reference` purely
        // as this cross-check oracle: both paths must agree coefficient
        // for coefficient on every supported size.
        let mut rng = SecureRng::seed_from_u64(14);
        for n in [2usize, 4, 16, 64, 256, 1024] {
            let folded = FftPlan::new(n);
            let full = RefFftPlan::new(n);
            for _ in 0..3 {
                let a = IntPoly::from_coeffs(
                    (0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect(),
                );
                let b = TorusPoly::uniform(n, &mut rng);
                assert_eq!(folded.negacyclic_mul(&a, &b), full.negacyclic_mul(&a, &b), "n={n}");
            }
        }
    }

    #[test]
    fn folded_points_match_reference_spectrum() {
        // Folded slot k holds p(e^{iπ(1+4k)/N}); the full-size transform's
        // slot k' holds p(e^{iπ(1-2k')/N}). Angles match at k' = -2k mod N,
        // pinning down the exact evaluation points of the representation.
        let mut rng = SecureRng::seed_from_u64(15);
        let n = 64;
        let folded = FftPlan::new(n);
        let full = RefFftPlan::new(n);
        let p =
            IntPoly::from_coeffs((0..n).map(|_| (rng.uniform_u32() % 64) as i32 - 32).collect());
        let hc = folded.forward_int(&p);
        let fc = full.forward_int_values(&p);
        for k in 0..n / 2 {
            let kp = (n - 2 * k) % n;
            assert!(
                (hc.re_raw()[k] - fc[kp].re).abs() < 1e-6
                    && (hc.im_raw()[k] - fc[kp].im).abs() < 1e-6,
                "k={k}: folded ({}, {}) vs reference ({}, {})",
                hc.re_raw()[k],
                hc.im_raw()[k],
                fc[kp].re,
                fc[kp].im,
            );
        }
    }

    #[test]
    fn forward_inverse_round_trip_is_exact() {
        // Transform values are bounded by N·2^31 < 2^41, so the relative
        // f64 error leaves every coefficient within far less than half a
        // torus quantum of its original value: the round trip is exact.
        let mut rng = SecureRng::seed_from_u64(16);
        for n in [2usize, 8, 128, 1024] {
            let plan = FftPlan::new(n);
            let p = TorusPoly::uniform(n, &mut rng);
            assert_eq!(plan.inverse_torus(&plan.forward_torus(&p)), p, "n={n}");
        }
    }

    #[test]
    fn freq_poly_holds_half_the_points() {
        let plan = FftPlan::new(1024);
        assert_eq!(plan.points(), 512);
        let f = FreqPoly::zero(1024);
        assert_eq!(f.points(), 512);
        assert_eq!(f.poly_len(), 1024);
    }

    #[test]
    fn clone_is_counted_and_clone_from_is_free() {
        let f = FreqPoly::zero(64);
        let before = thread_buffer_allocs();
        let mut g = f.clone();
        assert_eq!(thread_buffer_allocs() - before, 1, "clone must be visible to accounting");
        let before = thread_buffer_allocs();
        g.clone_from(&f);
        assert_eq!(thread_buffer_allocs() - before, 0, "clone_from must reuse buffers");
    }

    #[test]
    fn inverse_torus_destructive_does_not_allocate() {
        let mut rng = SecureRng::seed_from_u64(17);
        let n = 128;
        let plan = FftPlan::new(n);
        let p = TorusPoly::uniform(n, &mut rng);
        let mut f = plan.forward_torus(&p);
        let mut out = TorusPoly::zero(n);
        let before = thread_buffer_allocs();
        plan.inverse_torus_destructive(&mut f, &mut out);
        assert_eq!(thread_buffer_allocs() - before, 0);
        assert_eq!(out, p);
    }

    #[test]
    fn mac_distributes() {
        // inverse(fa1*fb + fa2*fb) == naive(a1, b) + naive(a2, b)
        let mut rng = SecureRng::seed_from_u64(12);
        let n = 64;
        let plan = FftPlan::new(n);
        let a1 =
            IntPoly::from_coeffs((0..n).map(|_| (rng.uniform_u32() % 16) as i32 - 8).collect());
        let a2 =
            IntPoly::from_coeffs((0..n).map(|_| (rng.uniform_u32() % 16) as i32 - 8).collect());
        let b = TorusPoly::uniform(n, &mut rng);
        let fb = plan.forward_torus(&b);
        let mut acc = FreqPoly::zero(n);
        acc.add_mul_assign(&plan.forward_int(&a1), &fb);
        acc.add_mul_assign(&plan.forward_int(&a2), &fb);
        let got = plan.inverse_torus(&acc);
        let mut want = naive_negacyclic_mul(&a1, &b);
        want.add_assign(&naive_negacyclic_mul(&a2, &b));
        assert_eq!(got, want);
    }

    #[test]
    fn forward_int_into_reuses_buffer() {
        let mut rng = SecureRng::seed_from_u64(13);
        let n = 32;
        let plan = FftPlan::new(n);
        let a = IntPoly::binary(n, &mut rng);
        let mut out = FreqPoly::zero(n);
        plan.forward_int_into(&a, &mut out);
        assert_eq!(out, plan.forward_int(&a));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FftPlan::new(48);
    }

    #[test]
    fn batch_round_trip_is_exact_for_every_width() {
        let mut rng = SecureRng::seed_from_u64(18);
        for n in [8usize, 64, 1024] {
            let plan = FftPlan::new(n);
            let mut batch = FreqPolyBatch::new(n, 8);
            let mut tmp = FreqPoly::zero(n);
            for lanes in 1..=8usize {
                let polys: Vec<TorusPoly> =
                    (0..lanes).map(|_| TorusPoly::uniform(n, &mut rng)).collect();
                let refs: Vec<&TorusPoly> = polys.iter().collect();
                plan.forward_torus_batch(&refs, &mut batch, &mut tmp);
                let mut outs = vec![TorusPoly::zero(n); lanes];
                plan.inverse_torus_batch(&mut batch, &mut tmp, &mut outs);
                assert_eq!(outs, polys, "n={n} lanes={lanes}");
            }
        }
    }

    #[test]
    fn batched_broadcast_mac_matches_naive_products() {
        // Lockstep external-product shape: per-lane digit polynomials
        // multiplied against one shared spectrum. Every lane must land
        // on the exact schoolbook product after rounding.
        let mut rng = SecureRng::seed_from_u64(19);
        let n = 64;
        let lanes = 5;
        let plan = FftPlan::new(n);
        let b = TorusPoly::uniform(n, &mut rng);
        let fb = plan.forward_torus(&b);
        let digits: Vec<IntPoly> = (0..lanes)
            .map(|_| {
                IntPoly::from_coeffs(
                    (0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect(),
                )
            })
            .collect();
        let refs: Vec<&IntPoly> = digits.iter().collect();
        let mut dig = FreqPolyBatch::new(n, lanes);
        let mut acc = FreqPolyBatch::new(n, lanes);
        let mut tmp = FreqPoly::zero(n);
        plan.forward_int_batch(&refs, &mut dig, &mut tmp);
        acc.reset(lanes);
        acc.add_mul_bcast(&dig, &fb);
        let mut outs = vec![TorusPoly::zero(n); lanes];
        plan.inverse_torus_batch(&mut acc, &mut tmp, &mut outs);
        for (l, out) in outs.iter().enumerate() {
            assert_eq!(*out, naive_negacyclic_mul(&digits[l], &b), "lane {l}");
        }
    }

    #[test]
    fn batch_reset_grows_and_zeroes() {
        let n = 16;
        let mut batch = FreqPolyBatch::new(n, 2);
        assert_eq!(batch.points(), 8);
        batch.reset(6);
        assert_eq!(batch.lanes(), 6);
        assert!(batch.re.iter().all(|&x| x == 0.0));
    }
}
