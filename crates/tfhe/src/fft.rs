//! Fast negacyclic polynomial multiplication via the twisted FFT.
//!
//! TFHE's hot loop — the external products inside blind rotation —
//! multiplies small-integer polynomials by torus polynomials in
//! `T[X]/(X^N + 1)`. The classic trick: twisting coefficient `j` by
//! `ζ^j` with `ζ = e^{iπ/N}` turns negacyclic convolution into cyclic
//! convolution (since `ζ^N = -1`), which a size-`N` complex FFT computes in
//! `O(N log N)`.
//!
//! Products of decomposed digits (`|d| ≤ Bg/2 = 64`) with torus values
//! (`< 2^31`) accumulated over `N = 1024` taps stay below `2^47`,
//! comfortably inside an `f64` mantissa; the sub-unit rounding error folds
//! into the scheme's noise budget exactly as in the reference TFHE library.

use crate::poly::{IntPoly, TorusPoly};
use crate::torus::Torus32;
use crate::trace::note_buffer_alloc;

/// A complex number; minimal on purpose (only what the FFT needs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    #[inline]
    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    #[inline]
    fn add(self, other: Complex) -> Complex {
        Complex { re: self.re + other.re, im: self.im + other.im }
    }

    #[inline]
    fn sub(self, other: Complex) -> Complex {
        Complex { re: self.re - other.re, im: self.im - other.im }
    }

    #[inline]
    fn conj(self) -> Complex {
        Complex { re: self.re, im: -self.im }
    }
}

/// A polynomial in the twisted frequency domain ("Lagrange representation"
/// in TFHE-library terminology). Pointwise products here correspond to
/// negacyclic products in the coefficient domain.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqPoly {
    values: Vec<Complex>,
}

impl FreqPoly {
    /// The zero polynomial for transform size `n`.
    pub fn zero(n: usize) -> Self {
        note_buffer_alloc();
        FreqPoly { values: vec![Complex::default(); n] }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw frequency values (crate-internal, for serialization).
    pub(crate) fn values_raw(&self) -> &[Complex] {
        &self.values
    }

    /// Rebuilds from raw values (crate-internal, for deserialization).
    pub(crate) fn from_values(values: Vec<Complex>) -> Self {
        note_buffer_alloc();
        FreqPoly { values }
    }

    /// Resets to zero without reallocating.
    pub fn clear(&mut self) {
        self.values.fill(Complex::default());
    }

    /// `self += a * b` pointwise — the multiply-accumulate at the heart of
    /// the external product.
    pub fn add_mul_assign(&mut self, a: &FreqPoly, b: &FreqPoly) {
        debug_assert_eq!(self.len(), a.len());
        debug_assert_eq!(self.len(), b.len());
        for ((s, &x), &y) in self.values.iter_mut().zip(&a.values).zip(&b.values) {
            *s = s.add(x.mul(y));
        }
    }
}

/// Precomputed tables for transforms of one size `N`.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `roots[k] = e^{-2πik/N}` for `k < N/2` (forward twiddles).
    roots: Vec<Complex>,
    /// `twist[j] = e^{iπj/N}`.
    twist: Vec<Complex>,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for polynomials of degree bound `n` (a power of two,
    /// at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "FFT size must be a power of two >= 2");
        let roots = (0..n / 2)
            .map(|k| {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Complex { re: theta.cos(), im: theta.sin() }
            })
            .collect();
        let twist = (0..n)
            .map(|j| {
                let theta = std::f64::consts::PI * j as f64 / n as f64;
                Complex { re: theta.cos(), im: theta.sin() }
            })
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits)).collect();
        FftPlan { n, roots, twist, rev }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is empty (never true; present for API symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place iterative radix-2 DIT FFT. `inverse` conjugates the
    /// twiddles (scaling is applied by the caller).
    fn fft_in_place(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let step = n / len;
            let half = len / 2;
            for start in (0..n).step_by(len) {
                for j in 0..half {
                    let mut w = self.roots[j * step];
                    if inverse {
                        w = w.conj();
                    }
                    let u = buf[start + j];
                    let v = buf[start + j + half].mul(w);
                    buf[start + j] = u.add(v);
                    buf[start + j + half] = u.sub(v);
                }
            }
            len <<= 1;
        }
    }

    /// Forward transform of a torus polynomial (coefficients lifted to
    /// signed integers).
    pub fn forward_torus(&self, p: &TorusPoly) -> FreqPoly {
        debug_assert_eq!(p.len(), self.n);
        note_buffer_alloc();
        let mut buf: Vec<Complex> = p
            .coeffs()
            .iter()
            .zip(&self.twist)
            .map(|(&c, &t)| {
                let x = c.as_i32() as f64;
                Complex { re: x * t.re, im: x * t.im }
            })
            .collect();
        self.fft_in_place(&mut buf, false);
        FreqPoly { values: buf }
    }

    /// Forward transform of an integer polynomial.
    pub fn forward_int(&self, p: &IntPoly) -> FreqPoly {
        debug_assert_eq!(p.len(), self.n);
        note_buffer_alloc();
        let mut buf: Vec<Complex> = p
            .coeffs()
            .iter()
            .zip(&self.twist)
            .map(|(&c, &t)| {
                let x = c as f64;
                Complex { re: x * t.re, im: x * t.im }
            })
            .collect();
        self.fft_in_place(&mut buf, false);
        FreqPoly { values: buf }
    }

    /// Like [`FftPlan::forward_int`] but reuses `out`'s allocation.
    pub fn forward_int_into(&self, p: &IntPoly, out: &mut FreqPoly) {
        debug_assert_eq!(p.len(), self.n);
        out.values.clear();
        out.values.extend(p.coeffs().iter().zip(&self.twist).map(|(&c, &t)| {
            let x = c as f64;
            Complex { re: x * t.re, im: x * t.im }
        }));
        self.fft_in_place(&mut out.values, false);
    }

    /// Inverse transform, rounding back to torus coefficients.
    pub fn inverse_torus(&self, f: &FreqPoly) -> TorusPoly {
        let mut p = TorusPoly::zero(self.n);
        self.inverse_torus_into(f, &mut p);
        p
    }

    /// Like [`FftPlan::inverse_torus`] but writes into `out`.
    pub fn inverse_torus_into(&self, f: &FreqPoly, out: &mut TorusPoly) {
        debug_assert_eq!(f.len(), self.n);
        let mut buf = f.clone();
        self.inverse_torus_destructive(&mut buf, out);
    }

    /// Like [`FftPlan::inverse_torus_into`] but consumes `f`'s contents
    /// (the inverse transform runs in `f`'s own buffer), making the call
    /// allocation-free. `f` holds garbage afterwards.
    pub fn inverse_torus_destructive(&self, f: &mut FreqPoly, out: &mut TorusPoly) {
        debug_assert_eq!(f.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        self.fft_in_place(&mut f.values, true);
        let scale = 1.0 / self.n as f64;
        for ((o, &c), &t) in out.coeffs_mut().iter_mut().zip(&f.values).zip(&self.twist) {
            // Untwist: multiply by conj(twist), keep the real part.
            let re = (c.re * t.re + c.im * t.im) * scale;
            // Round to the nearest torus element; arithmetic is exact mod
            // 2^32 because |re| < 2^52.
            *o = Torus32((re.round_ties_even() as i64) as u32);
        }
    }

    /// Convenience: full negacyclic product `a * b` through the frequency
    /// domain. The hot paths use the split transforms directly to batch
    /// multiply-accumulates.
    pub fn negacyclic_mul(&self, a: &IntPoly, b: &TorusPoly) -> TorusPoly {
        let fa = self.forward_int(a);
        let fb = self.forward_torus(b);
        let mut acc = FreqPoly::zero(self.n);
        acc.add_mul_assign(&fa, &fb);
        self.inverse_torus(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::naive_negacyclic_mul;
    use crate::rng::SecureRng;

    #[test]
    fn fft_matches_naive_small() {
        let mut rng = SecureRng::seed_from_u64(10);
        for n in [2usize, 4, 8, 32, 128] {
            let plan = FftPlan::new(n);
            for _ in 0..5 {
                let a = IntPoly::from_coeffs(
                    (0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect(),
                );
                let b = TorusPoly::uniform(n, &mut rng);
                assert_eq!(plan.negacyclic_mul(&a, &b), naive_negacyclic_mul(&a, &b), "n={n}");
            }
        }
    }

    #[test]
    fn fft_matches_naive_production_size() {
        let mut rng = SecureRng::seed_from_u64(11);
        let n = 1024;
        let plan = FftPlan::new(n);
        let a =
            IntPoly::from_coeffs((0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect());
        let b = TorusPoly::uniform(n, &mut rng);
        assert_eq!(plan.negacyclic_mul(&a, &b), naive_negacyclic_mul(&a, &b));
    }

    #[test]
    fn mac_distributes() {
        // inverse(fa1*fb + fa2*fb) == naive(a1, b) + naive(a2, b)
        let mut rng = SecureRng::seed_from_u64(12);
        let n = 64;
        let plan = FftPlan::new(n);
        let a1 =
            IntPoly::from_coeffs((0..n).map(|_| (rng.uniform_u32() % 16) as i32 - 8).collect());
        let a2 =
            IntPoly::from_coeffs((0..n).map(|_| (rng.uniform_u32() % 16) as i32 - 8).collect());
        let b = TorusPoly::uniform(n, &mut rng);
        let fb = plan.forward_torus(&b);
        let mut acc = FreqPoly::zero(n);
        acc.add_mul_assign(&plan.forward_int(&a1), &fb);
        acc.add_mul_assign(&plan.forward_int(&a2), &fb);
        let got = plan.inverse_torus(&acc);
        let mut want = naive_negacyclic_mul(&a1, &b);
        want.add_assign(&naive_negacyclic_mul(&a2, &b));
        assert_eq!(got, want);
    }

    #[test]
    fn forward_int_into_reuses_buffer() {
        let mut rng = SecureRng::seed_from_u64(13);
        let n = 32;
        let plan = FftPlan::new(n);
        let a = IntPoly::binary(n, &mut rng);
        let mut out = FreqPoly::zero(n);
        plan.forward_int_into(&a, &mut out);
        assert_eq!(out, plan.forward_int(&a));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FftPlan::new(48);
    }
}
