//! LWE (Learning With Errors) samples over the torus — the ciphertext type
//! every PyTFHE gate consumes and produces.

use crate::align::AlignedBuf;
use crate::rng::SecureRng;
use crate::torus::Torus32;
use crate::trace::note_buffer_alloc;

/// An LWE secret key: a binary vector of length `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweKey {
    bits: Vec<i32>,
}

impl LweKey {
    /// Samples a uniform binary key of dimension `n`.
    pub fn generate(n: usize, rng: &mut SecureRng) -> Self {
        LweKey { bits: (0..n).map(|_| i32::from(rng.bit())).collect() }
    }

    /// Builds a key from explicit bits (used by sample extraction, where
    /// the extracted key is a reinterpretation of the TLWE key).
    pub fn from_bits(bits: Vec<i32>) -> Self {
        LweKey { bits }
    }

    /// Key dimension `n`.
    pub fn dim(&self) -> usize {
        self.bits.len()
    }

    /// The key bits.
    pub fn bits(&self) -> &[i32] {
        &self.bits
    }

    /// Encrypts `message` with fresh Gaussian noise of deviation `stdev`.
    pub fn encrypt(&self, message: Torus32, stdev: f64, rng: &mut SecureRng) -> LweCiphertext {
        let a: Vec<Torus32> = (0..self.dim()).map(|_| Torus32::uniform(rng)).collect();
        let mut b = message.add_gaussian(stdev, rng);
        for (ai, &si) in a.iter().zip(&self.bits) {
            if si != 0 {
                b += *ai;
            }
        }
        LweCiphertext { a, b }
    }

    /// The *phase* `b - <a, s>`: message plus noise.
    pub fn phase(&self, ct: &LweCiphertext) -> Torus32 {
        debug_assert_eq!(ct.dim(), self.dim());
        let mut phase = ct.b;
        for (ai, &si) in ct.a.iter().zip(&self.bits) {
            if si != 0 {
                phase -= *ai;
            }
        }
        phase
    }
}

/// An LWE ciphertext `(a, b)` with `b = <a, s> + m + e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweCiphertext {
    /// The mask vector.
    pub(crate) a: Vec<Torus32>,
    /// The body.
    pub(crate) b: Torus32,
}

impl LweCiphertext {
    /// Builds a ciphertext from its mask and body (deserialization).
    pub fn from_parts(a: Vec<Torus32>, b: Torus32) -> Self {
        note_buffer_alloc();
        LweCiphertext { a, b }
    }

    /// The "trivial" (noiseless, keyless) encryption of `message`:
    /// `a = 0, b = message`. Decryptable under any key; used for the
    /// plaintext offsets of gate evaluation and for constants.
    pub fn trivial(message: Torus32, dim: usize) -> Self {
        note_buffer_alloc();
        LweCiphertext { a: vec![Torus32::ZERO; dim], b: message }
    }

    /// Overwrites `self` with the trivial encryption of `message` at
    /// dimension `dim`, reusing the mask allocation when it already has
    /// the right capacity.
    pub fn assign_trivial(&mut self, message: Torus32, dim: usize) {
        self.a.resize(dim, Torus32::ZERO);
        self.a.fill(Torus32::ZERO);
        self.b = message;
    }

    /// Overwrites `self` with a copy of `other`, reusing the mask
    /// allocation (unlike `clone`, which always allocates).
    pub fn copy_from(&mut self, other: &LweCiphertext) {
        self.a.clone_from(&other.a);
        self.b = other.b;
    }

    /// Ciphertext dimension `n`.
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// The mask coefficients.
    pub fn mask(&self) -> &[Torus32] {
        &self.a
    }

    /// Mutable mask coefficients.
    pub fn mask_mut(&mut self) -> &mut [Torus32] {
        &mut self.a
    }

    /// The body coefficient.
    pub fn body(&self) -> Torus32 {
        self.b
    }

    /// Homomorphic addition: `self += other` (noise adds too).
    pub fn add_assign(&mut self, other: &LweCiphertext) {
        debug_assert_eq!(self.dim(), other.dim());
        for (x, y) in self.a.iter_mut().zip(&other.a) {
            *x += *y;
        }
        self.b += other.b;
    }

    /// Homomorphic subtraction: `self -= other`. The mask loop is the
    /// inner loop of key switching (`n` subtractions per digit), so it
    /// runs through the dispatched [`crate::simd`] kernel.
    pub fn sub_assign(&mut self, other: &LweCiphertext) {
        debug_assert_eq!(self.dim(), other.dim());
        crate::simd::kernels().sub_assign(&mut self.a, &other.a);
        self.b -= other.b;
    }

    /// Homomorphic negation.
    pub fn negate(&mut self) {
        for x in &mut self.a {
            *x = -*x;
        }
        self.b = -self.b;
    }

    /// Homomorphic scaling by a small integer.
    pub fn scale(&mut self, factor: i32) {
        for x in &mut self.a {
            *x = factor * *x;
        }
        self.b = factor * self.b;
    }
}

/// Struct-of-arrays storage for a batch of same-dimension LWE samples:
/// all masks in one contiguous buffer, all bodies in another. Batched
/// kernels ([`crate::ServerKey::batch_bootstrap`]) stage their linear
/// combinations here so the bootstrap loop streams over dense slots
/// instead of pointer-chasing individual ciphertexts.
#[derive(Debug)]
pub struct LweSoa {
    dim: usize,
    /// 64-byte-aligned so full-width vector loads over slot masks never
    /// split a cache line (see [`crate::align::SIMD_ALIGN`]).
    masks: AlignedBuf<Torus32>,
    bodies: Vec<Torus32>,
}

impl LweSoa {
    /// An empty batch of dimension-`dim` slots.
    pub fn new(dim: usize) -> Self {
        LweSoa { dim, masks: AlignedBuf::new(), bodies: Vec::new() }
    }

    /// Slot dimension `n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Whether the batch holds no slots.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }

    /// Resizes to `slots` zeroed slots, reusing capacity from previous
    /// batches (allocation-free once warmed up to the largest batch size).
    pub fn reset(&mut self, slots: usize) {
        self.masks.resize_zeroed(slots * self.dim);
        self.masks.fill_zero();
        debug_assert!(self.masks.is_aligned());
        self.bodies.clear();
        self.bodies.resize(slots, Torus32::ZERO);
    }

    /// Sets slot `slot`'s body (the plaintext gate offset).
    pub fn set_body(&mut self, slot: usize, body: Torus32) {
        self.bodies[slot] = body;
    }

    /// Accumulates `coeff * ct` into slot `slot`. The mask loop runs
    /// through the dispatched [`crate::simd`] `axpy` kernel (it is the
    /// staging pass of every batched bootstrap).
    pub fn axpy(&mut self, slot: usize, coeff: i32, ct: &LweCiphertext) {
        debug_assert_eq!(ct.dim(), self.dim);
        let mask = &mut self.masks[slot * self.dim..(slot + 1) * self.dim];
        crate::simd::kernels().axpy(mask, coeff, ct.mask());
        self.bodies[slot] += coeff * ct.body();
    }

    /// Slot `slot` as a `(mask, body)` view.
    pub fn slot(&self, slot: usize) -> (&[Torus32], Torus32) {
        (&self.masks[slot * self.dim..(slot + 1) * self.dim], self.bodies[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STDEV: f64 = 1e-7;

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut rng = SecureRng::seed_from_u64(20);
        let key = LweKey::generate(300, &mut rng);
        for frac in [-3, -1, 0, 1, 3] {
            let m = Torus32::from_fraction(frac, 3);
            let ct = key.encrypt(m, STDEV, &mut rng);
            let phase = key.phase(&ct);
            assert!((phase - m).to_f64().abs() < 1e-4, "frac={frac}");
        }
    }

    #[test]
    fn trivial_has_exact_phase() {
        let mut rng = SecureRng::seed_from_u64(21);
        let key = LweKey::generate(100, &mut rng);
        let m = Torus32::from_fraction(1, 3);
        let ct = LweCiphertext::trivial(m, key.dim());
        assert_eq!(key.phase(&ct), m);
    }

    #[test]
    fn homomorphic_addition() {
        let mut rng = SecureRng::seed_from_u64(22);
        let key = LweKey::generate(200, &mut rng);
        let m1 = Torus32::from_fraction(1, 3);
        let m2 = Torus32::from_fraction(1, 3);
        let c1 = key.encrypt(m1, STDEV, &mut rng);
        let c2 = key.encrypt(m2, STDEV, &mut rng);
        let mut sum = c1.clone();
        sum.add_assign(&c2);
        let want = m1 + m2;
        assert!((key.phase(&sum) - want).to_f64().abs() < 1e-4);
        sum.sub_assign(&c2);
        assert!((key.phase(&sum) - m1).to_f64().abs() < 1e-4);
    }

    #[test]
    fn homomorphic_negate_and_scale() {
        let mut rng = SecureRng::seed_from_u64(23);
        let key = LweKey::generate(200, &mut rng);
        let m = Torus32::from_fraction(1, 4);
        let mut ct = key.encrypt(m, STDEV, &mut rng);
        ct.negate();
        assert!((key.phase(&ct) + m).to_f64().abs() < 1e-4);
        ct.scale(2);
        assert!((key.phase(&ct) + m + m).to_f64().abs() < 1e-4);
    }

    #[test]
    fn ciphertexts_hide_under_different_randomness() {
        let mut rng = SecureRng::seed_from_u64(24);
        let key = LweKey::generate(50, &mut rng);
        let m = Torus32::from_fraction(1, 3);
        let c1 = key.encrypt(m, STDEV, &mut rng);
        let c2 = key.encrypt(m, STDEV, &mut rng);
        assert_ne!(c1, c2, "same message must encrypt to different ciphertexts");
    }
}
