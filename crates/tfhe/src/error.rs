use pytfhe_wire::WireError;
use std::fmt;

/// Errors produced by the TFHE scheme implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TfheError {
    /// Two ciphertexts from incompatible parameter sets were combined.
    ParamsMismatch,
    /// A serialized key or ciphertext was malformed.
    Corrupt {
        /// What was being deserialized.
        what: &'static str,
    },
    /// A serialized object declared a parameter set this build does not
    /// know.
    UnknownParams,
    /// The wire envelope around a persisted artifact failed validation
    /// (bad magic, checksum mismatch, version skew, torn framing).
    Wire(WireError),
    /// A parameter set's analytical per-gate failure probability exceeds
    /// the caller's noise-budget guardrail.
    NoiseBudgetExceeded {
        /// Failure probability expressed in atto-units (1e-18), kept
        /// integral so the error stays `Eq`/hashable; realistic gate
        /// failure probabilities (1e-12 and up) stay nonzero here.
        probability_atto: u64,
        /// The guardrail it exceeded, same units.
        threshold_atto: u64,
    },
}

impl fmt::Display for TfheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfheError::ParamsMismatch => {
                write!(f, "ciphertexts use incompatible parameter sets")
            }
            TfheError::Corrupt { what } => write!(f, "malformed serialized {what}"),
            TfheError::UnknownParams => write!(f, "unknown parameter set identifier"),
            TfheError::Wire(e) => write!(f, "wire envelope rejected: {e}"),
            TfheError::NoiseBudgetExceeded { probability_atto, threshold_atto } => write!(
                f,
                "per-gate failure probability {:.3e} exceeds the noise-budget guardrail {:.3e}",
                *probability_atto as f64 * 1e-18,
                *threshold_atto as f64 * 1e-18,
            ),
        }
    }
}

impl std::error::Error for TfheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TfheError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for TfheError {
    fn from(e: WireError) -> Self {
        TfheError::Wire(e)
    }
}
