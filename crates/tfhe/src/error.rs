use std::fmt;

/// Errors produced by the TFHE scheme implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TfheError {
    /// Two ciphertexts from incompatible parameter sets were combined.
    ParamsMismatch,
    /// A serialized key or ciphertext was malformed.
    Corrupt {
        /// What was being deserialized.
        what: &'static str,
    },
    /// A serialized object declared a parameter set this build does not
    /// know.
    UnknownParams,
}

impl fmt::Display for TfheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfheError::ParamsMismatch => {
                write!(f, "ciphertexts use incompatible parameter sets")
            }
            TfheError::Corrupt { what } => write!(f, "malformed serialized {what}"),
            TfheError::UnknownParams => write!(f, "unknown parameter set identifier"),
        }
    }
}

impl std::error::Error for TfheError {}
