//! The retired full-size complex negacyclic FFT, kept **only** as a
//! cross-check oracle for tests and as the "before" side of the
//! folded-vs-reference benchmarks (`repro fft`, `benches/fft.rs`,
//! `benches/gate_bootstrap.rs`). Production code paths all use the folded
//! half-complex transform in [`crate::fft`]; nothing here is reachable
//! from gate evaluation.
//!
//! This is the pre-fold implementation verbatim: twist all `N` real
//! coefficients by `e^{iπj/N}`, run a full `N`-point complex FFT over
//! array-of-structs [`Complex`] values, and branch on direction inside
//! the butterfly — i.e. 2× the transform work, 2× the key bytes, and a
//! MAC the autovectorizer cannot unroll cleanly. Keeping it allows any
//! session to re-measure the win of the half-complex rework on its own
//! hardware.

use crate::keys::ClientKey;
use crate::lwe::LweCiphertext;
use crate::params::Params;
use crate::poly::{IntPoly, TorusPoly};
use crate::rng::SecureRng;
use crate::tgsw::{Gadget, TgswCiphertext};
use crate::tlwe::TlweCiphertext;
use crate::torus::Torus32;

/// A complex number; minimal on purpose (only what the reference FFT
/// needs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    #[inline]
    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    #[inline]
    fn add(self, other: Complex) -> Complex {
        Complex { re: self.re + other.re, im: self.im + other.im }
    }

    #[inline]
    fn sub(self, other: Complex) -> Complex {
        Complex { re: self.re - other.re, im: self.im - other.im }
    }

    #[inline]
    fn conj(self) -> Complex {
        Complex { re: self.re, im: -self.im }
    }
}

/// A polynomial in the full-size twisted frequency domain: `N`
/// array-of-structs complex values (the pre-fold [`crate::fft::FreqPoly`]
/// layout).
#[derive(Debug, Clone, PartialEq)]
pub struct RefFreqPoly {
    values: Vec<Complex>,
}

impl RefFreqPoly {
    /// The zero polynomial for transform size `n`.
    pub fn zero(n: usize) -> Self {
        RefFreqPoly { values: vec![Complex::default(); n] }
    }

    /// Transform size (`N`, not `N/2` — this is the unfolded layout).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `self += a * b` pointwise over array-of-structs values.
    pub fn add_mul_assign(&mut self, a: &RefFreqPoly, b: &RefFreqPoly) {
        debug_assert_eq!(self.len(), a.len());
        debug_assert_eq!(self.len(), b.len());
        for ((s, &x), &y) in self.values.iter_mut().zip(&a.values).zip(&b.values) {
            *s = s.add(x.mul(y));
        }
    }
}

/// Precomputed tables for full-size transforms of one size `N`.
#[derive(Debug, Clone)]
pub struct RefFftPlan {
    n: usize,
    /// `roots[k] = e^{-2πik/N}` for `k < N/2` (forward twiddles).
    roots: Vec<Complex>,
    /// `twist[j] = e^{iπj/N}`.
    twist: Vec<Complex>,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
}

impl RefFftPlan {
    /// Builds a plan for polynomials of degree bound `n` (a power of two,
    /// at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is smaller than 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "FFT size must be a power of two >= 2");
        let roots = (0..n / 2)
            .map(|k| {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Complex { re: theta.cos(), im: theta.sin() }
            })
            .collect();
        let twist = (0..n)
            .map(|j| {
                let theta = std::f64::consts::PI * j as f64 / n as f64;
                Complex { re: theta.cos(), im: theta.sin() }
            })
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits)).collect();
        RefFftPlan { n, roots, twist, rev }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is empty (never true; present for API symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place iterative radix-2 DIT FFT. `inverse` conjugates the
    /// twiddles per butterfly — exactly the direction branch the folded
    /// plan eliminated.
    fn fft_in_place(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let step = n / len;
            let half = len / 2;
            for start in (0..n).step_by(len) {
                for j in 0..half {
                    let mut w = self.roots[j * step];
                    if inverse {
                        w = w.conj();
                    }
                    let u = buf[start + j];
                    let v = buf[start + j + half].mul(w);
                    buf[start + j] = u.add(v);
                    buf[start + j + half] = u.sub(v);
                }
            }
            len <<= 1;
        }
    }

    /// Forward transform of a torus polynomial (coefficients lifted to
    /// signed integers).
    pub fn forward_torus(&self, p: &TorusPoly) -> RefFreqPoly {
        debug_assert_eq!(p.len(), self.n);
        let mut buf: Vec<Complex> = p
            .coeffs()
            .iter()
            .zip(&self.twist)
            .map(|(&c, &t)| {
                let x = c.as_i32() as f64;
                Complex { re: x * t.re, im: x * t.im }
            })
            .collect();
        self.fft_in_place(&mut buf, false);
        RefFreqPoly { values: buf }
    }

    /// Forward transform of an integer polynomial.
    pub fn forward_int(&self, p: &IntPoly) -> RefFreqPoly {
        debug_assert_eq!(p.len(), self.n);
        let mut buf: Vec<Complex> = p
            .coeffs()
            .iter()
            .zip(&self.twist)
            .map(|(&c, &t)| {
                let x = c as f64;
                Complex { re: x * t.re, im: x * t.im }
            })
            .collect();
        self.fft_in_place(&mut buf, false);
        RefFreqPoly { values: buf }
    }

    /// Forward transform of an integer polynomial, exposing the raw
    /// spectrum (used by tests pinning the folded representation's
    /// evaluation points to this one's).
    pub fn forward_int_values(&self, p: &IntPoly) -> Vec<Complex> {
        self.forward_int(p).values
    }

    /// Inverse transform, rounding back to torus coefficients.
    pub fn inverse_torus(&self, f: &RefFreqPoly) -> TorusPoly {
        debug_assert_eq!(f.len(), self.n);
        let mut buf = f.values.clone();
        self.fft_in_place(&mut buf, true);
        let scale = 1.0 / self.n as f64;
        let mut out = TorusPoly::zero(self.n);
        for ((o, &c), &t) in out.coeffs_mut().iter_mut().zip(&buf).zip(&self.twist) {
            // Untwist: multiply by conj(twist), keep the real part.
            let re = (c.re * t.re + c.im * t.im) * scale;
            *o = Torus32((re.round_ties_even() as i64) as u32);
        }
        out
    }

    /// Convenience: full negacyclic product `a * b` through the full-size
    /// frequency domain.
    pub fn negacyclic_mul(&self, a: &IntPoly, b: &TorusPoly) -> TorusPoly {
        let fa = self.forward_int(a);
        let fb = self.forward_torus(b);
        let mut acc = RefFreqPoly::zero(self.n);
        acc.add_mul_assign(&fa, &fb);
        self.inverse_torus(&acc)
    }
}

/// A bootstrapping key stored in the *full-size* frequency domain, with a
/// matching full-size blind rotation — the "before" side of the
/// half-complex benchmarks. Functionally interchangeable with the
/// production [`crate::bootstrap::BootstrappingKey`] (same algebra, same
/// correctness), just twice the transform work and key bytes.
#[derive(Debug, Clone)]
pub struct RefBootstrappingKey {
    /// `tgsw[bit][row][col]` — full-size frequency rows per key bit.
    tgsw: Vec<Vec<Vec<RefFreqPoly>>>,
    plan: RefFftPlan,
    params: Params,
    gadget: Gadget,
}

impl RefBootstrappingKey {
    /// Generates a reference-FFT bootstrapping key for `client`'s secret
    /// material (test/bench use only — production keys come from
    /// [`ClientKey::server_key`]).
    pub fn from_client(client: &ClientKey, rng: &mut SecureRng) -> Self {
        let params = *client.params();
        let plan = RefFftPlan::new(params.poly_size);
        let gadget = Gadget { levels: params.decomp_levels, base_log: params.decomp_base_log };
        let tgsw = client
            .lwe_key()
            .bits()
            .iter()
            .map(|&bit| {
                let ct = TgswCiphertext::encrypt(
                    client.tlwe_key(),
                    bit,
                    gadget,
                    params.glwe_noise_stdev,
                    rng,
                );
                ct.rows()
                    .iter()
                    .map(|row| row.polys().map(|p| plan.forward_torus(p)).collect())
                    .collect()
            })
            .collect();
        RefBootstrappingKey { tgsw, plan, params, gadget }
    }

    /// The parameter set this key was generated for.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// External product `rows ⊡ tlwe` through the full-size domain
    /// (allocating freely, as the pre-rework public path did).
    fn external_product(&self, rows: &[Vec<RefFreqPoly>], tlwe: &TlweCiphertext) -> TlweCiphertext {
        let n = tlwe.poly_size();
        let k = tlwe.k();
        let l = self.gadget.levels;
        debug_assert_eq!(rows.len(), (k + 1) * l);
        let mut acc: Vec<RefFreqPoly> = (0..=k).map(|_| RefFreqPoly::zero(n)).collect();
        for (u, poly) in tlwe.polys().enumerate() {
            for (level, digit) in self.gadget.decompose_poly(poly).iter().enumerate() {
                let digit_freq = self.plan.forward_int(digit);
                let row = &rows[u * l + level];
                for (col, a) in acc.iter_mut().enumerate() {
                    a.add_mul_assign(&digit_freq, &row[col]);
                }
            }
        }
        let mut out = TlweCiphertext::trivial(self.plan.inverse_torus(&acc[k]), k);
        for (u, a) in acc[..k].iter().enumerate() {
            out.a[u] = self.plan.inverse_torus(a);
        }
        out
    }

    /// Gate bootstrapping without the final key switch, via full-size
    /// blind rotation — mirrors
    /// [`crate::bootstrap::BootstrappingKey::bootstrap_raw`].
    pub fn bootstrap_raw(&self, ct: &LweCiphertext, mu: Torus32) -> LweCiphertext {
        let n = self.params.poly_size;
        let n2 = 2 * n;
        let tv = TorusPoly::fill(mu, n);
        let barb = ct.body().mod_switch(n);
        let mut acc = TlweCiphertext::trivial(tv.mul_by_xk((n2 - barb) % n2), self.params.glwe_dim);
        for (a_i, bk_i) in ct.mask().iter().zip(&self.tgsw) {
            let bara = a_i.mod_switch(n);
            if bara == 0 {
                continue;
            }
            // acc <- acc + bk_i ⊡ (X^bara·acc - acc), the CMUX.
            let mut diff = acc.rotate(bara);
            diff.sub_assign(&acc);
            acc.add_assign(&self.external_product(bk_i, &diff));
        }
        acc.extract_lwe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::naive_negacyclic_mul;

    #[test]
    fn reference_fft_matches_naive() {
        let mut rng = SecureRng::seed_from_u64(20);
        for n in [4usize, 32, 128] {
            let plan = RefFftPlan::new(n);
            let a = IntPoly::from_coeffs(
                (0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect(),
            );
            let b = TorusPoly::uniform(n, &mut rng);
            assert_eq!(plan.negacyclic_mul(&a, &b), naive_negacyclic_mul(&a, &b), "n={n}");
        }
    }

    #[test]
    fn reference_bootstrap_recovers_sign() {
        let mut rng = SecureRng::seed_from_u64(21);
        let params = Params::testing();
        let client = ClientKey::generate(params, &mut rng);
        let refbk = RefBootstrappingKey::from_client(&client, &mut rng);
        let mu = Torus32::from_fraction(1, 3);
        let extracted = client.tlwe_key().extracted_lwe_key();
        for (message, want_sign) in
            [(Torus32::from_fraction(1, 3), 1.0), (Torus32::from_fraction(-1, 3), -1.0)]
        {
            let ct = client.lwe_key().encrypt(message, params.lwe_noise_stdev, &mut rng);
            let boot = refbk.bootstrap_raw(&ct, mu);
            let phase = extracted.phase(&boot).to_f64();
            assert!(
                (phase - want_sign * 0.125).abs() < 0.03,
                "message {message}, phase {phase}, want {want_sign}*0.125"
            );
        }
    }
}
