//! Multi-valued message encoding and homomorphic lookup tables on top of
//! programmable bootstrapping — the "arbitrary lookup-table operation"
//! the paper highlights as TFHE's distinguishing primitive
//! (Section II-B).
//!
//! Messages `m ∈ [0, 2^p)` are encoded at the torus positions
//! `(m + 0.5) / 2^(p+1)`, i.e. packed into the positive half-torus. That
//! sidesteps the negacyclic wrap of blind rotation (inputs never cross
//! the half-torus boundary), so *any* table `[0, 2^p) → [0, 2^p)` can be
//! evaluated, not just negacyclic-symmetric ones.
//!
//! Two consumers build on this module:
//!
//! * the `pytfhe-shortint` crate, which layers an exact integer API
//!   (message + carry space, bivariate ops via message-shift packing)
//!   over [`ServerKey::apply_lut_into`], and
//! * the netlist LUT-cover pass, which replaces fanout-free gate cones
//!   with width-`w ≤ 4` boolean LUTs evaluated through
//!   [`ServerKey::boolean_lut_into`]: each boolean wire rides the
//!   message encoding at a circuit-wide precision `q ≥ w`, the packing
//!   `Σ 2^i·xᵢ` lands the cone's input pattern on a message window, and
//!   one programmable bootstrap evaluates the whole cone.

use crate::bootstrap::BootstrappingKey;
use crate::gates::{GateScratch, FUSE_CHUNK};
use crate::keys::{ClientKey, ServerKey};
use crate::lwe::LweCiphertext;
use crate::poly::TorusPoly;
use crate::torus::Torus32;
use crate::SecureRng;

/// Encodes message `m` of `precision_bits` at `(m + 0.5) / 2^(p+1)`.
pub fn encode_message(m: u32, precision_bits: u32) -> Torus32 {
    debug_assert!(m < (1 << precision_bits), "message out of range");
    Torus32::from_f64((f64::from(m) + 0.5) / f64::from(1u32 << (precision_bits + 1)))
}

/// Decodes a torus phase back to the nearest message: message `m` owns
/// the window `[m, m+1) / 2^(p+1)` and is encoded at its centre, so
/// flooring the phase to the window index recovers it.
pub fn decode_message(phase: Torus32, precision_bits: u32) -> u32 {
    let idx = phase.0 >> (32 - (precision_bits + 1));
    idx.min((1 << precision_bits) - 1)
}

impl ClientKey {
    /// Encrypts a multi-valued message `m < 2^precision_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range or the precision exceeds 8 bits
    /// (beyond which the default parameters cannot decode reliably).
    /// Shortint keygen performs the analytical admission check
    /// ([`crate::NoiseGuard::admit_lut`]) up front, so precisions the
    /// parameter set cannot decode are refused with a typed error
    /// before any encryption happens.
    pub fn encrypt_message(
        &self,
        m: u32,
        precision_bits: u32,
        rng: &mut SecureRng,
    ) -> LweCiphertext {
        assert!((1..=8).contains(&precision_bits), "1..=8 bits of precision");
        assert!(m < (1 << precision_bits), "message {m} out of range");
        self.lwe_key().encrypt(
            encode_message(m, precision_bits),
            self.params().lwe_noise_stdev,
            rng,
        )
    }

    /// Decrypts a multi-valued message.
    pub fn decrypt_message(&self, ct: &LweCiphertext, precision_bits: u32) -> u32 {
        decode_message(self.lwe_key().phase(ct), precision_bits)
    }
}

/// The plaintext offset placing a packed linear combination of messages
/// back on a window centre: `Σ cᵢ · e_p(mᵢ) = (Σ cᵢ·mᵢ + Σ cᵢ/2) /
/// 2^(p+1)`, so adding `(1 − Σ cᵢ) / 2^(p+2)` recenters the sum at
/// `e_p(Σ cᵢ·mᵢ)`. Exact (dyadic) for every coefficient vector.
fn pack_offset(precision_bits: u32, coeff_sum: i32) -> Torus32 {
    Torus32::from_fraction(1 - coeff_sum, precision_bits + 2)
}

/// Per-worker cache of compiled boolean-LUT test vectors, keyed by
/// `(width, precision, table)`. Netlists reuse a handful of distinct
/// tables across thousands of nodes, so a linear scan over the compiled
/// set beats hashing; entries are built on first sight and live for the
/// scratch's lifetime.
#[derive(Debug, Default)]
pub struct PackedLutTables {
    entries: Vec<(u32, u32, u16, TorusPoly)>,
}

impl PackedLutTables {
    /// An empty cache.
    pub fn new() -> Self {
        PackedLutTables::default()
    }

    /// Number of compiled test vectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no compiled vectors yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The compiled test vector for a boolean LUT, building (and
    /// caching) it on first sight.
    pub fn get_or_build(
        &mut self,
        bk: &BootstrappingKey,
        width: u32,
        precision: u32,
        table: u16,
    ) -> &TorusPoly {
        if let Some(pos) =
            self.entries.iter().position(|e| e.0 == width && e.1 == precision && e.2 == table)
        {
            return &self.entries[pos].3;
        }
        let entries: Vec<u32> = (0..1u32 << width).map(|m| u32::from(table >> m) & 1).collect();
        let tv = build_test_vector(bk, &entries, precision);
        self.entries.push((width, precision, table, tv));
        &self.entries.last().expect("just pushed").3
    }

    /// Looks up an already-compiled test vector.
    fn lookup(&self, width: u32, precision: u32, table: u16) -> Option<&TorusPoly> {
        self.entries.iter().find(|e| e.0 == width && e.1 == precision && e.2 == table).map(|e| &e.3)
    }
}

#[cold]
fn record_lut_bootstraps(count: u64) {
    pytfhe_telemetry::metrics().counter_add("tfhe_lut_bootstraps_total", count);
}

impl ServerKey {
    /// Homomorphically evaluates `table[m]` on an encrypted message
    /// (with noise reset, like every bootstrap). The result uses the same
    /// message encoding, so LUTs chain indefinitely.
    ///
    /// Allocates fresh scratch per call; the hot path is
    /// [`ServerKey::apply_lut_into`].
    ///
    /// # Panics
    ///
    /// Panics if the table length is not `2^precision_bits` or any entry
    /// is out of range.
    pub fn apply_lut(
        &self,
        ct: &LweCiphertext,
        table: &[u32],
        precision_bits: u32,
    ) -> LweCiphertext {
        let mut scratch = self.gate_scratch();
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.apply_lut_into(ct, table, precision_bits, &mut scratch, &mut out);
        out
    }

    /// Scratch-reusing [`ServerKey::apply_lut`]: the test vector is
    /// rendered into the scratch's preallocated buffer, the
    /// programmable bootstrap runs on the scratch's
    /// [`crate::BootstrapScratch`], and the key switch lands in `out` —
    /// zero heap allocation after the scratch's first use. This is the
    /// hot-path API behind every shortint operation.
    ///
    /// # Panics
    ///
    /// Panics if the table length is not `2^precision_bits` or any entry
    /// is out of range.
    pub fn apply_lut_into(
        &self,
        ct: &LweCiphertext,
        table: &[u32],
        precision_bits: u32,
        scratch: &mut GateScratch,
        out: &mut LweCiphertext,
    ) {
        let m_count = 1usize << precision_bits;
        assert_eq!(table.len(), m_count, "table must have 2^p entries");
        assert!(table.iter().all(|&v| v < m_count as u32), "table entry out of range");
        render_test_vector(&mut scratch.tv_buf, self.params.poly_size, table, precision_bits);
        let GateScratch { boot, tv_buf, raw, .. } = scratch;
        self.bootstrap.programmable_bootstrap_into(ct, tv_buf, boot, raw);
        self.keyswitch.switch_into(raw, out);
        if pytfhe_telemetry::enabled() {
            record_lut_bootstraps(1);
        }
    }

    /// Packs a linear combination of message-encoded ciphertexts into
    /// `out`, recentred so the packed value decodes at `precision_bits`:
    /// `out = e_p(Σ cᵢ·mᵢ)` (plus the combined noise). The shortint
    /// bivariate ops stage `lhs · 2^m + rhs` through this; the netlist
    /// LUT engines stage `Σ 2^i · xᵢ`.
    pub fn pack_messages_into(
        &self,
        precision_bits: u32,
        terms: &[(i32, &LweCiphertext)],
        out: &mut LweCiphertext,
    ) {
        let coeff_sum: i32 = terms.iter().map(|t| t.0).sum();
        out.assign_trivial(pack_offset(precision_bits, coeff_sum), self.params.lwe_dim);
        for &(coeff, ct) in terms {
            Self::axpy(out, coeff, ct);
        }
    }

    /// Evaluates a width-`w` boolean LUT in one programmable bootstrap:
    /// `ins[..w]` are boolean wires riding the message encoding at
    /// `precision ≥ w` bits, packed as `Σ 2^i·xᵢ`, and bit `j` of
    /// `table` is the cone's output for input pattern `j`. The output
    /// is a boolean message at the same precision, so LUTs chain. The
    /// compiled test vector is cached in the scratch.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0, exceeds 4 or `precision`, or `ins` holds
    /// fewer than `width` ciphertexts.
    pub fn boolean_lut_into(
        &self,
        width: u32,
        precision: u32,
        table: u16,
        ins: &[&LweCiphertext],
        scratch: &mut GateScratch,
        out: &mut LweCiphertext,
    ) {
        assert!((1..=4).contains(&width) && width <= precision, "bad LUT width {width}");
        assert!(ins.len() >= width as usize, "LUT needs {width} inputs");
        let GateScratch { boot, combo, raw, luts, .. } = scratch;
        combo.assign_trivial(pack_offset(precision, (1 << width) - 1), self.params.lwe_dim);
        for (i, ct) in ins.iter().take(width as usize).enumerate() {
            Self::axpy(combo, 1 << i, ct);
        }
        let tv = luts.get_or_build(&self.bootstrap, width, precision, table);
        self.bootstrap.programmable_bootstrap_into(combo, tv, boot, raw);
        self.keyswitch.switch_into(raw, out);
        if pytfhe_telemetry::enabled() {
            record_lut_bootstraps(1);
        }
    }

    /// Evaluates a batch of same-width boolean LUTs through the
    /// lockstep batched blind rotation — one launch per
    /// [`FUSE_CHUNK`]-slot chunk, each lane carrying its own lookup
    /// table ([`BootstrappingKey::programmable_bootstrap_batch_into`]).
    /// Falls back to per-slot rotations when the batched kernels are
    /// unavailable (`PYTFHE_TRANSFORM=ntt`); per-lane results are
    /// bit-exact with [`ServerKey::boolean_lut_into`] either way.
    ///
    /// # Panics
    ///
    /// Panics on width/precision violations or `items`/`outs` length
    /// mismatch.
    pub fn boolean_lut_batch_into(
        &self,
        width: u32,
        precision: u32,
        items: &[(u16, [&LweCiphertext; 4])],
        outs: &mut [LweCiphertext],
        scratch: &mut GateScratch,
    ) {
        assert!((1..=4).contains(&width) && width <= precision, "bad LUT width {width}");
        assert_eq!(items.len(), outs.len(), "boolean_lut_batch_into: items/outs mismatch");
        if items.is_empty() {
            return;
        }
        let GateScratch { boot, batch, raws, soa, luts, .. } = scratch;
        // Compile every distinct table before staging, so the hot loop
        // below only takes immutable cache lookups.
        for (table, _) in items {
            luts.get_or_build(&self.bootstrap, width, precision, *table);
        }
        let offset = pack_offset(precision, (1 << width) - 1);
        soa.reset(items.len());
        for (slot, (_, ins)) in items.iter().enumerate() {
            soa.set_body(slot, offset);
            for (i, ct) in ins.iter().take(width as usize).enumerate() {
                soa.axpy(slot, 1 << i, ct);
            }
        }
        let lockstep = self.bootstrap.batch_rotation_supported();
        for (chunk, out_chunk) in outs.chunks_mut(FUSE_CHUNK).enumerate() {
            let base = chunk * FUSE_CHUNK;
            let w = out_chunk.len();
            if w == 1 || !lockstep {
                for lane in 0..w {
                    let (mask, body) = soa.slot(base + lane);
                    let tv = luts
                        .lookup(width, precision, items[base + lane].0)
                        .expect("compiled above");
                    self.bootstrap.programmable_bootstrap_slices_into(
                        mask,
                        body,
                        tv,
                        boot,
                        &mut raws[lane],
                    );
                }
            } else {
                let filler = luts.lookup(width, precision, items[base].0).expect("compiled");
                let mut inputs: [(&[Torus32], Torus32); FUSE_CHUNK] =
                    [(&[][..], Torus32::ZERO); FUSE_CHUNK];
                let mut tvs: [&TorusPoly; FUSE_CHUNK] = [filler; FUSE_CHUNK];
                for lane in 0..w {
                    inputs[lane] = soa.slot(base + lane);
                    tvs[lane] = luts
                        .lookup(width, precision, items[base + lane].0)
                        .expect("compiled above");
                }
                self.bootstrap.programmable_bootstrap_batch_into(
                    &inputs[..w],
                    &tvs[..w],
                    batch,
                    &mut raws[..w],
                );
            }
            for (lane, out) in out_chunk.iter_mut().enumerate() {
                self.keyswitch.switch_into(&raws[lane], out);
            }
        }
        if pytfhe_telemetry::enabled() {
            record_lut_bootstraps(items.len() as u64);
        }
    }

    /// Message-encoded boolean NOT — affine, no bootstrap: encodings
    /// satisfy `e_p(0) + e_p(1) = 1/2^p`, so `NOT(x) = 1/2^p − x`
    /// exactly (noise is negated, not grown).
    pub fn message_not_into(&self, precision: u32, a: &LweCiphertext, out: &mut LweCiphertext) {
        out.assign_trivial(Torus32::from_fraction(1, precision), self.params.lwe_dim);
        out.sub_assign(a);
    }

    /// A trivial (noiseless) message-encoded constant.
    pub fn message_constant_into(&self, m: u32, precision: u32, out: &mut LweCiphertext) {
        out.assign_trivial(encode_message(m, precision), self.params.lwe_dim);
    }
}

/// Builds the blind-rotation test vector for a message table: phase
/// window `j` (of `2N` positions; only the first `N` are reachable by
/// valid encodings) holds the encoding of the table entry whose message
/// window contains `j`. A table shorter than `2^p` entries covers the
/// low windows and clamps above — the boolean-LUT packing only ever
/// lands on the covered windows.
pub fn build_test_vector(bk: &BootstrappingKey, table: &[u32], precision_bits: u32) -> TorusPoly {
    let mut tv = TorusPoly::zero(bk.params().poly_size);
    render_test_vector(&mut tv, bk.params().poly_size, table, precision_bits);
    tv
}

/// Allocation-free body of [`build_test_vector`], rendering into a
/// caller-owned buffer.
fn render_test_vector(tv: &mut TorusPoly, n: usize, table: &[u32], precision_bits: u32) {
    debug_assert_eq!(tv.len(), n);
    let steps = 1usize << (precision_bits + 1);
    let window = 2 * n / steps; // phase positions per message
    assert!(window >= 1, "ring too small for this precision");
    for j in 0..n {
        let m = (j / window).min(table.len() - 1);
        tv.coeffs_mut()[j] = encode_message(table[m], precision_bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;

    fn setup() -> (ClientKey, ServerKey, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(4242);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        (client, server, rng)
    }

    fn setup_shortint() -> (ClientKey, ServerKey, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(4243);
        let client = ClientKey::generate(Params::testing_shortint(), &mut rng);
        let server = client.server_key(&mut rng);
        (client, server, rng)
    }

    #[test]
    fn message_encode_decode_round_trip() {
        let (client, _server, mut rng) = setup();
        for p in [1u32, 2, 3] {
            for m in 0..(1u32 << p) {
                let ct = client.encrypt_message(m, p, &mut rng);
                assert_eq!(client.decrypt_message(&ct, p), m, "p={p} m={m}");
            }
        }
    }

    #[test]
    fn identity_lut_preserves_messages() {
        let (client, server, mut rng) = setup();
        let p = 2;
        let table: Vec<u32> = (0..4).collect();
        for m in 0..4 {
            let ct = client.encrypt_message(m, p, &mut rng);
            let out = server.apply_lut(&ct, &table, p);
            assert_eq!(client.decrypt_message(&out, p), m, "m={m}");
        }
    }

    #[test]
    fn arbitrary_lut_is_applied() {
        let (client, server, mut rng) = setup();
        let p = 2;
        // x -> x^2 mod 4 and a non-monotone permutation.
        for table in [vec![0u32, 1, 0, 1], vec![2u32, 0, 3, 1]] {
            for m in 0..4u32 {
                let ct = client.encrypt_message(m, p, &mut rng);
                let out = server.apply_lut(&ct, &table, p);
                assert_eq!(
                    client.decrypt_message(&out, p),
                    table[m as usize],
                    "table {table:?}, m={m}"
                );
            }
        }
    }

    #[test]
    fn luts_chain_with_noise_reset() {
        let (client, server, mut rng) = setup();
        let p = 2;
        let increment: Vec<u32> = (0..4).map(|x| (x + 1) % 4).collect();
        let mut ct = client.encrypt_message(0, p, &mut rng);
        for step in 1..=12u32 {
            ct = server.apply_lut(&ct, &increment, p);
            assert_eq!(client.decrypt_message(&ct, p), step % 4, "step {step}");
        }
    }

    #[test]
    fn apply_lut_into_is_bit_exact_with_apply_lut_and_allocation_free() {
        let _g = crate::ntt::transform_guard().read().unwrap();
        let (client, server, mut rng) = setup();
        let p = 2;
        let table = [2u32, 0, 3, 1];
        let mut scratch = server.gate_scratch();
        let mut out = LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dim);
        for m in 0..4u32 {
            let ct = client.encrypt_message(m, p, &mut rng);
            let want = server.apply_lut(&ct, &table, p);
            server.apply_lut_into(&ct, &table, p, &mut scratch, &mut out);
            assert_eq!(out, want, "m={m}: scratch path diverged");
        }
        // Warm, then the steady state never touches the allocator.
        let ct = client.encrypt_message(1, p, &mut rng);
        server.apply_lut_into(&ct, &table, p, &mut scratch, &mut out);
        let before = crate::trace::thread_buffer_allocs();
        server.apply_lut_into(&ct, &table, p, &mut scratch, &mut out);
        assert_eq!(crate::trace::thread_buffer_allocs() - before, 0);
    }

    #[test]
    fn boolean_luts_evaluate_gate_cones() {
        let (client, server, mut rng) = setup_shortint();
        let mut scratch = server.gate_scratch();
        let mut out = LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dim);
        // Width 2 at precision 2: XOR (table 0b0110) and NAND (0b0111).
        for (table, oracle) in
            [(0b0110u16, [false, true, true, false]), (0b0111, [true, true, true, false])]
        {
            for pattern in 0..4u32 {
                let x0 = client.encrypt_message(pattern & 1, 2, &mut rng);
                let x1 = client.encrypt_message((pattern >> 1) & 1, 2, &mut rng);
                server.boolean_lut_into(2, 2, table, &[&x0, &x1], &mut scratch, &mut out);
                let got = client.decrypt_message(&out, 2);
                assert_eq!(got, u32::from(oracle[pattern as usize]), "table {table:#b} {pattern}");
            }
        }
        // Width 3 at precision 3: a full-adder carry cone
        // (maj(a,b,c)), table bit j = popcount(j) >= 2.
        let maj: u16 = (0..8).fold(0, |t, j: u16| t | (u16::from(j.count_ones() >= 2) << j));
        for pattern in 0..8u32 {
            let bits: Vec<LweCiphertext> =
                (0..3).map(|i| client.encrypt_message((pattern >> i) & 1, 3, &mut rng)).collect();
            let ins: Vec<&LweCiphertext> = bits.iter().collect();
            server.boolean_lut_into(3, 3, maj, &ins, &mut scratch, &mut out);
            assert_eq!(
                client.decrypt_message(&out, 3),
                u32::from(pattern.count_ones() >= 2),
                "maj({pattern:03b})"
            );
        }
    }

    #[test]
    fn batched_boolean_luts_are_bit_exact_with_scalar_path() {
        let _g = crate::ntt::transform_guard().read().unwrap();
        let (client, server, mut rng) = setup_shortint();
        let mut scratch = server.gate_scratch();
        // A ragged batch (> FUSE_CHUNK) of width-2 LUTs with mixed
        // tables, exercising the per-lane test vectors.
        let tables = [0b0110u16, 0b0111, 0b1000, 0b0110, 0b1110, 0b0001, 0b0110, 0b1001, 0b0111];
        let cts: Vec<(LweCiphertext, LweCiphertext)> = (0..tables.len())
            .map(|i| {
                (
                    client.encrypt_message(u32::from(i % 2 == 0), 2, &mut rng),
                    client.encrypt_message(u32::from(i % 3 == 0), 2, &mut rng),
                )
            })
            .collect();
        let items: Vec<(u16, [&LweCiphertext; 4])> =
            tables.iter().zip(&cts).map(|(&t, (a, b))| (t, [a, b, a, a])).collect();
        let mut want = Vec::new();
        let mut out = LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dim);
        for (table, ins) in &items {
            server.boolean_lut_into(2, 2, *table, &ins[..2], &mut scratch, &mut out);
            want.push(out.clone());
        }
        let mut outs =
            vec![LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dim); items.len()];
        server.boolean_lut_batch_into(2, 2, &items, &mut outs, &mut scratch);
        assert_eq!(outs, want, "batched LUT lanes must match the scalar path bit-exactly");
        for (i, ((&t, _), ct)) in tables.iter().zip(&cts).zip(&outs).enumerate() {
            let (a, b) = (i % 2 == 0, i % 3 == 0);
            let idx = usize::from(a) | (usize::from(b) << 1);
            assert_eq!(client.decrypt_message(ct, 2), u32::from(t >> idx) & 1, "lane {i}");
        }
    }

    #[test]
    fn message_not_and_constant_are_exact_affine_ops() {
        let (client, server, mut rng) = setup_shortint();
        let mut out = LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dim);
        for p in [2u32, 3, 4] {
            for bit in [0u32, 1] {
                let ct = client.encrypt_message(bit, p, &mut rng);
                server.message_not_into(p, &ct, &mut out);
                assert_eq!(client.decrypt_message(&out, p), 1 - bit, "not p={p} bit={bit}");
                server.message_constant_into(bit, p, &mut out);
                assert_eq!(client.decrypt_message(&out, p), bit, "const p={p} bit={bit}");
            }
        }
    }

    #[test]
    fn packed_lut_cache_compiles_each_table_once() {
        let (_client, server, _rng) = setup();
        let mut cache = PackedLutTables::new();
        let bk = server.bootstrapping_key();
        cache.get_or_build(bk, 2, 2, 0b0110);
        cache.get_or_build(bk, 2, 2, 0b0111);
        cache.get_or_build(bk, 2, 2, 0b0110);
        assert_eq!(cache.len(), 2);
        // Same table at another precision is a distinct vector.
        cache.get_or_build(bk, 2, 3, 0b0110);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    #[should_panic(expected = "table must have 2^p entries")]
    fn wrong_table_size_panics() {
        let (client, server, mut rng) = setup();
        let ct = client.encrypt_message(0, 2, &mut rng);
        let _ = server.apply_lut(&ct, &[0, 1, 2], 2);
    }
}
