//! Multi-valued message encoding and homomorphic lookup tables on top of
//! programmable bootstrapping — the "arbitrary lookup-table operation"
//! the paper highlights as TFHE's distinguishing primitive
//! (Section II-B).
//!
//! Messages `m ∈ [0, 2^p)` are encoded at the torus positions
//! `(m + 0.5) / 2^(p+1)`, i.e. packed into the positive half-torus. That
//! sidesteps the negacyclic wrap of blind rotation (inputs never cross
//! the half-torus boundary), so *any* table `[0, 2^p) → [0, 2^p)` can be
//! evaluated, not just negacyclic-symmetric ones.

use crate::bootstrap::BootstrappingKey;
use crate::keys::{ClientKey, ServerKey};
use crate::lwe::LweCiphertext;
use crate::poly::TorusPoly;
use crate::torus::Torus32;
use crate::SecureRng;

/// Encodes message `m` of `precision_bits` at `(m + 0.5) / 2^(p+1)`.
fn encode(m: u32, precision_bits: u32) -> Torus32 {
    debug_assert!(m < (1 << precision_bits), "message out of range");
    Torus32::from_f64((f64::from(m) + 0.5) / f64::from(1u32 << (precision_bits + 1)))
}

/// Decodes a torus phase back to the nearest message: message `m` owns
/// the window `[m, m+1) / 2^(p+1)` and is encoded at its centre, so
/// flooring the phase to the window index recovers it.
fn decode(phase: Torus32, precision_bits: u32) -> u32 {
    let idx = phase.0 >> (32 - (precision_bits + 1));
    idx.min((1 << precision_bits) - 1)
}

impl ClientKey {
    /// Encrypts a multi-valued message `m < 2^precision_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range or the precision exceeds 8 bits
    /// (beyond which the default parameters cannot decode reliably).
    pub fn encrypt_message(
        &self,
        m: u32,
        precision_bits: u32,
        rng: &mut SecureRng,
    ) -> LweCiphertext {
        assert!((1..=8).contains(&precision_bits), "1..=8 bits of precision");
        assert!(m < (1 << precision_bits), "message {m} out of range");
        self.lwe_key().encrypt(encode(m, precision_bits), self.params().lwe_noise_stdev, rng)
    }

    /// Decrypts a multi-valued message.
    pub fn decrypt_message(&self, ct: &LweCiphertext, precision_bits: u32) -> u32 {
        decode(self.lwe_key().phase(ct), precision_bits)
    }
}

impl ServerKey {
    /// Homomorphically evaluates `table[m]` on an encrypted message
    /// (with noise reset, like every bootstrap). The result uses the same
    /// message encoding, so LUTs chain indefinitely.
    ///
    /// # Panics
    ///
    /// Panics if the table length is not `2^precision_bits` or any entry
    /// is out of range.
    pub fn apply_lut(
        &self,
        ct: &LweCiphertext,
        table: &[u32],
        precision_bits: u32,
    ) -> LweCiphertext {
        let m_count = 1usize << precision_bits;
        assert_eq!(table.len(), m_count, "table must have 2^p entries");
        assert!(table.iter().all(|&v| v < m_count as u32), "table entry out of range");
        let lut = build_test_vector(self.bootstrapping_key(), table, precision_bits);
        let mut scratch = self.bootstrapping_key().boot_scratch();
        let raw = self.bootstrapping_key().programmable_bootstrap(ct, &lut, &mut scratch);
        self.keyswitch_key().switch(&raw)
    }
}

/// Builds the blind-rotation test vector for a message table: phase
/// window `j` (of `2N` positions; only the first `N` are reachable by
/// valid encodings) holds the encoding of the table entry whose message
/// window contains `j`.
fn build_test_vector(bk: &BootstrappingKey, table: &[u32], precision_bits: u32) -> TorusPoly {
    let n = bk.params().poly_size;
    let steps = 1usize << (precision_bits + 1);
    let window = 2 * n / steps; // phase positions per message
    assert!(window >= 1, "ring too small for this precision");
    let mut tv = TorusPoly::zero(n);
    for j in 0..n {
        let m = (j / window).min(table.len() - 1);
        tv.coeffs_mut()[j] = encode(table[m], precision_bits);
    }
    tv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;

    fn setup() -> (ClientKey, ServerKey, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(4242);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        (client, server, rng)
    }

    #[test]
    fn message_encode_decode_round_trip() {
        let (client, _server, mut rng) = setup();
        for p in [1u32, 2, 3] {
            for m in 0..(1u32 << p) {
                let ct = client.encrypt_message(m, p, &mut rng);
                assert_eq!(client.decrypt_message(&ct, p), m, "p={p} m={m}");
            }
        }
    }

    #[test]
    fn identity_lut_preserves_messages() {
        let (client, server, mut rng) = setup();
        let p = 2;
        let table: Vec<u32> = (0..4).collect();
        for m in 0..4 {
            let ct = client.encrypt_message(m, p, &mut rng);
            let out = server.apply_lut(&ct, &table, p);
            assert_eq!(client.decrypt_message(&out, p), m, "m={m}");
        }
    }

    #[test]
    fn arbitrary_lut_is_applied() {
        let (client, server, mut rng) = setup();
        let p = 2;
        // x -> x^2 mod 4 and a non-monotone permutation.
        for table in [vec![0u32, 1, 0, 1], vec![2u32, 0, 3, 1]] {
            for m in 0..4u32 {
                let ct = client.encrypt_message(m, p, &mut rng);
                let out = server.apply_lut(&ct, &table, p);
                assert_eq!(
                    client.decrypt_message(&out, p),
                    table[m as usize],
                    "table {table:?}, m={m}"
                );
            }
        }
    }

    #[test]
    fn luts_chain_with_noise_reset() {
        let (client, server, mut rng) = setup();
        let p = 2;
        let increment: Vec<u32> = (0..4).map(|x| (x + 1) % 4).collect();
        let mut ct = client.encrypt_message(0, p, &mut rng);
        for step in 1..=12u32 {
            ct = server.apply_lut(&ct, &increment, p);
            assert_eq!(client.decrypt_message(&ct, p), step % 4, "step {step}");
        }
    }

    #[test]
    #[should_panic(expected = "table must have 2^p entries")]
    fn wrong_table_size_panics() {
        let (client, server, mut rng) = setup();
        let ct = client.encrypt_message(0, 2, &mut rng);
        let _ = server.apply_lut(&ct, &[0, 1, 2], 2);
    }
}
