//! 64-byte-aligned heap buffers for SIMD-facing data.
//!
//! The AVX-512 kernels move 64 bytes per load; when a twiddle table or
//! an SoA slot straddles a cache line every access costs two line
//! fills. `Vec<f64>`/`Vec<u32>` only guarantee element alignment, so
//! the structures the vector kernels stream over — FFT twiddle tables,
//! [`crate::lwe::LweSoa`] mask/body slabs, and the batched transform
//! slots — allocate through [`AlignedBuf`] instead, which pins the base
//! address to a 64-byte boundary (one cache line, one zmm register).
//!
//! The type is deliberately small: fixed 64-byte alignment, zero-filled
//! growth, `Deref` to a slice. It is not a general `Vec` replacement —
//! no push/pop, no spare capacity tracking beyond what `resize` needs.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) of every [`AlignedBuf`] allocation: one cache line
/// and one AVX-512 register width.
pub const SIMD_ALIGN: usize = 64;

/// A heap slice of `T` whose base address is 64-byte aligned.
///
/// `T` is restricted to `Copy` plain-old-data in practice (`f64`, `u32`,
/// [`crate::torus::Torus32`]); new storage is zero-filled, which is the
/// all-zero bit pattern these types expect.
pub struct AlignedBuf<T: Copy + Default> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
    _marker: PhantomData<T>,
}

// The buffer owns its allocation exactly like Vec<T> does.
unsafe impl<T: Copy + Default + Send> Send for AlignedBuf<T> {}
unsafe impl<T: Copy + Default + Sync> Sync for AlignedBuf<T> {}

impl<T: Copy + Default> AlignedBuf<T> {
    fn layout(cap: usize) -> Layout {
        let align = SIMD_ALIGN.max(std::mem::align_of::<T>());
        Layout::from_size_align(cap * std::mem::size_of::<T>(), align)
            .expect("aligned buffer layout overflow")
    }

    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        AlignedBuf { ptr: NonNull::dangling(), len: 0, cap: 0, _marker: PhantomData }
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let mut buf = Self::new();
        buf.resize_zeroed(len);
        buf
    }

    /// A buffer holding a copy of `src`.
    pub fn from_slice(src: &[T]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.copy_from_slice(src);
        buf
    }

    /// Resizes to `len` elements. Shrinking keeps the allocation; growth
    /// reallocates (zero-filled) and copies the prefix. All resulting
    /// storage stays 64-byte aligned.
    pub fn resize_zeroed(&mut self, len: usize) {
        if len <= self.cap {
            // Growing within capacity re-exposes memory that was either
            // freshly zeroed or previously initialized; zero it so the
            // contents are deterministic.
            if len > self.len {
                unsafe {
                    std::ptr::write_bytes(self.ptr.as_ptr().add(self.len), 0, len - self.len);
                }
            }
            self.len = len;
            return;
        }
        let layout = Self::layout(len);
        let raw = if layout.size() == 0 {
            NonNull::dangling()
        } else {
            let p = unsafe { alloc_zeroed(layout) } as *mut T;
            match NonNull::new(p) {
                Some(nn) => nn,
                None => handle_alloc_error(layout),
            }
        };
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), raw.as_ptr(), self.len);
        }
        self.release();
        self.ptr = raw;
        self.len = len;
        self.cap = len;
        debug_assert!(self.is_aligned());
    }

    /// Sets every element to zero without changing the length.
    pub fn fill_zero(&mut self) {
        unsafe { std::ptr::write_bytes(self.ptr.as_ptr(), 0, self.len) }
    }

    /// Whether the base pointer meets [`SIMD_ALIGN`] (vacuously true for
    /// empty buffers). Debug builds assert this after every allocation.
    pub fn is_aligned(&self) -> bool {
        self.cap == 0 || (self.ptr.as_ptr() as usize).is_multiple_of(SIMD_ALIGN)
    }

    fn release(&mut self) {
        if self.cap != 0 {
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) }
        }
        self.ptr = NonNull::dangling();
        self.len = 0;
        self.cap = 0;
    }
}

impl<T: Copy + Default> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        self.release();
    }
}

impl<T: Copy + Default> Default for AlignedBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }

    fn clone_from(&mut self, source: &Self) {
        self.resize_zeroed(source.len);
        self.copy_from_slice(source);
    }
}

impl<T: Copy + Default> Deref for AlignedBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy + Default> DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy + Default + PartialEq> PartialEq for AlignedBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Default + Eq> Eq for AlignedBuf<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_64_byte_aligned() {
        for len in [1usize, 3, 64, 511, 4096] {
            let buf = AlignedBuf::<f64>::zeroed(len);
            assert!(buf.is_aligned(), "len {len}");
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|&x| x == 0.0));
        }
        let buf = AlignedBuf::<u32>::zeroed(17);
        assert_eq!((buf.as_ptr() as usize) % SIMD_ALIGN, 0);
    }

    #[test]
    fn resize_preserves_prefix_and_zeroes_growth() {
        let mut buf = AlignedBuf::<u32>::from_slice(&[1, 2, 3]);
        buf.resize_zeroed(6);
        assert_eq!(&buf[..], &[1, 2, 3, 0, 0, 0]);
        assert!(buf.is_aligned());
        // Shrink then regrow within capacity: re-exposed tail is zeroed.
        buf[5] = 9;
        buf.resize_zeroed(2);
        assert_eq!(&buf[..], &[1, 2]);
        buf.resize_zeroed(6);
        assert_eq!(&buf[..], &[1, 2, 0, 0, 0, 0]);
    }

    #[test]
    fn clone_and_eq() {
        let a = AlignedBuf::<f64>::from_slice(&[1.5, -2.25, 0.0]);
        let b = a.clone();
        assert!(b.is_aligned());
        assert_eq!(a, b);
        let mut c = AlignedBuf::new();
        c.clone_from(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn empty_buffer_is_fine() {
        let buf = AlignedBuf::<f64>::new();
        assert!(buf.is_empty());
        assert!(buf.is_aligned());
        let cloned = buf.clone();
        assert!(cloned.is_empty());
    }
}
