//! Blind rotation and gate bootstrapping — the operation that dominates
//! TFHE execution time (the "Blind Rotation" segment of the paper's
//! Figure 7).
//!
//! The loops a bootstrap spends its cycles in — the folded transforms,
//! the external-product MAC, gadget decomposition, and the trailing key
//! switch — all route through the runtime-dispatched kernels of
//! [`crate::simd`] (AVX-512 / AVX2+FMA / NEON / portable scalar,
//! overridable with `PYTFHE_SIMD`), so nothing in this module is
//! architecture-specific. The negacyclic transform itself is also
//! selectable: `PYTFHE_TRANSFORM=ntt` swaps the f64 FFT for the exact
//! prime-field NTT of [`crate::ntt`].

use std::sync::OnceLock;

use crate::fft::FftPlan;
use crate::lwe::LweCiphertext;
use crate::lwe::LweKey;
use crate::ntt::{NttCmuxScratch, NttKey};
use crate::params::Params;
use crate::poly::TorusPoly;
use crate::rng::SecureRng;
use crate::tgsw::{
    BatchExternalScratch, CmuxScratch, ExternalProductScratch, Gadget, TgswCiphertext, TgswFft,
};
use crate::tlwe::{TlweCiphertext, TlweKey};
use crate::torus::Torus32;

/// The bootstrapping key: one FFT-domain TGSW encryption of each bit of the
/// LWE gate key, under the TLWE key. Every polynomial is stored folded
/// (`N/2` half-complex points), halving the key bytes relative to the
/// full-size layout.
#[derive(Debug, Clone)]
pub struct BootstrappingKey {
    tgsw: Vec<TgswFft>,
    plan: FftPlan,
    params: Params,
    /// NTT mirror of `tgsw`, derived lazily on first use when
    /// `PYTFHE_TRANSFORM=ntt` (the wire format stays FFT-only).
    ntt: OnceLock<NttKey>,
}

impl BootstrappingKey {
    /// Generates the bootstrapping key for `lwe_key` under `tlwe_key`.
    pub fn generate(
        params: Params,
        lwe_key: &LweKey,
        tlwe_key: &TlweKey,
        rng: &mut SecureRng,
    ) -> Self {
        let plan = FftPlan::new(params.poly_size);
        let gadget = Gadget { levels: params.decomp_levels, base_log: params.decomp_base_log };
        let tgsw = lwe_key
            .bits()
            .iter()
            .map(|&bit| {
                TgswCiphertext::encrypt(tlwe_key, bit, gadget, params.glwe_noise_stdev, rng)
                    .to_fft(&plan)
            })
            .collect();
        BootstrappingKey { tgsw, plan, params, ntt: OnceLock::new() }
    }

    /// Raw TGSW rows (crate-internal, for serialization).
    pub(crate) fn tgsw_raw(&self) -> &[TgswFft] {
        &self.tgsw
    }

    /// Rebuilds from parts (crate-internal, for deserialization).
    pub(crate) fn from_parts(params: Params, tgsw: Vec<TgswFft>) -> Self {
        let plan = FftPlan::new(params.poly_size);
        BootstrappingKey { tgsw, plan, params, ntt: OnceLock::new() }
    }

    /// The parameter set this key was generated for.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The FFT plan (shared with callers that need matching transforms).
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// Whether the lockstep batched blind rotation
    /// ([`BootstrappingKey::bootstrap_raw_batch_into`]) is available.
    /// Only the FFT transform has batched struct-of-arrays kernels; the
    /// prototype NTT backend makes batched callers fall back to per-slot
    /// rotations.
    pub fn batch_rotation_supported(&self) -> bool {
        !crate::ntt::ntt_selected()
    }

    /// The gadget parameters of this key's decomposition.
    fn gadget(&self) -> Gadget {
        Gadget { levels: self.params.decomp_levels, base_log: self.params.decomp_base_log }
    }

    /// The NTT mirror of this key when the NTT transform is selected,
    /// deriving it from the FFT rows on first use (thread-safe; every
    /// worker shares the one derived key).
    fn ntt_key(&self) -> Option<&NttKey> {
        if !crate::ntt::ntt_selected() {
            return None;
        }
        Some(
            self.ntt
                .get_or_init(|| NttKey::from_fft(&self.tgsw, &self.plan, self.params.poly_size)),
        )
    }

    /// Allocates external-product scratch sized for this key (for callers
    /// driving [`TgswFft::external_product`] directly).
    pub fn scratch(&self) -> ExternalProductScratch {
        ExternalProductScratch::new(self.params.poly_size, self.params.glwe_dim, self.gadget())
    }

    /// Allocates the full allocation-free bootstrap scratch (CMUX buffers
    /// plus accumulator/test-vector buffers) sized for this key. One per
    /// worker thread; after construction, every bootstrap and blind-rotate
    /// call on it runs without touching the allocator (the convenience
    /// variants allocate only their return value).
    pub fn boot_scratch(&self) -> BootstrapScratch {
        let p = &self.params;
        BootstrapScratch {
            cs: CmuxScratch::new(p.poly_size, p.glwe_dim, self.gadget()),
            acc: TlweCiphertext::trivial(TorusPoly::zero(p.poly_size), p.glwe_dim),
            tv: TorusPoly::zero(p.poly_size),
            ntt: None,
        }
    }

    /// Blind rotation: homomorphically computes
    /// `X^{-phase(ct) * 2N} * test_vector` inside a TLWE accumulator.
    ///
    /// After rotation, the constant coefficient of the accumulator holds
    /// `test_vector[phase * 2N mod 2N]` (with negacyclic sign), which the
    /// caller extracts as an LWE sample. With the constant test vector
    /// `mu` this implements the sign function; with an arbitrary test
    /// vector it is TFHE's *programmable* bootstrapping.
    ///
    /// Runs entirely on `scratch` (the `n`-step CMUX loop is
    /// allocation-free); only the returned accumulator is freshly
    /// allocated.
    pub fn blind_rotate(
        &self,
        ct: &LweCiphertext,
        test_vector: &TorusPoly,
        scratch: &mut BootstrapScratch,
    ) -> TlweCiphertext {
        scratch.tv.copy_from(test_vector);
        self.blind_rotate_noalloc(ct.mask(), ct.body(), scratch);
        scratch.acc.clone()
    }

    /// Programmable bootstrapping (the paper's Section II-B: "fast
    /// programmable bootstrapping which reduces the noise of a ciphertext
    /// while simultaneously performing an arbitrary lookup-table
    /// operation").
    ///
    /// `lut` holds `N` torus values; an input whose phase rounds to
    /// `j / 2N` (for `j < N`) is mapped to a fresh encryption of
    /// `lut[j]`, and phases in the negacyclic half (`j >= N`) to
    /// `-lut[j - N]`. The output is a dimension-`k·N` sample; key switch
    /// it to return to the gate dimension.
    ///
    /// # Panics
    ///
    /// Panics if `lut.len()` differs from the ring dimension `N`.
    pub fn programmable_bootstrap(
        &self,
        ct: &LweCiphertext,
        lut: &TorusPoly,
        scratch: &mut BootstrapScratch,
    ) -> LweCiphertext {
        assert_eq!(lut.len(), self.params.poly_size, "LUT must have N entries");
        scratch.tv.copy_from(lut);
        self.blind_rotate_noalloc(ct.mask(), ct.body(), scratch);
        scratch.acc.extract_lwe()
    }

    /// Like [`BootstrappingKey::programmable_bootstrap`], writing the
    /// dimension-`k·N` result into `out` with zero heap allocation (all
    /// intermediates live in `scratch`) — the hot-path variant behind
    /// [`crate::ServerKey::apply_lut_into`].
    pub fn programmable_bootstrap_into(
        &self,
        ct: &LweCiphertext,
        lut: &TorusPoly,
        scratch: &mut BootstrapScratch,
        out: &mut LweCiphertext,
    ) {
        self.programmable_bootstrap_slices_into(ct.mask(), ct.body(), lut, scratch, out);
    }

    /// Slice-level variant of
    /// [`BootstrappingKey::programmable_bootstrap_into`] for batched
    /// callers whose inputs live in struct-of-arrays slots.
    pub fn programmable_bootstrap_slices_into(
        &self,
        mask: &[Torus32],
        body: Torus32,
        lut: &TorusPoly,
        scratch: &mut BootstrapScratch,
        out: &mut LweCiphertext,
    ) {
        assert_eq!(lut.len(), self.params.poly_size, "LUT must have N entries");
        scratch.tv.copy_from(lut);
        self.blind_rotate_noalloc(mask, body, scratch);
        scratch.acc.extract_lwe_into(out);
    }

    /// Gate bootstrapping without the final key switch: maps any input
    /// with phase in `(0, 1/2)` to a fresh encryption of `+mu` and phase in
    /// `(-1/2, 0)` to `-mu`, as a dimension-`k·N` LWE sample. Allocates
    /// only the returned sample.
    pub fn bootstrap_raw(
        &self,
        ct: &LweCiphertext,
        mu: Torus32,
        scratch: &mut BootstrapScratch,
    ) -> LweCiphertext {
        let ext_dim = self.params.glwe_dim * self.params.poly_size;
        let mut out = LweCiphertext::trivial(Torus32::ZERO, ext_dim);
        self.bootstrap_raw_into(ct, mu, scratch, &mut out);
        out
    }

    /// Allocation-free blind rotation over a raw `(mask, body)` sample,
    /// reading the test vector from `scratch.tv` and leaving the rotated
    /// accumulator in `scratch.acc`. Taking slices instead of an
    /// [`LweCiphertext`] lets batched callers feed struct-of-arrays slots
    /// directly.
    fn blind_rotate_noalloc(&self, mask: &[Torus32], body: Torus32, s: &mut BootstrapScratch) {
        let n2 = 2 * self.params.poly_size;
        let barb = body.mod_switch(self.params.poly_size);
        // acc = X^{-barb} * tv = X^{2N - barb} * tv (trivial sample).
        for p in &mut s.acc.a {
            p.fill_assign(Torus32::ZERO);
        }
        s.tv.mul_by_xk_into((n2 - barb) % n2, &mut s.acc.b);
        if let Some(nk) = self.ntt_key() {
            // Exact-integer CMUX chain through the prototype NTT backend
            // (its scratch is carved out lazily: the default FFT path
            // never pays for it).
            let ns = s.ntt.get_or_insert_with(|| nk.cmux_scratch(self.params.glwe_dim));
            for (i, a_i) in mask.iter().enumerate() {
                let bara = a_i.mod_switch(self.params.poly_size);
                if bara == 0 {
                    continue;
                }
                nk.rotate_cmux_assign(i, &mut s.acc, bara, ns);
            }
            return;
        }
        for (a_i, bk_i) in mask.iter().zip(&self.tgsw) {
            let bara = a_i.mod_switch(self.params.poly_size);
            if bara == 0 {
                continue;
            }
            // acc <- acc + bk_i ⊡ (X^{bara} * acc - acc), the CMUX.
            bk_i.rotate_cmux_assign(&mut s.acc, bara, &self.plan, &mut s.cs);
        }
    }

    /// Like [`BootstrappingKey::bootstrap_raw`], writing the dimension-`k·N`
    /// result into `out` with zero heap allocation (all intermediates live
    /// in `scratch`).
    pub fn bootstrap_raw_into(
        &self,
        ct: &LweCiphertext,
        mu: Torus32,
        scratch: &mut BootstrapScratch,
        out: &mut LweCiphertext,
    ) {
        self.bootstrap_raw_slices_into(ct.mask(), ct.body(), mu, scratch, out);
    }

    /// Slice-level variant of [`BootstrappingKey::bootstrap_raw_into`] for
    /// batched callers whose inputs live in struct-of-arrays slots.
    pub fn bootstrap_raw_slices_into(
        &self,
        mask: &[Torus32],
        body: Torus32,
        mu: Torus32,
        scratch: &mut BootstrapScratch,
        out: &mut LweCiphertext,
    ) {
        debug_assert_eq!(mask.len(), self.params.lwe_dim);
        scratch.tv.fill_assign(mu);
        self.blind_rotate_noalloc(mask, body, scratch);
        scratch.acc.extract_lwe_into(out);
    }

    /// Allocates the lockstep batched bootstrap scratch for batches of
    /// up to `max_lanes` ciphertexts (one per worker thread, like
    /// [`BootstrappingKey::boot_scratch`]).
    pub fn batch_scratch(&self, max_lanes: usize) -> BatchBootstrapScratch {
        let p = &self.params;
        let blank = || TlweCiphertext::trivial(TorusPoly::zero(p.poly_size), p.glwe_dim);
        BatchBootstrapScratch {
            acc: (0..max_lanes).map(|_| blank()).collect(),
            diff: (0..max_lanes).map(|_| blank()).collect(),
            ext: (0..max_lanes).map(|_| blank()).collect(),
            active: Vec::with_capacity(max_lanes),
            ep: BatchExternalScratch::new(p.poly_size, p.glwe_dim, self.gadget(), max_lanes),
            tv: TorusPoly::zero(p.poly_size),
        }
    }

    /// Lockstep batched gate bootstrapping: runs up to `max_lanes` blind
    /// rotations *in step*, so every CMUX iteration applies the shared
    /// bootstrapping-key row to all lanes through the batched transform
    /// kernels (one row stream and one twiddle stream per batch instead
    /// of per ciphertext — see [`TgswFft::external_product_batch_into`]).
    ///
    /// Lanes whose mod-switched mask element is zero skip their CMUX
    /// exactly as the single path does: the live lanes of each step are
    /// compacted before the batched external product, so per-lane
    /// results stay bit-identical to [`BootstrappingKey::bootstrap_raw`]
    /// regardless of which other ciphertexts share the batch.
    ///
    /// `inputs` holds `(mask, body)` views (struct-of-arrays friendly);
    /// `outs` receives the dimension-`k·N` raw samples. Allocation-free.
    pub fn bootstrap_raw_batch_into(
        &self,
        inputs: &[(&[Torus32], Torus32)],
        mu: Torus32,
        scratch: &mut BatchBootstrapScratch,
        outs: &mut [LweCiphertext],
    ) {
        let b = inputs.len();
        assert!(b > 0 && b <= scratch.ep.max_lanes(), "batch width {b} exceeds scratch");
        debug_assert_eq!(outs.len(), b);
        let n = self.params.poly_size;
        let n2 = 2 * n;
        let BatchBootstrapScratch { acc, diff, ext, active, ep, tv } = scratch;
        tv.fill_assign(mu);
        for (lane, (mask, body)) in inputs.iter().enumerate() {
            debug_assert_eq!(mask.len(), self.params.lwe_dim);
            let barb = body.mod_switch(n);
            for p in &mut acc[lane].a {
                p.fill_assign(Torus32::ZERO);
            }
            tv.mul_by_xk_into((n2 - barb) % n2, &mut acc[lane].b);
        }
        for (i, bk_i) in self.tgsw.iter().enumerate() {
            active.clear();
            for (lane, (mask, _)) in inputs.iter().enumerate() {
                if mask[i].mod_switch(n) != 0 {
                    active.push(lane);
                }
            }
            if active.is_empty() {
                continue;
            }
            for (slot, &lane) in active.iter().enumerate() {
                let bara = inputs[lane].0[i].mod_switch(n);
                acc[lane].rotate_into(bara, &mut diff[slot]);
                diff[slot].sub_assign(&acc[lane]);
            }
            let live = active.len();
            bk_i.external_product_batch_into(&diff[..live], &self.plan, ep, &mut ext[..live]);
            for (slot, &lane) in active.iter().enumerate() {
                acc[lane].add_assign(&ext[slot]);
            }
        }
        for (lane, out) in outs.iter_mut().enumerate() {
            acc[lane].extract_lwe_into(out);
        }
    }

    /// Lockstep batched *programmable* bootstrapping with one test
    /// vector per lane: the generalization of
    /// [`BootstrappingKey::bootstrap_raw_batch_into`] that carries
    /// netlist LUT groups. Every lane's accumulator is initialized by
    /// rotating its own `tvs[lane]`; the CMUX chain that follows is
    /// test-vector independent, so lanes with different lookup tables
    /// (and even different packed widths) share one batched launch.
    /// Per-lane results are bit-identical to
    /// [`BootstrappingKey::programmable_bootstrap_into`] on the same
    /// inputs. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if lanes exceed the scratch, the slice lengths disagree,
    /// or any test vector is not `N` entries long.
    pub fn programmable_bootstrap_batch_into(
        &self,
        inputs: &[(&[Torus32], Torus32)],
        tvs: &[&TorusPoly],
        scratch: &mut BatchBootstrapScratch,
        outs: &mut [LweCiphertext],
    ) {
        let b = inputs.len();
        assert!(b > 0 && b <= scratch.ep.max_lanes(), "batch width {b} exceeds scratch");
        assert_eq!(tvs.len(), b, "one test vector per lane");
        debug_assert_eq!(outs.len(), b);
        let n = self.params.poly_size;
        let n2 = 2 * n;
        let BatchBootstrapScratch { acc, diff, ext, active, ep, tv: _ } = scratch;
        for (lane, (mask, body)) in inputs.iter().enumerate() {
            debug_assert_eq!(mask.len(), self.params.lwe_dim);
            assert_eq!(tvs[lane].len(), n, "LUT must have N entries");
            let barb = body.mod_switch(n);
            for p in &mut acc[lane].a {
                p.fill_assign(Torus32::ZERO);
            }
            tvs[lane].mul_by_xk_into((n2 - barb) % n2, &mut acc[lane].b);
        }
        for (i, bk_i) in self.tgsw.iter().enumerate() {
            active.clear();
            for (lane, (mask, _)) in inputs.iter().enumerate() {
                if mask[i].mod_switch(n) != 0 {
                    active.push(lane);
                }
            }
            if active.is_empty() {
                continue;
            }
            for (slot, &lane) in active.iter().enumerate() {
                let bara = inputs[lane].0[i].mod_switch(n);
                acc[lane].rotate_into(bara, &mut diff[slot]);
                diff[slot].sub_assign(&acc[lane]);
            }
            let live = active.len();
            bk_i.external_product_batch_into(&diff[..live], &self.plan, ep, &mut ext[..live]);
            for (slot, &lane) in active.iter().enumerate() {
                acc[lane].add_assign(&ext[slot]);
            }
        }
        for (lane, out) in outs.iter_mut().enumerate() {
            acc[lane].extract_lwe_into(out);
        }
    }
}

/// Reusable buffers for the allocation-free bootstrap path: the CMUX
/// scratch (external-product buffers plus the difference/product
/// ciphertexts of one CMUX step) and the accumulator and test-vector
/// buffers of the blind-rotation loop. Construct once per worker with
/// [`BootstrappingKey::boot_scratch`].
#[derive(Debug)]
pub struct BootstrapScratch {
    pub(crate) cs: CmuxScratch,
    acc: TlweCiphertext,
    tv: TorusPoly,
    /// NTT CMUX scratch, allocated on first use under
    /// `PYTFHE_TRANSFORM=ntt` only.
    ntt: Option<NttCmuxScratch>,
}

/// Reusable buffers for the lockstep batched bootstrap path
/// ([`BootstrappingKey::bootstrap_raw_batch_into`]): per-lane
/// accumulators plus compacted difference/product slots feeding the
/// batched external product. Construct once per worker with
/// [`BootstrappingKey::batch_scratch`].
#[derive(Debug)]
pub struct BatchBootstrapScratch {
    /// One blind-rotation accumulator per lane (indexed by lane).
    acc: Vec<TlweCiphertext>,
    /// Rotated-minus-identity differences (indexed by *compact slot*).
    diff: Vec<TlweCiphertext>,
    /// Batched external-product outputs (indexed by compact slot).
    ext: Vec<TlweCiphertext>,
    /// Lanes participating in the current CMUX step.
    active: Vec<usize>,
    ep: BatchExternalScratch,
    tv: TorusPoly,
}

impl BatchBootstrapScratch {
    /// Widest batch this scratch can serve.
    pub fn max_lanes(&self) -> usize {
        self.ep.max_lanes()
    }
}

/// Numerically checks the sign-extraction property used by `bootstrap_raw`
/// on plaintext phases (documentation of the convention, exercised in
/// tests).
#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::trace::thread_buffer_allocs;

    fn setup() -> (Params, LweKey, TlweKey, BootstrappingKey, SecureRng) {
        let params = Params::testing();
        let mut rng = SecureRng::seed_from_u64(60);
        let lwe_key = LweKey::generate(params.lwe_dim, &mut rng);
        let tlwe_key = TlweKey::generate(params.glwe_dim, params.poly_size, &mut rng);
        let bk = BootstrappingKey::generate(params, &lwe_key, &tlwe_key, &mut rng);
        (params, lwe_key, tlwe_key, bk, rng)
    }

    #[test]
    fn bootstrap_recovers_sign() {
        let (params, lwe_key, tlwe_key, bk, mut rng) = setup();
        let extracted = tlwe_key.extracted_lwe_key();
        let mu = Torus32::from_fraction(1, 3);
        let mut scratch = bk.boot_scratch();
        for (message, want_sign) in [
            (Torus32::from_fraction(1, 3), 1.0),   // +1/8
            (Torus32::from_fraction(3, 3), 1.0),   // +3/8
            (Torus32::from_fraction(-1, 3), -1.0), // -1/8
            (Torus32::from_fraction(-3, 3), -1.0), // -3/8
        ] {
            let ct = lwe_key.encrypt(message, params.lwe_noise_stdev, &mut rng);
            let boot = bk.bootstrap_raw(&ct, mu, &mut scratch);
            let phase = extracted.phase(&boot).to_f64();
            assert!(
                (phase - want_sign * 0.125).abs() < 0.03,
                "message {message}, phase {phase}, want {want_sign}*0.125"
            );
        }
    }

    #[test]
    fn bootstrap_output_noise_is_reset() {
        // Bootstrapping a somewhat noisy input still yields phase within a
        // tight band of ±mu.
        let (_params, lwe_key, tlwe_key, bk, mut rng) = setup();
        let extracted = tlwe_key.extracted_lwe_key();
        let mu = Torus32::from_fraction(1, 3);
        let mut scratch = bk.boot_scratch();
        // Noise of deviation 1e-2 is enormous compared to fresh noise but
        // keeps the phase inside the correct half-torus band.
        let ct = lwe_key.encrypt(Torus32::from_fraction(1, 3), 5e-3, &mut rng);
        let boot = bk.bootstrap_raw(&ct, mu, &mut scratch);
        let phase = extracted.phase(&boot).to_f64();
        assert!((phase - 0.125).abs() < 0.03, "phase {phase}");
    }

    #[test]
    fn programmable_bootstrap_applies_a_lookup_table() {
        // A 4-level staircase LUT: messages k/8 (k = 0..4, positive half
        // torus) map to chosen outputs — TFHE's "arbitrary lookup-table
        // operation" (paper Section II-B).
        let (params, lwe_key, tlwe_key, bk, mut rng) = setup();
        let extracted = tlwe_key.extracted_lwe_key();
        let n = params.poly_size;
        let outputs = [
            Torus32::from_fraction(1, 4),
            Torus32::from_fraction(-3, 4),
            Torus32::from_fraction(5, 4),
            Torus32::from_fraction(7, 4),
        ];
        let mut lut = TorusPoly::zero(n);
        for j in 0..n {
            lut.coeffs_mut()[j] = outputs[j / (n / 4)];
        }
        let mut scratch = bk.boot_scratch();
        for (k, &want) in outputs.iter().enumerate() {
            // Message at the centre of step k: (k + 0.5) / 8 of the torus.
            let message = Torus32::from_f64((k as f64 + 0.5) / 8.0);
            let ct = lwe_key.encrypt(message, params.lwe_noise_stdev, &mut rng);
            let out = bk.programmable_bootstrap(&ct, &lut, &mut scratch);
            let got = extracted.phase(&out);
            assert!((got - want).to_f64().abs() < 0.02, "step {k}: got {got}, want {want}");
        }
    }

    #[test]
    fn blind_rotate_with_trivial_input_reads_test_vector() {
        let (params, _lwe_key, tlwe_key, bk, mut rng) = setup();
        let n = params.poly_size;
        let tv = TorusPoly::uniform(n, &mut rng);
        let mut scratch = bk.boot_scratch();
        // A trivial LWE of message j/2N rotates the test vector by -j.
        for j in [0usize, 1, 5, n / 2] {
            let message = Torus32::from_f64(j as f64 / (2 * n) as f64);
            let ct = LweCiphertext::trivial(message, params.lwe_dim);
            let acc = bk.blind_rotate(&ct, &tv, &mut scratch);
            let phase = tlwe_key.phase(&acc);
            // Constant coefficient should be tv[j] (no sign flip for j < N).
            let got = phase.coeffs()[0];
            let want = tv.coeffs()[j];
            assert!((got - want).to_f64().abs() < 1e-3, "j={j} got {got} want {want}");
        }
    }

    #[test]
    fn bootstrap_raw_into_is_allocation_free() {
        let _g = crate::ntt::transform_guard().read().unwrap();
        let (params, lwe_key, _tlwe_key, bk, mut rng) = setup();
        let mu = Torus32::from_fraction(1, 3);
        let mut scratch = bk.boot_scratch();
        let ct = lwe_key.encrypt(mu, params.lwe_noise_stdev, &mut rng);
        let mut out = LweCiphertext::trivial(Torus32::ZERO, params.glwe_dim * params.poly_size);
        // Warm-up, then assert the steady state never touches the allocator.
        bk.bootstrap_raw_into(&ct, mu, &mut scratch, &mut out);
        let before = thread_buffer_allocs();
        bk.bootstrap_raw_into(&ct, mu, &mut scratch, &mut out);
        assert_eq!(thread_buffer_allocs() - before, 0);
    }

    #[test]
    fn batched_bootstrap_matches_single_path_bit_exactly() {
        let _g = crate::ntt::transform_guard().read().unwrap();
        let (params, lwe_key, _tlwe_key, bk, mut rng) = setup();
        let mu = Torus32::from_fraction(1, 3);
        let mut single = bk.boot_scratch();
        let mut batch = bk.batch_scratch(crate::gates::FUSE_CHUNK);
        let out_dim = params.glwe_dim * params.poly_size;
        for width in 1..=4usize {
            let cts: Vec<LweCiphertext> = (0..width)
                .map(|i| {
                    let msg = Torus32::from_fraction(if i % 2 == 0 { 1 } else { -1 }, 3);
                    lwe_key.encrypt(msg, params.lwe_noise_stdev, &mut rng)
                })
                .collect();
            let inputs: Vec<(&[Torus32], Torus32)> =
                cts.iter().map(|ct| (ct.a.as_slice(), ct.b)).collect();
            let mut outs = vec![LweCiphertext::trivial(Torus32::ZERO, out_dim); width];
            bk.bootstrap_raw_batch_into(&inputs, mu, &mut batch, &mut outs);
            for (ct, got) in cts.iter().zip(&outs) {
                let mut want = LweCiphertext::trivial(Torus32::ZERO, out_dim);
                bk.bootstrap_raw_into(ct, mu, &mut single, &mut want);
                assert_eq!(got.a, want.a, "width {width}: mask diverged");
                assert_eq!(got.b, want.b, "width {width}: body diverged");
            }
        }
    }

    #[test]
    fn batched_programmable_bootstrap_matches_single_path_bit_exactly() {
        let _g = crate::ntt::transform_guard().read().unwrap();
        let (params, lwe_key, _tlwe_key, bk, mut rng) = setup();
        let n = params.poly_size;
        let mut single = bk.boot_scratch();
        let mut batch = bk.batch_scratch(4);
        let out_dim = params.glwe_dim * params.poly_size;
        // Distinct per-lane test vectors: the whole point of the
        // generalized batch is carrying mixed lookup tables.
        let tvs: Vec<TorusPoly> = (0..4).map(|_| TorusPoly::uniform(n, &mut rng)).collect();
        for width in 1..=4usize {
            let cts: Vec<LweCiphertext> = (0..width)
                .map(|i| {
                    let msg = Torus32::from_f64((i as f64 + 0.5) / 16.0);
                    lwe_key.encrypt(msg, params.lwe_noise_stdev, &mut rng)
                })
                .collect();
            let inputs: Vec<(&[Torus32], Torus32)> =
                cts.iter().map(|ct| (ct.a.as_slice(), ct.b)).collect();
            let tv_refs: Vec<&TorusPoly> = tvs.iter().take(width).collect();
            let mut outs = vec![LweCiphertext::trivial(Torus32::ZERO, out_dim); width];
            bk.programmable_bootstrap_batch_into(&inputs, &tv_refs, &mut batch, &mut outs);
            for (lane, (ct, got)) in cts.iter().zip(&outs).enumerate() {
                let mut want = LweCiphertext::trivial(Torus32::ZERO, out_dim);
                bk.programmable_bootstrap_into(ct, &tvs[lane], &mut single, &mut want);
                assert_eq!(got.a, want.a, "width {width} lane {lane}: mask diverged");
                assert_eq!(got.b, want.b, "width {width} lane {lane}: body diverged");
            }
        }
    }

    #[test]
    fn batched_bootstrap_is_allocation_free_after_warmup() {
        let _g = crate::ntt::transform_guard().read().unwrap();
        let (params, lwe_key, _tlwe_key, bk, mut rng) = setup();
        let mu = Torus32::from_fraction(1, 3);
        let mut batch = bk.batch_scratch(3);
        let out_dim = params.glwe_dim * params.poly_size;
        let cts: Vec<LweCiphertext> =
            (0..3).map(|_| lwe_key.encrypt(mu, params.lwe_noise_stdev, &mut rng)).collect();
        let inputs: Vec<(&[Torus32], Torus32)> =
            cts.iter().map(|ct| (ct.a.as_slice(), ct.b)).collect();
        let mut outs = vec![LweCiphertext::trivial(Torus32::ZERO, out_dim); 3];
        bk.bootstrap_raw_batch_into(&inputs, mu, &mut batch, &mut outs);
        let before = thread_buffer_allocs();
        bk.bootstrap_raw_batch_into(&inputs, mu, &mut batch, &mut outs);
        assert_eq!(thread_buffer_allocs() - before, 0);
    }
}
