//! Key generation and the client/cloud key split of Figure 1 of the paper:
//! the client holds the secret [`ClientKey`]; the (untrusted) server
//! evaluates gates with the public [`ServerKey`].

use crate::bootstrap::BootstrappingKey;
use crate::keyswitch::KeySwitchKey;
use crate::lwe::{LweCiphertext, LweKey};
use crate::params::Params;
use crate::rng::SecureRng;
use crate::tlwe::TlweKey;
use crate::torus::Torus32;

/// The message amplitude of gate bootstrapping: `mu = 1/8`.
pub(crate) const MU_LOG2_DENOM: u32 = 3;

/// The client's secret key material: the LWE gate key and the TLWE
/// bootstrapping key secret.
#[derive(Debug, Clone)]
pub struct ClientKey {
    params: Params,
    lwe_key: LweKey,
    tlwe_key: TlweKey,
}

impl ClientKey {
    /// Generates a fresh client key for the given parameters.
    pub fn generate(params: Params, rng: &mut SecureRng) -> Self {
        let lwe_key = LweKey::generate(params.lwe_dim, rng);
        let tlwe_key = TlweKey::generate(params.glwe_dim, params.poly_size, rng);
        ClientKey { params, lwe_key, tlwe_key }
    }

    /// Rebuilds a client key from its parts (used by deserialization).
    pub(crate) fn from_parts(params: Params, lwe_key: LweKey, tlwe_key: TlweKey) -> Self {
        ClientKey { params, lwe_key, tlwe_key }
    }

    /// The parameter set.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The LWE gate key (crate-internal; the secret never leaves the
    /// client in the protocol).
    pub(crate) fn lwe_key(&self) -> &LweKey {
        &self.lwe_key
    }

    /// The TLWE key (crate-internal).
    pub(crate) fn tlwe_key(&self) -> &TlweKey {
        &self.tlwe_key
    }

    /// Derives the public evaluation key shipped to the cloud: the
    /// FFT-domain bootstrapping key plus the key-switching key.
    pub fn server_key(&self, rng: &mut SecureRng) -> ServerKey {
        let bootstrap = BootstrappingKey::generate(self.params, &self.lwe_key, &self.tlwe_key, rng);
        let keyswitch = KeySwitchKey::generate(
            &self.tlwe_key.extracted_lwe_key(),
            &self.lwe_key,
            self.params.ks_levels,
            self.params.ks_base_log,
            self.params.lwe_noise_stdev,
            rng,
        );
        ServerKey { params: self.params, bootstrap, keyswitch }
    }

    /// Encrypts one bit as `±1/8` with fresh noise.
    pub fn encrypt_bit(&self, bit: bool, rng: &mut SecureRng) -> LweCiphertext {
        let mu = if bit {
            Torus32::from_fraction(1, MU_LOG2_DENOM)
        } else {
            Torus32::from_fraction(-1, MU_LOG2_DENOM)
        };
        self.lwe_key.encrypt(mu, self.params.lwe_noise_stdev, rng)
    }

    /// Decrypts one bit: positive phase decodes to `true`.
    pub fn decrypt_bit(&self, ct: &LweCiphertext) -> bool {
        self.lwe_key.phase(ct).to_f64() > 0.0
    }

    /// Encrypts a little-endian bit vector (one LWE sample per bit).
    pub fn encrypt_bits(&self, bits: &[bool], rng: &mut SecureRng) -> Vec<LweCiphertext> {
        bits.iter().map(|&b| self.encrypt_bit(b, rng)).collect()
    }

    /// Decrypts a vector of bit ciphertexts.
    pub fn decrypt_bits(&self, cts: &[LweCiphertext]) -> Vec<bool> {
        cts.iter().map(|ct| self.decrypt_bit(ct)).collect()
    }

    /// The phase noise of a ciphertext that should encrypt `bit` —
    /// diagnostic, used by noise-budget tests and failure injection.
    pub fn noise_of(&self, ct: &LweCiphertext, bit: bool) -> f64 {
        let mu = if bit {
            Torus32::from_fraction(1, MU_LOG2_DENOM)
        } else {
            Torus32::from_fraction(-1, MU_LOG2_DENOM)
        };
        (self.lwe_key.phase(ct) - mu).to_f64()
    }
}

/// The public evaluation key: everything the untrusted server needs to run
/// bootstrapped gates, and nothing that reveals the plaintexts.
#[derive(Debug, Clone)]
pub struct ServerKey {
    pub(crate) params: Params,
    pub(crate) bootstrap: BootstrappingKey,
    pub(crate) keyswitch: KeySwitchKey,
}

impl ServerKey {
    /// The parameter set.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The bootstrapping key.
    pub fn bootstrapping_key(&self) -> &BootstrappingKey {
        &self.bootstrap
    }

    /// The key-switching key.
    pub fn keyswitch_key(&self) -> &KeySwitchKey {
        &self.keyswitch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypt_decrypt_bits() {
        let mut rng = SecureRng::seed_from_u64(70);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        for bit in [false, true] {
            let ct = client.encrypt_bit(bit, &mut rng);
            assert_eq!(client.decrypt_bit(&ct), bit);
            assert!(client.noise_of(&ct, bit).abs() < 1e-4);
        }
        let bits = vec![true, false, true, true, false];
        let cts = client.encrypt_bits(&bits, &mut rng);
        assert_eq!(client.decrypt_bits(&cts), bits);
    }

    #[test]
    fn different_keys_decrypt_garbage() {
        let mut rng = SecureRng::seed_from_u64(71);
        let c1 = ClientKey::generate(Params::testing(), &mut rng);
        let c2 = ClientKey::generate(Params::testing(), &mut rng);
        let mut wrong = 0;
        for i in 0..64 {
            let ct = c1.encrypt_bit(i % 2 == 0, &mut rng);
            // Phase under the wrong key is essentially uniform.
            if c2.noise_of(&ct, i % 2 == 0).abs() > 0.05 {
                wrong += 1;
            }
        }
        assert!(wrong > 32, "wrong-key decryption should look random, got {wrong}/64 noisy");
    }
}
