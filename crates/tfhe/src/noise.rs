//! Noise-budget analysis: predicted error variances for the scheme's
//! operations, validated empirically by the test suite.
//!
//! LWE security rests on noise (Section II-A of the paper), and noise
//! growth is what forces bootstrapping. This module implements the
//! standard variance formulas of the CGGI paper so applications can
//! reason about decryption-failure probabilities, and the tests compare
//! the predictions against noise measured through the real
//! implementation.

use crate::error::TfheError;
use crate::params::Params;

/// Predicted error *variance* (torus units squared) at various points of
/// the pipeline, for a given parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    params: Params,
}

impl NoiseModel {
    /// Builds the model for a parameter set.
    pub fn new(params: Params) -> Self {
        NoiseModel { params }
    }

    /// Variance of a fresh LWE encryption.
    pub fn fresh_lwe(&self) -> f64 {
        self.params.lwe_noise_stdev * self.params.lwe_noise_stdev
    }

    /// Variance after the linear phase of a binary gate
    /// (`±a ±b + const`): two fresh samples add.
    pub fn gate_linear(&self) -> f64 {
        2.0 * self.fresh_lwe()
    }

    /// Variance after the linear phase of an XOR/XNOR gate
    /// (`2(a + b) + const`): scaling by 2 quadruples each variance.
    pub fn xor_linear(&self) -> f64 {
        8.0 * self.fresh_lwe()
    }

    /// Variance contributed by the blind rotation (external products):
    /// `n · (k+1) · l · N · (Bg/2)^2 · σ_bk²` plus the gadget
    /// reconstruction error `n · (1 + k·N) · ε²` with
    /// `ε = 1 / (2 · Bg^l)`.
    pub fn blind_rotation(&self) -> f64 {
        let p = &self.params;
        let n = p.lwe_dim as f64;
        let k = p.glwe_dim as f64;
        let l = p.decomp_levels as f64;
        let big_n = p.poly_size as f64;
        let bg = (1u64 << p.decomp_base_log) as f64;
        let sigma_bk2 = p.glwe_noise_stdev * p.glwe_noise_stdev;
        let eps = 1.0 / (2.0 * bg.powf(l));
        n * (k + 1.0) * l * big_n * (bg / 2.0) * (bg / 2.0) * sigma_bk2
            + n * (1.0 + k * big_n) * eps * eps
    }

    /// Variance added by the key switch:
    /// `N·k · t · σ_ks²` (one sample subtraction per digit) plus the
    /// rounding error `N·k / 12 · base^{-2t} `.
    pub fn key_switch(&self) -> f64 {
        let p = &self.params;
        let src = (p.glwe_dim * p.poly_size) as f64;
        let t = p.ks_levels as f64;
        let sigma2 = p.lwe_noise_stdev * p.lwe_noise_stdev;
        let base = (1u64 << p.ks_base_log) as f64;
        src * t * sigma2 + src / 12.0 * base.powf(-2.0 * t)
    }

    /// Total variance of a bootstrapped-gate output (blind rotation plus
    /// key switch) — the "fresh" noise level every gate resets to.
    pub fn gate_output(&self) -> f64 {
        self.blind_rotation() + self.key_switch()
    }

    /// The phase margin of gate bootstrapping: correctness requires the
    /// pre-bootstrap phase to stay within 1/16 of its nominal ±1/8 band
    /// (plus the mod-switch rounding analyzed separately).
    pub fn gate_margin(&self) -> f64 {
        1.0 / 16.0
    }

    /// Standard deviation of the mod-switch rounding error:
    /// `sqrt(n/12) / (2N)` for `n` uniformly-rounded coefficients.
    pub fn mod_switch_stdev(&self) -> f64 {
        let p = &self.params;
        ((p.lwe_dim as f64 + 1.0) / 12.0).sqrt() / (2.0 * p.poly_size as f64)
    }

    /// Publishes the model's predictions as telemetry gauges, so every
    /// exported trace/metrics dump carries the noise budget the run was
    /// operating under. No-op when telemetry is disabled.
    pub fn record_gauges(&self) {
        if !pytfhe_telemetry::enabled() {
            return;
        }
        let m = pytfhe_telemetry::metrics();
        m.gauge_set("tfhe_noise_fresh_lwe_variance", self.fresh_lwe());
        m.gauge_set("tfhe_noise_blind_rotation_variance", self.blind_rotation());
        m.gauge_set("tfhe_noise_key_switch_variance", self.key_switch());
        m.gauge_set("tfhe_noise_gate_output_variance", self.gate_output());
        m.gauge_set("tfhe_gate_failure_probability", self.gate_failure_probability());
    }

    /// A (crude, union-bound-free) estimate of the per-gate failure
    /// probability: the chance a Gaussian with the combined pre-rotation
    /// deviation leaves the margin.
    pub fn gate_failure_probability(&self) -> f64 {
        let stdev = (self.xor_linear() + self.gate_output()).sqrt();
        let combined = (stdev * stdev + self.mod_switch_stdev().powi(2)).sqrt();
        let z = self.gate_margin() / combined;
        erfc(z / std::f64::consts::SQRT_2)
    }

    /// The phase margin of a `precision_bits` message window: messages
    /// are encoded at window centres `(m + 0.5) / 2^(p+1)`, so decode
    /// survives any phase error below half a window, `1 / 2^(p+2)`.
    pub fn message_margin(&self, precision_bits: u32) -> f64 {
        1.0 / f64::from(1u32 << (precision_bits + 2))
    }

    /// Decode-failure probability of a programmable bootstrap whose
    /// input is a linear combination with squared-coefficient sum
    /// `coeff_sq_sum` of bootstrapped-gate-output ciphertexts, decoded
    /// at `precision_bits`: the chance a Gaussian with deviation
    /// `sqrt(coeff_sq_sum · gate_output + mod_switch²)` leaves the
    /// half-window margin.
    ///
    /// A width-`w` boolean LUT packs its inputs with coefficients
    /// `2^i` (`i < w`), so its `coeff_sq_sum` is `(4^w − 1) / 3`; a
    /// shortint bivariate op packing `lhs · 2^m + rhs` has
    /// `4^m + 1` (times the operands' own linear depth).
    pub fn lut_failure_probability(&self, precision_bits: u32, coeff_sq_sum: f64) -> f64 {
        let variance = coeff_sq_sum * self.gate_output() + self.mod_switch_stdev().powi(2);
        let z = self.message_margin(precision_bits) / variance.sqrt();
        erfc(z / std::f64::consts::SQRT_2)
    }

    /// Squared-coefficient sum of a width-`w` boolean LUT packing
    /// (`Σ_{i<w} 4^i`).
    pub fn boolean_pack_coeff_sq_sum(width: u32) -> f64 {
        (((1u64 << (2 * width)) - 1) / 3) as f64
    }

    /// The widest boolean LUT whose packed decode-failure probability
    /// stays within `budget` on this parameter set (0 when even a
    /// width-1 message window cannot be decoded reliably). Capped at 4,
    /// the widest cone the netlist LUT-cover pass emits.
    pub fn max_lut_width(&self, budget: f64) -> u32 {
        let mut widest = 0;
        for w in 1..=4u32 {
            if self.lut_failure_probability(w, Self::boolean_pack_coeff_sq_sum(w)) <= budget {
                widest = w;
            }
        }
        widest
    }
}

/// Admission guardrail on an evaluation key's analytical noise budget.
///
/// A parameter set that predicts too high a decode-failure probability
/// will corrupt results silently — a bootstrapped gate that fails does
/// not error, it returns the wrong bit. The guard turns that into an
/// explicit admission decision: sessions check
/// [`NoiseGuard::admit`] at key-install time, and shortint keygen
/// checks [`NoiseGuard::admit_lut`] so precisions the parameters cannot
/// decode are refused with a typed error instead of failing silently at
/// runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseGuard {
    /// Maximum acceptable analytical failure probability (per gate or
    /// per programmable bootstrap, depending on the check).
    pub max_gate_failure_probability: f64,
}

impl Default for NoiseGuard {
    fn default() -> Self {
        // 2^-40 (~9e-13): real parameter sets sit tens of orders of
        // magnitude below this (`default_128` predicts ~2e-48), while
        // the deliberately weak `Params::testing` (~6e-12) trips it.
        NoiseGuard { max_gate_failure_probability: 2f64.powi(-40) }
    }
}

impl NoiseGuard {
    /// A guard admitting keys whose predicted failure probability is at
    /// most `p`.
    pub fn max_probability(p: f64) -> Self {
        NoiseGuard { max_gate_failure_probability: p }
    }

    /// Checks `params` against the guard for boolean gate
    /// bootstrapping, returning the predicted probability on success.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::NoiseBudgetExceeded`] when the prediction
    /// exceeds the threshold.
    pub fn admit(&self, params: &Params) -> Result<f64, TfheError> {
        self.check(NoiseModel::new(*params).gate_failure_probability())
    }

    /// Checks `params` against the guard for packed programmable
    /// bootstrapping at `precision_bits` with squared-coefficient sum
    /// `coeff_sq_sum` (see [`NoiseModel::lut_failure_probability`]),
    /// returning the predicted probability on success.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::NoiseBudgetExceeded`] when the prediction
    /// exceeds the threshold.
    pub fn admit_lut(
        &self,
        params: &Params,
        precision_bits: u32,
        coeff_sq_sum: f64,
    ) -> Result<f64, TfheError> {
        self.check(NoiseModel::new(*params).lut_failure_probability(precision_bits, coeff_sq_sum))
    }

    fn check(&self, p: f64) -> Result<f64, TfheError> {
        if p > self.max_gate_failure_probability {
            return Err(TfheError::NoiseBudgetExceeded {
                probability_atto: to_atto(p),
                threshold_atto: to_atto(self.max_gate_failure_probability),
            });
        }
        Ok(p)
    }
}

/// Probability → integral atto-units (the representation
/// [`TfheError::NoiseBudgetExceeded`] carries to stay `Eq`).
fn to_atto(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * 1e18).round() as u64
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 polynomial,
/// |error| < 1.5e-7 — ample for failure-probability estimates).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let result = poly * (-x * x).exp();
    if sign_negative {
        2.0 - result
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientKey, SecureRng};

    #[test]
    fn default_params_have_negligible_failure_probability() {
        let model = NoiseModel::new(Params::default_128());
        let p = model.gate_failure_probability();
        assert!(p < 1e-9, "per-gate failure probability {p}");
        assert!(model.gate_output() < model.gate_margin() * model.gate_margin());
    }

    #[test]
    fn testing_params_are_also_reliable() {
        let model = NoiseModel::new(Params::testing());
        let p = model.gate_failure_probability();
        assert!(p < 1e-6, "testing-parameter failure probability {p}");
    }

    #[test]
    fn shortint_params_admit_width_four_luts() {
        // The whole point of the shortint parameter sets: a width-4
        // packed LUT decodes within the default 2^-40 budget.
        let budget = NoiseGuard::default().max_gate_failure_probability;
        for params in [Params::testing_shortint(), Params::shortint_128()] {
            let model = NoiseModel::new(params);
            assert_eq!(model.max_lut_width(budget), 4, "{params:?}");
            let guard = NoiseGuard::default();
            assert!(guard.admit_lut(&params, 4, NoiseModel::boolean_pack_coeff_sq_sum(4)).is_ok());
        }
    }

    #[test]
    fn boolean_testing_params_cannot_decode_multibit_windows() {
        // `Params::testing` has an N=128 ring: a 1-bit LUT rides the
        // same 1/8 margin as gate bootstrapping and squeaks through,
        // but from 2 bits on the halved window loses to the mod-switch
        // rounding noise. Multi-bit work needs `testing_shortint`.
        let model = NoiseModel::new(Params::testing());
        let budget = NoiseGuard::default().max_gate_failure_probability;
        assert_eq!(model.max_lut_width(budget), 1);
        let err = NoiseGuard::default()
            .admit_lut(&Params::testing(), 3, NoiseModel::boolean_pack_coeff_sq_sum(3))
            .expect_err("testing params must refuse 3-bit LUTs");
        assert!(matches!(err, TfheError::NoiseBudgetExceeded { .. }), "{err:?}");
    }

    #[test]
    fn lut_failure_grows_with_precision_and_packing() {
        let model = NoiseModel::new(Params::testing_shortint());
        // More precision bits → smaller window → higher failure.
        assert!(model.lut_failure_probability(4, 1.0) > model.lut_failure_probability(2, 1.0));
        // Wider packing → more noise → higher failure.
        assert!(model.lut_failure_probability(4, 85.0) > model.lut_failure_probability(4, 5.0));
        // Margins halve per extra bit.
        assert!((model.message_margin(2) - 1.0 / 16.0).abs() < 1e-12);
        assert!((model.message_margin(4) - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn pack_coeff_sums_match_geometric_series() {
        assert_eq!(NoiseModel::boolean_pack_coeff_sq_sum(1), 1.0);
        assert_eq!(NoiseModel::boolean_pack_coeff_sq_sum(2), 5.0);
        assert_eq!(NoiseModel::boolean_pack_coeff_sq_sum(3), 21.0);
        assert_eq!(NoiseModel::boolean_pack_coeff_sq_sum(4), 85.0);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!(erfc(5.0) < 2e-12);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
    }

    #[test]
    fn measured_fresh_noise_matches_prediction() {
        let params = Params::testing();
        let model = NoiseModel::new(params);
        let mut rng = SecureRng::seed_from_u64(2718);
        let client = ClientKey::generate(params, &mut rng);
        let n = 4000;
        let mut sum_sq = 0.0;
        for i in 0..n {
            let ct = client.encrypt_bit(i % 2 == 0, &mut rng);
            let e = client.noise_of(&ct, i % 2 == 0);
            sum_sq += e * e;
        }
        let measured = sum_sq / n as f64;
        let predicted = model.fresh_lwe();
        let ratio = measured / predicted;
        assert!((0.8..1.25).contains(&ratio), "measured/predicted variance ratio {ratio}");
    }

    #[test]
    fn measured_gate_noise_within_predicted_band() {
        // Gate outputs must carry more noise than fresh encryptions but
        // stay well below the decryption margin.
        let params = Params::testing();
        let model = NoiseModel::new(params);
        let mut rng = SecureRng::seed_from_u64(2719);
        let client = ClientKey::generate(params, &mut rng);
        let server = client.server_key(&mut rng);
        let mut scratch = server.gate_scratch();
        let mut max_err: f64 = 0.0;
        for i in 0..32 {
            let a = client.encrypt_bit(i % 2 == 0, &mut rng);
            let b = client.encrypt_bit(i % 3 == 0, &mut rng);
            let out = server.nand_with(&a, &b, &mut scratch);
            let want = !((i % 2 == 0) && (i % 3 == 0));
            let e = client.noise_of(&out, want).abs();
            max_err = max_err.max(e);
        }
        let predicted_stdev = model.gate_output().sqrt();
        assert!(max_err < 8.0 * predicted_stdev, "max err {max_err}, σ {predicted_stdev}");
        assert!(max_err < model.gate_margin(), "errors stay inside the margin");
    }
}
