//! The bootstrapped binary gates of PyTFHE — the eleven gates of the
//! binary format plus trivial constants.
//!
//! Every binary gate follows the TFHE-library recipe:
//!
//! 1. a linear combination of the input ciphertexts plus a plaintext
//!    offset places the correct answer's phase in `(0, 1/2)` and the wrong
//!    answer's in `(-1/2, 0)`;
//! 2. a blind rotation against the constant test vector `mu = 1/8` maps
//!    the sign of that phase to a fresh `±1/8` encryption (resetting the
//!    noise);
//! 3. a key switch returns the sample to the gate dimension `n`.
//!
//! Steps 2 and 3 are the "Blind Rotation" and "Key Switching" segments of
//! the paper's Figure 7 profile.

use crate::keys::{ServerKey, MU_LOG2_DENOM};
use crate::lwe::LweCiphertext;
use crate::tgsw::ExternalProductScratch;
use crate::torus::Torus32;

/// Timing breakdown of one gate evaluation, used to regenerate Figure 7.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GateProfile {
    /// Seconds spent in blind rotation (incl. sample extraction).
    pub blind_rotation_s: f64,
    /// Seconds spent in key switching.
    pub key_switching_s: f64,
    /// Seconds spent in the linear phase (negligible).
    pub linear_s: f64,
}

impl GateProfile {
    /// Total gate time.
    pub fn total_s(&self) -> f64 {
        self.blind_rotation_s + self.key_switching_s + self.linear_s
    }
}

impl ServerKey {
    fn mu() -> Torus32 {
        Torus32::from_fraction(1, MU_LOG2_DENOM)
    }

    /// Core bootstrapped-gate path: bootstrap `combo` to `±1/8`, then key
    /// switch to dimension `n`.
    fn finish(&self, combo: &LweCiphertext, scratch: &mut ExternalProductScratch) -> LweCiphertext {
        let raw = self.bootstrap.bootstrap_raw(combo, Self::mu(), scratch);
        self.keyswitch.switch(&raw)
    }

    /// Allocates reusable scratch for gate evaluation (one per worker
    /// thread).
    pub fn gate_scratch(&self) -> ExternalProductScratch {
        self.bootstrap.scratch()
    }

    /// `NAND` with caller-provided scratch (the hot-path API the backends
    /// use). All other `_with` gates follow the same pattern.
    pub fn nand_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, 1/8) - a - b
        let mut c = LweCiphertext::trivial(Self::mu(), self.params.lwe_dim);
        c.sub_assign(a);
        c.sub_assign(b);
        self.finish(&c, scratch)
    }

    /// `AND`.
    pub fn and_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, -1/8) + a + b
        let mut c = LweCiphertext::trivial(-Self::mu(), self.params.lwe_dim);
        c.add_assign(a);
        c.add_assign(b);
        self.finish(&c, scratch)
    }

    /// `OR`.
    pub fn or_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, 1/8) + a + b
        let mut c = LweCiphertext::trivial(Self::mu(), self.params.lwe_dim);
        c.add_assign(a);
        c.add_assign(b);
        self.finish(&c, scratch)
    }

    /// `NOR`.
    pub fn nor_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, -1/8) - a - b
        let mut c = LweCiphertext::trivial(-Self::mu(), self.params.lwe_dim);
        c.sub_assign(a);
        c.sub_assign(b);
        self.finish(&c, scratch)
    }

    /// `XOR`.
    pub fn xor_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, 1/4) + 2*(a + b)
        let mut c = a.clone();
        c.add_assign(b);
        c.scale(2);
        let mut offset = LweCiphertext::trivial(Torus32::from_fraction(1, 2), self.params.lwe_dim);
        offset.add_assign(&c);
        self.finish(&offset, scratch)
    }

    /// `XNOR`.
    pub fn xnor_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, -1/4) - 2*(a + b)
        let mut c = a.clone();
        c.add_assign(b);
        c.scale(-2);
        let mut offset = LweCiphertext::trivial(Torus32::from_fraction(-1, 2), self.params.lwe_dim);
        offset.add_assign(&c);
        self.finish(&offset, scratch)
    }

    /// `ANDNY` = `!a & b`.
    pub fn andny_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, -1/8) - a + b
        let mut c = LweCiphertext::trivial(-Self::mu(), self.params.lwe_dim);
        c.sub_assign(a);
        c.add_assign(b);
        self.finish(&c, scratch)
    }

    /// `ANDYN` = `a & !b`.
    pub fn andyn_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, -1/8) + a - b
        let mut c = LweCiphertext::trivial(-Self::mu(), self.params.lwe_dim);
        c.add_assign(a);
        c.sub_assign(b);
        self.finish(&c, scratch)
    }

    /// `ORNY` = `!a | b`.
    pub fn orny_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, 1/8) - a + b
        let mut c = LweCiphertext::trivial(Self::mu(), self.params.lwe_dim);
        c.sub_assign(a);
        c.add_assign(b);
        self.finish(&c, scratch)
    }

    /// `ORYN` = `a | !b`.
    pub fn oryn_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // (0, 1/8) + a - b
        let mut c = LweCiphertext::trivial(Self::mu(), self.params.lwe_dim);
        c.add_assign(a);
        c.sub_assign(b);
        self.finish(&c, scratch)
    }

    /// `NOT` — a free negation, no bootstrapping required.
    pub fn not(&self, a: &LweCiphertext) -> LweCiphertext {
        let mut c = a.clone();
        c.negate();
        c
    }

    /// A trivial encryption of a constant bit, decryptable under any key.
    pub fn constant(&self, bit: bool) -> LweCiphertext {
        let mu = if bit { Self::mu() } else { -Self::mu() };
        LweCiphertext::trivial(mu, self.params.lwe_dim)
    }

    /// `MUX(s, a, b) = s ? a : b` — the TFHE-library bonus gate, built from
    /// two bootstraps and one key switch.
    pub fn mux_with(
        &self,
        s: &LweCiphertext,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut ExternalProductScratch,
    ) -> LweCiphertext {
        // t1 = bootstrap(s AND a), t2 = bootstrap(!s AND b), out = KS(t1 + t2 + 1/8).
        let mut c1 = LweCiphertext::trivial(-Self::mu(), self.params.lwe_dim);
        c1.add_assign(s);
        c1.add_assign(a);
        let u1 = self.bootstrap.bootstrap_raw(&c1, Self::mu(), scratch);
        let mut c2 = LweCiphertext::trivial(-Self::mu(), self.params.lwe_dim);
        c2.sub_assign(s);
        c2.add_assign(b);
        let u2 = self.bootstrap.bootstrap_raw(&c2, Self::mu(), scratch);
        let mut sum = LweCiphertext::trivial(Self::mu(), self.keyswitch.src_dim());
        sum.add_assign(&u1);
        sum.add_assign(&u2);
        self.keyswitch.switch(&sum)
    }

    /// Convenience allocation-per-call variants of every gate.
    pub fn nand(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.nand_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::and_with`].
    pub fn and(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.and_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::or_with`].
    pub fn or(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.or_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::nor_with`].
    pub fn nor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.nor_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::xor_with`].
    pub fn xor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.xor_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::xnor_with`].
    pub fn xnor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.xnor_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::andny_with`].
    pub fn andny(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.andny_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::andyn_with`].
    pub fn andyn(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.andyn_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::orny_with`].
    pub fn orny(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.orny_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::oryn_with`].
    pub fn oryn(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.oryn_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::mux_with`].
    pub fn mux(&self, s: &LweCiphertext, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.mux_with(s, a, b, &mut self.gate_scratch())
    }

    /// Evaluates one gate while timing its phases — the measurement behind
    /// the Figure 7 reproduction.
    pub fn profile_nand(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
    ) -> (LweCiphertext, GateProfile) {
        use std::time::Instant;
        let mut scratch = self.gate_scratch();
        let t0 = Instant::now();
        let mut c = LweCiphertext::trivial(Self::mu(), self.params.lwe_dim);
        c.sub_assign(a);
        c.sub_assign(b);
        let t1 = Instant::now();
        let raw = self.bootstrap.bootstrap_raw(&c, Self::mu(), &mut scratch);
        let t2 = Instant::now();
        let out = self.keyswitch.switch(&raw);
        let t3 = Instant::now();
        let profile = GateProfile {
            linear_s: (t1 - t0).as_secs_f64(),
            blind_rotation_s: (t2 - t1).as_secs_f64(),
            key_switching_s: (t3 - t2).as_secs_f64(),
        };
        (out, profile)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClientKey, Params, SecureRng, ServerKey};

    fn setup() -> (ClientKey, ServerKey, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(80);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        (client, server, rng)
    }

    #[test]
    fn all_binary_gates_truth_tables() {
        let (client, server, mut rng) = setup();
        type GateFn =
            fn(&ServerKey, &crate::LweCiphertext, &crate::LweCiphertext) -> crate::LweCiphertext;
        type GateCase = (&'static str, GateFn, fn(bool, bool) -> bool);
        let gates: [GateCase; 10] = [
            ("nand", ServerKey::nand, |a, b| !(a && b)),
            ("and", ServerKey::and, |a, b| a && b),
            ("or", ServerKey::or, |a, b| a || b),
            ("nor", ServerKey::nor, |a, b| !(a || b)),
            ("xor", ServerKey::xor, |a, b| a ^ b),
            ("xnor", ServerKey::xnor, |a, b| !(a ^ b)),
            ("andny", ServerKey::andny, |a, b| !a && b),
            ("andyn", ServerKey::andyn, |a, b| a && !b),
            ("orny", ServerKey::orny, |a, b| !a || b),
            ("oryn", ServerKey::oryn, |a, b| a || !b),
        ];
        for (name, gate, oracle) in gates {
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let ca = client.encrypt_bit(a, &mut rng);
                let cb = client.encrypt_bit(b, &mut rng);
                let out = gate(&server, &ca, &cb);
                assert_eq!(client.decrypt_bit(&out), oracle(a, b), "{name}({a}, {b})");
            }
        }
    }

    #[test]
    fn not_and_constants() {
        let (client, server, mut rng) = setup();
        for bit in [false, true] {
            let ct = client.encrypt_bit(bit, &mut rng);
            assert_eq!(client.decrypt_bit(&server.not(&ct)), !bit);
            assert_eq!(client.decrypt_bit(&server.constant(bit)), bit);
        }
    }

    #[test]
    fn mux_selects() {
        let (client, server, mut rng) = setup();
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let cs = client.encrypt_bit(s, &mut rng);
                    let ca = client.encrypt_bit(a, &mut rng);
                    let cb = client.encrypt_bit(b, &mut rng);
                    let out = server.mux(&cs, &ca, &cb);
                    assert_eq!(client.decrypt_bit(&out), if s { a } else { b }, "mux({s},{a},{b})");
                }
            }
        }
    }

    #[test]
    fn gates_chain_arbitrarily_deep() {
        // The whole point of bootstrapping: noise does not accumulate.
        let (client, server, mut rng) = setup();
        let mut ct = client.encrypt_bit(true, &mut rng);
        let one = client.encrypt_bit(true, &mut rng);
        let mut value = true;
        for _ in 0..24 {
            ct = server.nand(&ct, &one);
            value = !value; // nand(x, 1) == !x
            assert_eq!(client.decrypt_bit(&ct), value);
        }
    }

    #[test]
    fn profile_reports_nonzero_phases() {
        let (client, server, mut rng) = setup();
        let a = client.encrypt_bit(true, &mut rng);
        let b = client.encrypt_bit(true, &mut rng);
        let (out, profile) = server.profile_nand(&a, &b);
        assert!(!client.decrypt_bit(&out));
        assert!(profile.blind_rotation_s > 0.0);
        assert!(profile.key_switching_s > 0.0);
        assert!(
            profile.blind_rotation_s > profile.key_switching_s,
            "blind rotation dominates (Figure 7)"
        );
        assert!(profile.total_s() > 0.0);
    }
}
