//! The bootstrapped binary gates of PyTFHE — the eleven gates of the
//! binary format plus trivial constants.
//!
//! Every binary gate follows the TFHE-library recipe:
//!
//! 1. a linear combination of the input ciphertexts plus a plaintext
//!    offset places the correct answer's phase in `(0, 1/2)` and the wrong
//!    answer's in `(-1/2, 0)`;
//! 2. a blind rotation against the constant test vector `mu = 1/8` maps
//!    the sign of that phase to a fresh `±1/8` encryption (resetting the
//!    noise);
//! 3. a key switch returns the sample to the gate dimension `n`.
//!
//! Steps 2 and 3 are the "Blind Rotation" and "Key Switching" segments of
//! the paper's Figure 7 profile.

use crate::bootstrap::{BatchBootstrapScratch, BootstrapScratch, BootstrappingKey};
use crate::keys::{ServerKey, MU_LOG2_DENOM};
use crate::lut::PackedLutTables;
use crate::lwe::{LweCiphertext, LweSoa};
use crate::poly::TorusPoly;
use crate::torus::Torus32;

/// The ten bootstrapped binary gates, as data: each is a linear
/// combination `offset + ca·a + cb·b` followed by the same
/// bootstrap-and-key-switch tail. Naming this set lets batched executors
/// group gates of one kind into a single kernel over struct-of-arrays
/// slots (the paper's CUDA-graph batching, Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BootGate {
    /// `!(a & b)`
    Nand,
    /// `a & b`
    And,
    /// `a | b`
    Or,
    /// `!(a | b)`
    Nor,
    /// `a ^ b`
    Xor,
    /// `!(a ^ b)`
    Xnor,
    /// `!a & b`
    Andny,
    /// `a & !b`
    Andyn,
    /// `!a | b`
    Orny,
    /// `a | !b`
    Oryn,
}

impl BootGate {
    /// All ten gates, for exhaustive tests.
    pub const ALL: [BootGate; 10] = [
        BootGate::Nand,
        BootGate::And,
        BootGate::Or,
        BootGate::Nor,
        BootGate::Xor,
        BootGate::Xnor,
        BootGate::Andny,
        BootGate::Andyn,
        BootGate::Orny,
        BootGate::Oryn,
    ];

    /// Lower-case gate name, used as the `gate` label on telemetry
    /// metrics (`tfhe_blind_rotate_seconds{gate="nand"}`).
    pub fn name(self) -> &'static str {
        match self {
            BootGate::Nand => "nand",
            BootGate::And => "and",
            BootGate::Or => "or",
            BootGate::Nor => "nor",
            BootGate::Xor => "xor",
            BootGate::Xnor => "xnor",
            BootGate::Andny => "andny",
            BootGate::Andyn => "andyn",
            BootGate::Orny => "orny",
            BootGate::Oryn => "oryn",
        }
    }

    /// The plaintext truth table (for test oracles).
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BootGate::Nand => !(a && b),
            BootGate::And => a && b,
            BootGate::Or => a || b,
            BootGate::Nor => !(a || b),
            BootGate::Xor => a ^ b,
            BootGate::Xnor => !(a ^ b),
            BootGate::Andny => !a && b,
            BootGate::Andyn => a && !b,
            BootGate::Orny => !a || b,
            BootGate::Oryn => a || !b,
        }
    }

    /// The linear-combination recipe `(offset, ca, cb)` placing the
    /// correct answer's phase in `(0, 1/2)`.
    fn spec(self) -> (Torus32, i32, i32) {
        let mu = Torus32::from_fraction(1, MU_LOG2_DENOM);
        let quarter = Torus32::from_fraction(1, 2);
        match self {
            BootGate::Nand => (mu, -1, -1),
            BootGate::And => (-mu, 1, 1),
            BootGate::Or => (mu, 1, 1),
            BootGate::Nor => (-mu, -1, -1),
            BootGate::Xor => (quarter, 2, 2),
            BootGate::Xnor => (-quarter, -2, -2),
            BootGate::Andny => (-mu, -1, 1),
            BootGate::Andyn => (-mu, 1, -1),
            BootGate::Orny => (mu, -1, 1),
            BootGate::Oryn => (mu, 1, -1),
        }
    }
}

/// Slots per fused stage-and-bootstrap chunk of
/// [`ServerKey::batch_bootstrap_fused`]: small enough that a chunk's
/// staged struct-of-arrays masks (`FUSE_CHUNK · n` torus words) stay in
/// L1/L2 between the staging pass and the bootstrap that consumes them,
/// large enough to amortize the per-chunk SoA reset.
pub const FUSE_CHUNK: usize = 8;

/// All scratch a worker needs to evaluate gates without allocating: the
/// bootstrap buffers plus LWE staging for the linear combination, the raw
/// (pre-key-switch) samples, and the struct-of-arrays slots used by
/// [`ServerKey::batch_bootstrap`]. One per worker thread.
#[derive(Debug)]
pub struct GateScratch {
    pub(crate) boot: BootstrapScratch,
    pub(crate) batch: BatchBootstrapScratch,
    pub(crate) combo: LweCiphertext,
    pub(crate) raw: LweCiphertext,
    raw2: LweCiphertext,
    sum: LweCiphertext,
    pub(crate) raws: Vec<LweCiphertext>,
    pub(crate) soa: LweSoa,
    /// Reusable test-vector buffer for [`ServerKey::apply_lut_into`].
    pub(crate) tv_buf: TorusPoly,
    /// Compiled boolean-LUT test vectors (`crate::lut`), cached per worker.
    pub(crate) luts: PackedLutTables,
}

/// Timing breakdown of one gate evaluation, used to regenerate Figure 7.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GateProfile {
    /// Seconds spent in blind rotation (incl. sample extraction).
    pub blind_rotation_s: f64,
    /// Seconds spent in key switching.
    pub key_switching_s: f64,
    /// Seconds spent in the linear phase (negligible).
    pub linear_s: f64,
}

impl GateProfile {
    /// Total gate time.
    pub fn total_s(&self) -> f64 {
        self.blind_rotation_s + self.key_switching_s + self.linear_s
    }
}

/// Records one gate's blind-rotate/key-switch timing split into the
/// per-gate-kind histograms — the live data behind the Figure 7
/// reproduction. Only called when telemetry is enabled.
#[cold]
fn record_gate_split(gate: BootGate, blind_rotate_s: f64, key_switch_s: f64) {
    let m = pytfhe_telemetry::metrics();
    let name = gate.name();
    m.observe_seconds(&format!("tfhe_blind_rotate_seconds{{gate=\"{name}\"}}"), blind_rotate_s);
    m.observe_seconds(&format!("tfhe_key_switch_seconds{{gate=\"{name}\"}}"), key_switch_s);
    m.counter_add("tfhe_bootstraps_total", 1);
}

impl ServerKey {
    fn mu() -> Torus32 {
        Torus32::from_fraction(1, MU_LOG2_DENOM)
    }

    /// Accumulates `coeff * ct` into `out` without allocating
    /// (coefficients are the small integers of the gate recipes). Runs
    /// through the dispatched [`crate::simd`] `axpy` kernel; wrapping
    /// multiply-accumulate is bit-identical to `|coeff|` repeated
    /// additions/subtractions mod 2^32.
    pub(crate) fn axpy(out: &mut LweCiphertext, coeff: i32, ct: &LweCiphertext) {
        crate::simd::kernels().axpy(out.mask_mut(), coeff, ct.mask());
        out.b += coeff * ct.body();
    }

    /// Stages the linear combination of `gate` into `out`.
    fn combo_into(
        &self,
        gate: BootGate,
        a: &LweCiphertext,
        b: &LweCiphertext,
        out: &mut LweCiphertext,
    ) {
        let (offset, ca, cb) = gate.spec();
        out.assign_trivial(offset, self.params.lwe_dim);
        Self::axpy(out, ca, a);
        Self::axpy(out, cb, b);
    }

    /// Allocates reusable scratch for gate evaluation (one per worker
    /// thread). Once constructed, [`ServerKey::gate_into`] and
    /// [`ServerKey::batch_bootstrap`] run with zero heap allocation.
    pub fn gate_scratch(&self) -> GateScratch {
        let n = self.params.lwe_dim;
        let ext_dim = self.keyswitch.src_dim();
        GateScratch {
            boot: self.bootstrap.boot_scratch(),
            batch: self.bootstrap.batch_scratch(FUSE_CHUNK),
            combo: LweCiphertext::trivial(Torus32::ZERO, n),
            raw: LweCiphertext::trivial(Torus32::ZERO, ext_dim),
            raw2: LweCiphertext::trivial(Torus32::ZERO, ext_dim),
            sum: LweCiphertext::trivial(Torus32::ZERO, ext_dim),
            raws: vec![LweCiphertext::trivial(Torus32::ZERO, ext_dim); FUSE_CHUNK],
            soa: LweSoa::new(n),
            tv_buf: TorusPoly::zero(self.params.poly_size),
            luts: PackedLutTables::new(),
        }
    }

    /// Blind-rotates `width` staged SoA slots (starting at `base`) in one
    /// lockstep batched launch, leaving the raw pre-key-switch samples in
    /// `raws[..width]`. Single-slot chunks take the plain path — the
    /// batched kernels only pay off once twiddle and bootstrapping-key
    /// streams are shared between lanes. Either way the per-slot results
    /// are bit-identical (see
    /// [`BootstrappingKey::bootstrap_raw_batch_into`]).
    fn rotate_chunk(
        bootstrap: &BootstrappingKey,
        soa: &LweSoa,
        base: usize,
        width: usize,
        boot: &mut BootstrapScratch,
        batch: &mut BatchBootstrapScratch,
        raws: &mut [LweCiphertext],
    ) {
        debug_assert!((1..=FUSE_CHUNK).contains(&width));
        if width == 1 || !bootstrap.batch_rotation_supported() {
            for (lane, raw) in raws.iter_mut().enumerate().take(width) {
                let (mask, body) = soa.slot(base + lane);
                bootstrap.bootstrap_raw_slices_into(mask, body, Self::mu(), boot, raw);
            }
            return;
        }
        let mut inputs: [(&[Torus32], Torus32); FUSE_CHUNK] =
            [(&[][..], Torus32::ZERO); FUSE_CHUNK];
        for (lane, input) in inputs.iter_mut().take(width).enumerate() {
            *input = soa.slot(base + lane);
        }
        bootstrap.bootstrap_raw_batch_into(&inputs[..width], Self::mu(), batch, &mut raws[..width]);
    }

    /// Evaluates one bootstrapped binary gate into `out` — the hot-path
    /// API: linear combination, blind rotation against `mu = 1/8`, and key
    /// switch all run on `scratch`'s preallocated buffers.
    pub fn gate_into(
        &self,
        gate: BootGate,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
        out: &mut LweCiphertext,
    ) {
        // The disabled-telemetry check is a single atomic load; the timed
        // variant is kept out of line so this hot path stays lean.
        if pytfhe_telemetry::enabled() {
            return self.gate_into_timed(gate, a, b, scratch, out);
        }
        self.combo_into(gate, a, b, &mut scratch.combo);
        self.bootstrap.bootstrap_raw_into(
            &scratch.combo,
            Self::mu(),
            &mut scratch.boot,
            &mut scratch.raw,
        );
        self.keyswitch.switch_into(&scratch.raw, out);
    }

    /// [`ServerKey::gate_into`] with per-phase timing feeding the
    /// per-gate-kind blind-rotate/key-switch histograms.
    #[cold]
    fn gate_into_timed(
        &self,
        gate: BootGate,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
        out: &mut LweCiphertext,
    ) {
        use std::time::Instant;
        self.combo_into(gate, a, b, &mut scratch.combo);
        let t0 = Instant::now();
        self.bootstrap.bootstrap_raw_into(
            &scratch.combo,
            Self::mu(),
            &mut scratch.boot,
            &mut scratch.raw,
        );
        let t1 = Instant::now();
        self.keyswitch.switch_into(&scratch.raw, out);
        record_gate_split(gate, (t1 - t0).as_secs_f64(), t1.elapsed().as_secs_f64());
    }

    /// Evaluates one batched kernel: the same gate over many input pairs.
    ///
    /// Pass 1 stages every pair's linear combination into struct-of-arrays
    /// ciphertext slots; pass 2 bootstraps and key switches each slot into
    /// the matching `outs` entry. This is the CPU analogue of the paper's
    /// batched CUDA-graph kernels (Figure 9): one launch per (gate kind,
    /// wave) instead of one per gate. After a warm-up call at the same
    /// batch size, the whole call is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `outs` have different lengths.
    pub fn batch_bootstrap(
        &self,
        gate: BootGate,
        pairs: &[(&LweCiphertext, &LweCiphertext)],
        outs: &mut [LweCiphertext],
        scratch: &mut GateScratch,
    ) {
        assert_eq!(pairs.len(), outs.len(), "batch_bootstrap: pairs/outs length mismatch");
        let (offset, ca, cb) = gate.spec();
        let GateScratch { boot, batch, raws, soa, .. } = scratch;
        soa.reset(pairs.len());
        for (slot, &(a, b)) in pairs.iter().enumerate() {
            soa.set_body(slot, offset);
            soa.axpy(slot, ca, a);
            soa.axpy(slot, cb, b);
        }
        let timed = pytfhe_telemetry::enabled();
        for (chunk, out_chunk) in outs.chunks_mut(FUSE_CHUNK).enumerate() {
            let width = out_chunk.len();
            let t0 = timed.then(std::time::Instant::now);
            Self::rotate_chunk(&self.bootstrap, soa, chunk * FUSE_CHUNK, width, boot, batch, raws);
            let t1 = timed.then(std::time::Instant::now);
            for (lane, out) in out_chunk.iter_mut().enumerate() {
                let k0 = timed.then(std::time::Instant::now);
                self.keyswitch.switch_into(&raws[lane], out);
                if let (Some(t0), Some(t1), Some(k0)) = (t0, t1, k0) {
                    // Lockstep rotation is timed per chunk; attribute an
                    // even share to each lane so per-gate histograms keep
                    // their meaning.
                    let rotate_s = (t1 - t0).as_secs_f64() / width as f64;
                    record_gate_split(gate, rotate_s, k0.elapsed().as_secs_f64());
                }
            }
        }
    }

    /// Evaluates one batched kernel with the staging and bootstrap
    /// passes *fused* over cache-sized chunks of [`FUSE_CHUNK`] slots:
    /// each chunk's linear combinations are staged into the
    /// struct-of-arrays slots and immediately carried through blind
    /// rotation, sample extraction, and key switching before the next
    /// chunk is touched, so the staged masks are still cache-resident
    /// when the bootstrap reads them (the two-pass
    /// [`ServerKey::batch_bootstrap`] streams the whole batch through
    /// the SoA buffer twice). Slot arithmetic is identical, so results
    /// are bit-exact with the unfused batch and with scalar
    /// [`ServerKey::gate_into`].
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `outs` have different lengths.
    pub fn batch_bootstrap_fused(
        &self,
        gate: BootGate,
        pairs: &[(&LweCiphertext, &LweCiphertext)],
        outs: &mut [LweCiphertext],
        scratch: &mut GateScratch,
    ) {
        assert_eq!(pairs.len(), outs.len(), "batch_bootstrap_fused: pairs/outs length mismatch");
        let (offset, ca, cb) = gate.spec();
        let GateScratch { boot, batch, raws, soa, .. } = scratch;
        let timed = pytfhe_telemetry::enabled();
        for (pair_chunk, out_chunk) in pairs.chunks(FUSE_CHUNK).zip(outs.chunks_mut(FUSE_CHUNK)) {
            let width = pair_chunk.len();
            soa.reset(width);
            for (slot, &(a, b)) in pair_chunk.iter().enumerate() {
                soa.set_body(slot, offset);
                soa.axpy(slot, ca, a);
                soa.axpy(slot, cb, b);
            }
            let t0 = timed.then(std::time::Instant::now);
            Self::rotate_chunk(&self.bootstrap, soa, 0, width, boot, batch, raws);
            let t1 = timed.then(std::time::Instant::now);
            for (lane, out) in out_chunk.iter_mut().enumerate() {
                let k0 = timed.then(std::time::Instant::now);
                self.keyswitch.switch_into(&raws[lane], out);
                if let (Some(t0), Some(t1), Some(k0)) = (t0, t1, k0) {
                    let rotate_s = (t1 - t0).as_secs_f64() / width as f64;
                    record_gate_split(gate, rotate_s, k0.elapsed().as_secs_f64());
                }
            }
        }
    }

    /// Evaluates one batched kernel of *mixed* gate kinds: `gates[i]`
    /// applied to `pairs[i]` into `outs[i]`.
    ///
    /// This is the cross-session batching entry point: a serving
    /// scheduler draining ready gates from many tenants' programs gets
    /// one dense wave of heterogeneous gates per key, and staging them
    /// through one SoA pass (each slot with its own gate recipe) keeps
    /// the launch count at one per key per wave instead of one per gate
    /// kind. Slot layout and per-slot arithmetic are identical to
    /// [`ServerKey::batch_bootstrap`], so results are bit-exact with the
    /// per-kind batches and with scalar [`ServerKey::gate_into`].
    ///
    /// # Panics
    ///
    /// Panics if `gates`, `pairs`, and `outs` have different lengths.
    pub fn batch_bootstrap_mixed(
        &self,
        gates: &[BootGate],
        pairs: &[(&LweCiphertext, &LweCiphertext)],
        outs: &mut [LweCiphertext],
        scratch: &mut GateScratch,
    ) {
        assert_eq!(gates.len(), pairs.len(), "batch_bootstrap_mixed: gates/pairs mismatch");
        assert_eq!(pairs.len(), outs.len(), "batch_bootstrap_mixed: pairs/outs mismatch");
        let GateScratch { boot, batch, raws, soa, .. } = scratch;
        soa.reset(pairs.len());
        for (slot, (&gate, &(a, b))) in gates.iter().zip(pairs).enumerate() {
            let (offset, ca, cb) = gate.spec();
            soa.set_body(slot, offset);
            soa.axpy(slot, ca, a);
            soa.axpy(slot, cb, b);
        }
        let timed = pytfhe_telemetry::enabled();
        for (chunk, out_chunk) in outs.chunks_mut(FUSE_CHUNK).enumerate() {
            let base = chunk * FUSE_CHUNK;
            let width = out_chunk.len();
            let t0 = timed.then(std::time::Instant::now);
            Self::rotate_chunk(&self.bootstrap, soa, base, width, boot, batch, raws);
            let t1 = timed.then(std::time::Instant::now);
            for (lane, out) in out_chunk.iter_mut().enumerate() {
                let k0 = timed.then(std::time::Instant::now);
                self.keyswitch.switch_into(&raws[lane], out);
                if let (Some(t0), Some(t1), Some(k0)) = (t0, t1, k0) {
                    let rotate_s = (t1 - t0).as_secs_f64() / width as f64;
                    record_gate_split(gates[base + lane], rotate_s, k0.elapsed().as_secs_f64());
                }
            }
        }
    }

    /// `NAND` with caller-provided scratch (the hot-path API the backends
    /// use). All other `_with` gates follow the same pattern.
    pub fn nand_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Nand, a, b, scratch, &mut out);
        out
    }

    /// `AND`.
    pub fn and_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::And, a, b, scratch, &mut out);
        out
    }

    /// `OR`.
    pub fn or_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Or, a, b, scratch, &mut out);
        out
    }

    /// `NOR`.
    pub fn nor_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Nor, a, b, scratch, &mut out);
        out
    }

    /// `XOR`.
    pub fn xor_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Xor, a, b, scratch, &mut out);
        out
    }

    /// `XNOR`.
    pub fn xnor_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Xnor, a, b, scratch, &mut out);
        out
    }

    /// `ANDNY` = `!a & b`.
    pub fn andny_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Andny, a, b, scratch, &mut out);
        out
    }

    /// `ANDYN` = `a & !b`.
    pub fn andyn_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Andyn, a, b, scratch, &mut out);
        out
    }

    /// `ORNY` = `!a | b`.
    pub fn orny_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Orny, a, b, scratch, &mut out);
        out
    }

    /// `ORYN` = `a | !b`.
    pub fn oryn_with(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        let mut out = LweCiphertext::trivial(Torus32::ZERO, self.params.lwe_dim);
        self.gate_into(BootGate::Oryn, a, b, scratch, &mut out);
        out
    }

    /// `NOT` — a free negation, no bootstrapping required.
    pub fn not(&self, a: &LweCiphertext) -> LweCiphertext {
        let mut c = a.clone();
        c.negate();
        c
    }

    /// Allocation-free `NOT`: `out = -a`.
    pub fn not_into(&self, a: &LweCiphertext, out: &mut LweCiphertext) {
        out.copy_from(a);
        out.negate();
    }

    /// A trivial encryption of a constant bit, decryptable under any key.
    pub fn constant(&self, bit: bool) -> LweCiphertext {
        let mu = if bit { Self::mu() } else { -Self::mu() };
        LweCiphertext::trivial(mu, self.params.lwe_dim)
    }

    /// Allocation-free constant: overwrites `out` with the trivial
    /// encryption of `bit`.
    pub fn constant_into(&self, bit: bool, out: &mut LweCiphertext) {
        let mu = if bit { Self::mu() } else { -Self::mu() };
        out.assign_trivial(mu, self.params.lwe_dim);
    }

    /// `MUX(s, a, b) = s ? a : b` — the TFHE-library bonus gate, built from
    /// two bootstraps and one key switch.
    pub fn mux_with(
        &self,
        s: &LweCiphertext,
        a: &LweCiphertext,
        b: &LweCiphertext,
        scratch: &mut GateScratch,
    ) -> LweCiphertext {
        // t1 = bootstrap(s AND a), t2 = bootstrap(!s AND b), out = KS(t1 + t2 + 1/8).
        scratch.combo.assign_trivial(-Self::mu(), self.params.lwe_dim);
        scratch.combo.add_assign(s);
        scratch.combo.add_assign(a);
        self.bootstrap.bootstrap_raw_into(
            &scratch.combo,
            Self::mu(),
            &mut scratch.boot,
            &mut scratch.raw,
        );
        scratch.combo.assign_trivial(-Self::mu(), self.params.lwe_dim);
        scratch.combo.sub_assign(s);
        scratch.combo.add_assign(b);
        self.bootstrap.bootstrap_raw_into(
            &scratch.combo,
            Self::mu(),
            &mut scratch.boot,
            &mut scratch.raw2,
        );
        scratch.sum.assign_trivial(Self::mu(), self.keyswitch.src_dim());
        scratch.sum.add_assign(&scratch.raw);
        scratch.sum.add_assign(&scratch.raw2);
        self.keyswitch.switch(&scratch.sum)
    }

    /// Convenience allocation-per-call variants of every gate.
    pub fn nand(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.nand_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::and_with`].
    pub fn and(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.and_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::or_with`].
    pub fn or(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.or_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::nor_with`].
    pub fn nor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.nor_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::xor_with`].
    pub fn xor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.xor_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::xnor_with`].
    pub fn xnor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.xnor_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::andny_with`].
    pub fn andny(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.andny_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::andyn_with`].
    pub fn andyn(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.andyn_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::orny_with`].
    pub fn orny(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.orny_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::oryn_with`].
    pub fn oryn(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.oryn_with(a, b, &mut self.gate_scratch())
    }
    /// See [`ServerKey::mux_with`].
    pub fn mux(&self, s: &LweCiphertext, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.mux_with(s, a, b, &mut self.gate_scratch())
    }

    /// Evaluates one gate while timing its phases — the measurement behind
    /// the Figure 7 reproduction.
    pub fn profile_nand(
        &self,
        a: &LweCiphertext,
        b: &LweCiphertext,
    ) -> (LweCiphertext, GateProfile) {
        use std::time::Instant;
        let mut scratch = self.gate_scratch();
        let t0 = Instant::now();
        self.combo_into(BootGate::Nand, a, b, &mut scratch.combo);
        let t1 = Instant::now();
        self.bootstrap.bootstrap_raw_into(
            &scratch.combo,
            Self::mu(),
            &mut scratch.boot,
            &mut scratch.raw,
        );
        let t2 = Instant::now();
        let out = self.keyswitch.switch(&scratch.raw);
        let t3 = Instant::now();
        let profile = GateProfile {
            linear_s: (t1 - t0).as_secs_f64(),
            blind_rotation_s: (t2 - t1).as_secs_f64(),
            key_switching_s: (t3 - t2).as_secs_f64(),
        };
        (out, profile)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClientKey, Params, SecureRng, ServerKey};

    fn setup() -> (ClientKey, ServerKey, SecureRng) {
        let mut rng = SecureRng::seed_from_u64(80);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        (client, server, rng)
    }

    #[test]
    fn all_binary_gates_truth_tables() {
        let (client, server, mut rng) = setup();
        type GateFn =
            fn(&ServerKey, &crate::LweCiphertext, &crate::LweCiphertext) -> crate::LweCiphertext;
        type GateCase = (&'static str, GateFn, fn(bool, bool) -> bool);
        let gates: [GateCase; 10] = [
            ("nand", ServerKey::nand, |a, b| !(a && b)),
            ("and", ServerKey::and, |a, b| a && b),
            ("or", ServerKey::or, |a, b| a || b),
            ("nor", ServerKey::nor, |a, b| !(a || b)),
            ("xor", ServerKey::xor, |a, b| a ^ b),
            ("xnor", ServerKey::xnor, |a, b| !(a ^ b)),
            ("andny", ServerKey::andny, |a, b| !a && b),
            ("andyn", ServerKey::andyn, |a, b| a && !b),
            ("orny", ServerKey::orny, |a, b| !a || b),
            ("oryn", ServerKey::oryn, |a, b| a || !b),
        ];
        for (name, gate, oracle) in gates {
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let ca = client.encrypt_bit(a, &mut rng);
                let cb = client.encrypt_bit(b, &mut rng);
                let out = gate(&server, &ca, &cb);
                assert_eq!(client.decrypt_bit(&out), oracle(a, b), "{name}({a}, {b})");
            }
        }
    }

    #[test]
    fn ntt_transform_runs_full_gate_suite() {
        use super::{BootGate, FUSE_CHUNK};
        use crate::ntt::{self, Transform};
        let _g = ntt::transform_guard().write().unwrap();
        let (client, server, mut rng) = setup();
        let mut scratch = server.gate_scratch();
        let restore = ntt::active_transform();
        ntt::set_active_transform(Transform::Ntt);
        for gate in BootGate::ALL {
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let ca = client.encrypt_bit(a, &mut rng);
                let cb = client.encrypt_bit(b, &mut rng);
                let mut out = server.constant(false);
                server.gate_into(gate, &ca, &cb, &mut scratch, &mut out);
                assert_eq!(
                    client.decrypt_bit(&out),
                    gate.eval(a, b),
                    "{}({a}, {b}) under ntt",
                    gate.name()
                );
            }
        }
        // Batched callers degrade to per-slot rotations under the NTT;
        // the fallback is the same deterministic code path as gate_into,
        // so the results are bit-exact with it.
        assert!(!server.bootstrap.batch_rotation_supported());
        let cts: Vec<_> = (0..FUSE_CHUNK + 2)
            .map(|i| {
                (client.encrypt_bit(i % 2 == 0, &mut rng), client.encrypt_bit(i % 3 == 0, &mut rng))
            })
            .collect();
        let pairs: Vec<_> = cts.iter().map(|(a, b)| (a, b)).collect();
        let mut want = Vec::new();
        for &(a, b) in &pairs {
            let mut out = server.constant(false);
            server.gate_into(BootGate::Nand, a, b, &mut scratch, &mut out);
            want.push(out);
        }
        let mut outs = vec![server.constant(false); pairs.len()];
        server.batch_bootstrap(BootGate::Nand, &pairs, &mut outs, &mut scratch);
        assert_eq!(outs, want, "ntt batch fallback must be bit-exact with gate_into");
        ntt::set_active_transform(restore);
    }

    #[test]
    fn mixed_batch_is_bit_exact_with_scalar_gates() {
        use super::BootGate;
        let _g = crate::ntt::transform_guard().read().unwrap();
        let (client, server, mut rng) = setup();
        let mut scratch = server.gate_scratch();
        let gates = [
            BootGate::Nand,
            BootGate::Xor,
            BootGate::And,
            BootGate::Oryn,
            BootGate::Nor,
            BootGate::Xnor,
        ];
        let bits = [
            (true, false),
            (true, true),
            (false, false),
            (false, true),
            (true, false),
            (true, true),
        ];
        let cts: Vec<_> = bits
            .iter()
            .map(|&(a, b)| (client.encrypt_bit(a, &mut rng), client.encrypt_bit(b, &mut rng)))
            .collect();
        let pairs: Vec<_> = cts.iter().map(|(a, b)| (a, b)).collect();
        // Scalar oracle, one gate_into per slot.
        let mut want = Vec::new();
        for (&gate, &(a, b)) in gates.iter().zip(&pairs) {
            let mut out = server.constant(false);
            server.gate_into(gate, a, b, &mut scratch, &mut out);
            want.push(out);
        }
        // One mixed launch over the whole wave.
        let mut outs = vec![server.constant(false); pairs.len()];
        server.batch_bootstrap_mixed(&gates, &pairs, &mut outs, &mut scratch);
        assert_eq!(outs, want, "mixed batch must be bit-exact with scalar gate_into");
        let dec: Vec<_> = outs.iter().map(|c| client.decrypt_bit(c)).collect();
        assert_eq!(dec, vec![true, false, false, false, false, true]);
    }

    #[test]
    fn fused_batch_is_bit_exact_with_unfused_under_every_simd_path() {
        use super::{BootGate, FUSE_CHUNK};
        use crate::simd::{self, SimdPath};
        let _g = crate::ntt::transform_guard().read().unwrap();
        let (client, server, mut rng) = setup();
        let mut scratch = server.gate_scratch();
        // More than two fuse chunks plus a ragged tail, so the fused
        // path actually re-stages mid-batch.
        let n = FUSE_CHUNK * 2 + 3;
        let bits: Vec<(bool, bool)> = (0..n).map(|i| (i % 2 == 0, i % 3 == 0)).collect();
        let cts: Vec<_> = bits
            .iter()
            .map(|&(a, b)| (client.encrypt_bit(a, &mut rng), client.encrypt_bit(b, &mut rng)))
            .collect();
        let pairs: Vec<_> = cts.iter().map(|(a, b)| (a, b)).collect();
        // Bootstrapping is deterministic given the key and inputs, so
        // the comparison is exact per path; the restore keeps the
        // process-global dispatch as other tests expect it.
        let restore = simd::active_path();
        for path in SimdPath::ALL {
            if !path.is_supported() {
                continue;
            }
            assert!(simd::set_active_path(path));
            let mut unfused = vec![server.constant(false); n];
            server.batch_bootstrap(BootGate::Xor, &pairs, &mut unfused, &mut scratch);
            let mut fused = vec![server.constant(false); n];
            server.batch_bootstrap_fused(BootGate::Xor, &pairs, &mut fused, &mut scratch);
            assert_eq!(fused, unfused, "fused batch must be bit-exact on path={path}");
            for (ct, &(a, b)) in fused.iter().zip(&bits) {
                assert_eq!(client.decrypt_bit(ct), a ^ b, "xor({a},{b}) on path={path}");
            }
        }
        simd::set_active_path(restore);
    }

    #[test]
    fn not_and_constants() {
        let (client, server, mut rng) = setup();
        for bit in [false, true] {
            let ct = client.encrypt_bit(bit, &mut rng);
            assert_eq!(client.decrypt_bit(&server.not(&ct)), !bit);
            assert_eq!(client.decrypt_bit(&server.constant(bit)), bit);
        }
    }

    #[test]
    fn mux_selects() {
        let (client, server, mut rng) = setup();
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let cs = client.encrypt_bit(s, &mut rng);
                    let ca = client.encrypt_bit(a, &mut rng);
                    let cb = client.encrypt_bit(b, &mut rng);
                    let out = server.mux(&cs, &ca, &cb);
                    assert_eq!(client.decrypt_bit(&out), if s { a } else { b }, "mux({s},{a},{b})");
                }
            }
        }
    }

    #[test]
    fn gates_chain_arbitrarily_deep() {
        // The whole point of bootstrapping: noise does not accumulate.
        let (client, server, mut rng) = setup();
        let mut ct = client.encrypt_bit(true, &mut rng);
        let one = client.encrypt_bit(true, &mut rng);
        let mut value = true;
        for _ in 0..24 {
            ct = server.nand(&ct, &one);
            value = !value; // nand(x, 1) == !x
            assert_eq!(client.decrypt_bit(&ct), value);
        }
    }

    #[test]
    fn profile_reports_nonzero_phases() {
        let (client, server, mut rng) = setup();
        let a = client.encrypt_bit(true, &mut rng);
        let b = client.encrypt_bit(true, &mut rng);
        let (out, profile) = server.profile_nand(&a, &b);
        assert!(!client.decrypt_bit(&out));
        assert!(profile.blind_rotation_s > 0.0);
        assert!(profile.key_switching_s > 0.0);
        assert!(
            profile.blind_rotation_s > profile.key_switching_s,
            "blind rotation dominates (Figure 7)"
        );
        assert!(profile.total_s() > 0.0);
    }
}
