//! Prototype integer NTT transform backend.
//!
//! The production transform is the folded negacyclic FFT ([`crate::fft`]):
//! `f64` butterflies whose results are rounded back onto the torus. This
//! module provides an alternative *exact* transform over the prime field
//! `Z_q` with `q =` [`NTT_PRIME`]: negative-wrapped (negacyclic)
//! number-theoretic transforms with the 2N-th root of unity `ψ` folded
//! into the butterfly twiddles (the Longa–Nährig formulation), so a
//! length-`N` NTT computes products in `Z_q[X]/(X^N + 1)` directly.
//!
//! # Modulus choice
//!
//! `q = 0x2000_0000_0001_a001 = 2305843009213800449 ≈ 2^61` with
//! `q ≡ 1 (mod 2^13)` and primitive root `g = 3`: large enough that every
//! external-product coefficient — bounded by
//! `(k+1) · l · N · 2^{base_log−1} · 2^32 ≲ 2^53` for every parameter set
//! in [`crate::Params`] — is computed *exactly* as an integer (no wrap
//! mod `q`), yet below `2^62` so lazy-reduction variants keep headroom.
//! The exact integer result reduced mod `2^32` is the torus coefficient,
//! which makes the NTT external product bit-identical to the schoolbook
//! reference ([`crate::reference`]); the FFT path agrees up to its
//! rounding contract (identical decrypted bits, torus words within the
//! crypto noise budget).
//!
//! # Selection
//!
//! `PYTFHE_TRANSFORM=fft|ntt` picks the backend at startup (read once);
//! [`set_active_transform`] overrides it at runtime for tests and
//! benches. Unknown values fall back to the FFT — selection never
//! panics. The batched struct-of-arrays kernels exist only for the FFT,
//! so batched callers degrade to per-slot rotations under the NTT (see
//! [`crate::bootstrap::BootstrappingKey::batch_rotation_supported`]).

use std::sync::atomic::{AtomicU8, Ordering};

use crate::fft::FftPlan;
use crate::poly::{IntPoly, TorusPoly};
use crate::tgsw::{Gadget, TgswFft};
use crate::tlwe::TlweCiphertext;
use crate::torus::Torus32;
use crate::trace::note_buffer_alloc;

/// The NTT modulus: a 62-bit prime with `q ≡ 1 (mod 2^13)` (so negacyclic
/// transforms exist for every power-of-two `N ≤ 4096`).
pub const NTT_PRIME: u64 = 0x2000_0000_0001_a001;

/// A primitive root of `Z_q^*` for [`NTT_PRIME`].
pub const NTT_GENERATOR: u64 = 3;

/// The polynomial-product transform backend in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Folded negacyclic `f64` FFT (default; has batched SIMD kernels).
    Fft,
    /// Exact integer NTT over `Z_q` (prototype; single-poly only).
    Ntt,
}

impl Transform {
    /// Lower-case name, matching the `PYTFHE_TRANSFORM` values.
    pub fn name(self) -> &'static str {
        match self {
            Transform::Fft => "fft",
            Transform::Ntt => "ntt",
        }
    }
}

impl std::fmt::Display for Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const TRANSFORM_UNSET: u8 = u8::MAX;
static ACTIVE_TRANSFORM: AtomicU8 = AtomicU8::new(TRANSFORM_UNSET);

fn transform_from_env() -> Transform {
    match std::env::var("PYTFHE_TRANSFORM") {
        Ok(v) if v.eq_ignore_ascii_case("ntt") => Transform::Ntt,
        // "fft", unset, or anything unrecognized: the FFT always works.
        _ => Transform::Fft,
    }
}

/// The transform backend in effect, resolving `PYTFHE_TRANSFORM` on
/// first use. Unknown values degrade to [`Transform::Fft`].
pub fn active_transform() -> Transform {
    match ACTIVE_TRANSFORM.load(Ordering::Relaxed) {
        0 => Transform::Fft,
        1 => Transform::Ntt,
        _ => {
            let t = transform_from_env();
            set_active_transform(t);
            t
        }
    }
}

/// Overrides the process-wide transform selection (tests, benches, and
/// the bench harness' per-mode sweeps).
pub fn set_active_transform(t: Transform) {
    let id = match t {
        Transform::Fft => 0,
        Transform::Ntt => 1,
    };
    ACTIVE_TRANSFORM.store(id, Ordering::Relaxed);
}

/// `true` when the NTT backend is selected.
pub fn ntt_selected() -> bool {
    active_transform() == Transform::Ntt
}

// ---------------------------------------------------------------------------
// Field arithmetic mod NTT_PRIME.

#[inline(always)]
fn fadd(a: u64, b: u64) -> u64 {
    let s = a + b; // both < q < 2^62: no u64 overflow
    if s >= NTT_PRIME {
        s - NTT_PRIME
    } else {
        s
    }
}

#[inline(always)]
fn fsub(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + NTT_PRIME - b
    }
}

#[inline(always)]
fn fmul(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % NTT_PRIME as u128) as u64
}

fn fpow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = fmul(acc, base);
        }
        base = fmul(base, base);
        exp >>= 1;
    }
    acc
}

#[inline(always)]
fn finv(a: u64) -> u64 {
    fpow(a, NTT_PRIME - 2)
}

/// Lifts a signed gadget digit into the field.
#[inline(always)]
fn lift_int(x: i32) -> u64 {
    if x < 0 {
        NTT_PRIME - (x.unsigned_abs() as u64)
    } else {
        x as u64
    }
}

/// Maps an exact field value back to the torus: the true integer result
/// `v` satisfies `|v| < q/2`, so its representative in `(−q/2, q/2]`
/// reduced mod `2^32` is the torus word.
#[inline(always)]
fn unlift_torus(r: u64) -> Torus32 {
    if r > NTT_PRIME / 2 {
        Torus32(0u32.wrapping_sub((NTT_PRIME - r) as u32))
    } else {
        Torus32(r as u32)
    }
}

// ---------------------------------------------------------------------------
// The negacyclic NTT plan.

/// Precomputed twiddles for negacyclic NTTs of one power-of-two size.
#[derive(Debug, Clone)]
pub struct NttPlan {
    n: usize,
    /// `ψ^bitrev(i)` — forward butterflies consume this in order.
    psi_rev: Vec<u64>,
    /// `ψ^{−bitrev(i)}` for the inverse.
    inv_psi_rev: Vec<u64>,
    /// `n^{−1} mod q`, applied in the inverse's final scaling pass.
    n_inv: u64,
}

impl NttPlan {
    /// Builds the plan for polynomials of degree bound `n` (a power of
    /// two, at most 4096 for this modulus).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "NTT size must be a power of two, got {n}");
        assert!(
            (NTT_PRIME - 1).is_multiple_of(2 * n as u64),
            "NTT size {n} unsupported by modulus (needs 2n | q-1)"
        );
        let log_n = n.trailing_zeros();
        let psi = fpow(NTT_GENERATOR, (NTT_PRIME - 1) / (2 * n as u64));
        let inv_psi = finv(psi);
        debug_assert_eq!(fpow(psi, n as u64), NTT_PRIME - 1, "psi must be a 2n-th root of -1");
        let mut psi_rev = vec![0u64; n];
        let mut inv_psi_rev = vec![0u64; n];
        note_buffer_alloc();
        let mut p = 1u64;
        let mut ip = 1u64;
        for i in 0..n {
            let r = (i as u32).reverse_bits() >> (32 - log_n);
            psi_rev[r as usize] = p;
            inv_psi_rev[r as usize] = ip;
            p = fmul(p, psi);
            ip = fmul(ip, inv_psi);
        }
        NttPlan { n, psi_rev, inv_psi_rev, n_inv: finv(n as u64) }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the plan is over zero-length polynomials (never, but
    /// keeps the `len`/`is_empty` pairing clippy expects).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward negacyclic NTT (Cooley–Tukey with the `ψ^i`
    /// pre-twist folded into the twiddles). Output is in bit-reversed
    /// order — pointwise products and the matching [`NttPlan::inverse`]
    /// never observe the ordering.
    pub fn forward(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let s = self.psi_rev[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = fmul(a[j + t], s);
                    a[j] = fadd(u, v);
                    a[j + t] = fsub(u, v);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (Gentleman–Sande, `ψ^{−i}`
    /// post-twist folded in, final scale by `n^{−1}`).
    pub fn inverse(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let s = self.inv_psi_rev[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = fadd(u, v);
                    a[j + t] = fmul(fsub(u, v), s);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = fmul(*x, self.n_inv);
        }
    }

    /// Forward-transforms a signed digit polynomial into `out`.
    pub fn forward_int_into(&self, p: &IntPoly, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.n);
        for (o, &c) in out.iter_mut().zip(p.coeffs()) {
            *o = lift_int(c);
        }
        self.forward(out);
    }

    /// Forward-transforms a torus polynomial (raw `u32` words lifted as
    /// integers) into `out`.
    pub fn forward_torus_into(&self, p: &TorusPoly, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.n);
        for (o, &c) in out.iter_mut().zip(p.coeffs()) {
            *o = c.0 as u64;
        }
        self.forward(out);
    }

    /// Inverse-transforms `a` (destructively) and reduces the exact
    /// integer coefficients onto the torus.
    pub fn inverse_torus_into(&self, a: &mut [u64], out: &mut TorusPoly) {
        self.inverse(a);
        for (o, &r) in out.coeffs_mut().iter_mut().zip(a.iter()) {
            *o = unlift_torus(r);
        }
    }
}

// ---------------------------------------------------------------------------
// The NTT-domain bootstrapping key and its external product.

/// One TGSW ciphertext with every row polynomial held in the NTT domain
/// (`rows[r][col]`, mirroring [`TgswFft`]).
#[derive(Debug, Clone)]
pub struct TgswNtt {
    rows: Vec<Vec<Vec<u64>>>,
}

/// The NTT mirror of a bootstrapping key: derived on first use from the
/// FFT-domain key (the wire format stays FFT-only), shared by every
/// worker thread.
#[derive(Debug, Clone)]
pub struct NttKey {
    plan: NttPlan,
    tgsw: Vec<TgswNtt>,
    gadget: Gadget,
}

/// Scratch for the NTT CMUX: gadget digits, one forward buffer, the
/// `k+1` accumulator columns, and the rotate/product ciphertexts.
#[derive(Debug)]
pub struct NttCmuxScratch {
    digits: Vec<IntPoly>,
    fwd: Vec<u64>,
    acc: Vec<Vec<u64>>,
    diff: TlweCiphertext,
    ext: TlweCiphertext,
}

impl NttCmuxScratch {
    /// Allocates scratch for polynomials of size `n`, GLWE dimension
    /// `k`, and the given gadget.
    pub fn new(n: usize, k: usize, gadget: Gadget) -> Self {
        note_buffer_alloc();
        NttCmuxScratch {
            digits: (0..gadget.levels).map(|_| IntPoly::zero(n)).collect(),
            fwd: vec![0u64; n],
            acc: (0..=k).map(|_| vec![0u64; n]).collect(),
            diff: TlweCiphertext::trivial(TorusPoly::zero(n), k),
            ext: TlweCiphertext::trivial(TorusPoly::zero(n), k),
        }
    }
}

impl NttKey {
    /// Derives the NTT-domain key from the FFT-domain key: each row
    /// spectrum is inverse-transformed back to its exact torus
    /// polynomial (the float round trip is exact by the transform's
    /// rounding contract) and re-transformed over `Z_q`.
    pub fn from_fft(tgsw: &[TgswFft], fft_plan: &FftPlan, n: usize) -> Self {
        let plan = NttPlan::new(n);
        let gadget = tgsw.first().map(|t| t.gadget()).unwrap_or(Gadget { levels: 1, base_log: 1 });
        let ntt_rows: Vec<TgswNtt> = tgsw
            .iter()
            .map(|t| {
                let rows = t
                    .rows_raw()
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|freq| {
                                let torus = fft_plan.inverse_torus(freq);
                                let mut out = vec![0u64; n];
                                plan.forward_torus_into(&torus, &mut out);
                                out
                            })
                            .collect()
                    })
                    .collect();
                TgswNtt { rows }
            })
            .collect();
        NttKey { plan, tgsw: ntt_rows, gadget }
    }

    /// The transform plan (size `N`).
    pub fn plan(&self) -> &NttPlan {
        &self.plan
    }

    /// Allocates the per-worker CMUX scratch matching this key.
    pub fn cmux_scratch(&self, k: usize) -> NttCmuxScratch {
        NttCmuxScratch::new(self.plan.n, k, self.gadget)
    }

    /// The exact-integer external product `out = bk_row ⊡ input` (same
    /// recipe as [`TgswFft::external_product_into`], in `Z_q`).
    fn external_product_into(
        &self,
        idx: usize,
        input: &TlweCiphertext,
        digits: &mut [IntPoly],
        fwd: &mut [u64],
        cols: &mut [Vec<u64>],
        out: &mut TlweCiphertext,
    ) {
        let k = input.a.len();
        let l = self.gadget.levels;
        let rows = &self.tgsw[idx].rows;
        for acc in cols[..=k].iter_mut() {
            acc.fill(0);
        }
        for u in 0..=k {
            let poly = if u < k { &input.a[u] } else { &input.b };
            self.gadget.decompose_poly_into(poly, digits);
            for (level, digit) in digits.iter().enumerate() {
                self.plan.forward_int_into(digit, fwd);
                let row = &rows[u * l + level];
                for (acc, row_col) in cols[..=k].iter_mut().zip(row) {
                    for ((a, &d), &r) in acc.iter_mut().zip(fwd.iter()).zip(row_col) {
                        *a = fadd(*a, fmul(d, r));
                    }
                }
            }
        }
        for (col, acc) in cols[..=k].iter_mut().enumerate() {
            let dst = if col < k { &mut out.a[col] } else { &mut out.b };
            self.plan.inverse_torus_into(acc, dst);
        }
    }

    /// One blind-rotation CMUX step through the NTT external product:
    /// `acc += bk[idx] ⊡ (X^bara · acc − acc)`.
    pub fn rotate_cmux_assign(
        &self,
        idx: usize,
        acc: &mut TlweCiphertext,
        bara: usize,
        s: &mut NttCmuxScratch,
    ) {
        let NttCmuxScratch { digits, fwd, acc: cols, diff, ext } = s;
        acc.rotate_into(bara, diff);
        diff.sub_assign(acc);
        self.external_product_into(idx, diff, digits, fwd, cols, ext);
        acc.add_assign(ext);
    }
}

/// Guards the process-global transform selection in multi-threaded test
/// runs: tests that *flip* the transform take the write lock, tests that
/// assert cross-call bit-exactness of bootstrap outputs take the read
/// lock (a mid-test flip would change their results legitimately).
#[cfg(test)]
pub(crate) fn transform_guard() -> &'static std::sync::RwLock<()> {
    static LOCK: std::sync::RwLock<()> = std::sync::RwLock::new(());
    &LOCK
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SecureRng;

    #[test]
    fn modulus_is_prime_and_generator_is_primitive() {
        // Deterministic Miller–Rabin for 64-bit integers.
        fn is_prime(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
                if n == p {
                    return true;
                }
                if n.is_multiple_of(p) {
                    return false;
                }
            }
            let d = n - 1;
            let r = d.trailing_zeros();
            let d = d >> r;
            'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
                let mut x = fpow(a % n, d);
                if x == 1 || x == n - 1 {
                    continue;
                }
                for _ in 0..r - 1 {
                    x = fmul(x, x);
                    if x == n - 1 {
                        continue 'witness;
                    }
                }
                return false;
            }
            true
        }
        assert!(is_prime(NTT_PRIME));
        assert_eq!((NTT_PRIME - 1) % (1 << 13), 0, "q ≡ 1 mod 2^13");
        // g is primitive iff g^((q-1)/p) != 1 for every prime p | q-1.
        // q - 1 = 2^13 · 7 · 4139 · 9715078753.
        let factors: [u64; 4] = [2, 7, 4139, 9715078753];
        let mut rem = NTT_PRIME - 1;
        for &f in &factors {
            while rem.is_multiple_of(f) {
                rem /= f;
            }
        }
        assert_eq!(rem, 1, "factorization of q-1 must be complete");
        for &f in &factors {
            assert_ne!(fpow(NTT_GENERATOR, (NTT_PRIME - 1) / f), 1, "g^((q-1)/{f}) must not be 1");
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let mut rng = SecureRng::seed_from_u64(91);
        for n in [8usize, 64, 1024] {
            let plan = NttPlan::new(n);
            let p = TorusPoly::uniform(n, &mut rng);
            let mut a = vec![0u64; n];
            plan.forward_torus_into(&p, &mut a);
            let mut back = TorusPoly::zero(n);
            plan.inverse_torus_into(&mut a, &mut back);
            assert_eq!(back, p, "n={n}");
        }
    }

    #[test]
    fn negacyclic_product_matches_schoolbook() {
        use crate::poly::naive_negacyclic_mul;
        let mut rng = SecureRng::seed_from_u64(92);
        for n in [8usize, 64, 256] {
            let plan = NttPlan::new(n);
            // Signed digits in [-64, 64), the gadget-decomposition range.
            let digit = IntPoly::from_coeffs(
                TorusPoly::uniform(n, &mut rng)
                    .coeffs()
                    .iter()
                    .map(|c| (c.0 % 128) as i32 - 64)
                    .collect(),
            );
            let torus = TorusPoly::uniform(n, &mut rng);
            let want = naive_negacyclic_mul(&digit, &torus);
            let mut fa = vec![0u64; n];
            let mut fb = vec![0u64; n];
            plan.forward_int_into(&digit, &mut fa);
            plan.forward_torus_into(&torus, &mut fb);
            for (a, &b) in fa.iter_mut().zip(&fb) {
                *a = fmul(*a, b);
            }
            let mut got = TorusPoly::zero(n);
            plan.inverse_torus_into(&mut fa, &mut got);
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn unknown_transform_env_degrades_to_fft() {
        let _g = transform_guard().write().unwrap();
        assert_eq!(
            match "sideways" {
                v if v.eq_ignore_ascii_case("ntt") => Transform::Ntt,
                _ => Transform::Fft,
            },
            Transform::Fft
        );
        // And the setter/getter round-trips both values.
        let restore = active_transform();
        set_active_transform(Transform::Ntt);
        assert!(ntt_selected());
        set_active_transform(Transform::Fft);
        assert!(!ntt_selected());
        set_active_transform(restore);
    }
}
