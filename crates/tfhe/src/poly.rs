//! Polynomials over the ring `T[X]/(X^N + 1)` (torus coefficients) and
//! `Z[X]/(X^N + 1)` (integer coefficients).
//!
//! The negacyclic ring (`X^N = -1`) is the home of TLWE/TGSW ciphertexts.
//! Schoolbook multiplication here is the correctness oracle for the FFT
//! fast path in [`crate::fft`].

use crate::rng::SecureRng;
use crate::torus::Torus32;
use crate::trace::note_buffer_alloc;

/// A polynomial with torus coefficients, reduced modulo `X^N + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TorusPoly {
    coeffs: Vec<Torus32>,
}

impl TorusPoly {
    /// The zero polynomial of degree bound `n`.
    pub fn zero(n: usize) -> Self {
        note_buffer_alloc();
        TorusPoly { coeffs: vec![Torus32::ZERO; n] }
    }

    /// Builds a polynomial from coefficients.
    pub fn from_coeffs(coeffs: Vec<Torus32>) -> Self {
        note_buffer_alloc();
        TorusPoly { coeffs }
    }

    /// The constant polynomial `c` of degree bound `n`.
    pub fn constant(c: Torus32, n: usize) -> Self {
        let mut p = Self::zero(n);
        p.coeffs[0] = c;
        p
    }

    /// A polynomial with every coefficient equal to `c` — the test vector
    /// of gate bootstrapping.
    pub fn fill(c: Torus32, n: usize) -> Self {
        note_buffer_alloc();
        TorusPoly { coeffs: vec![c; n] }
    }

    /// Overwrites every coefficient with `c`, reusing the allocation.
    pub fn fill_assign(&mut self, c: Torus32) {
        self.coeffs.fill(c);
    }

    /// Overwrites `self` with a copy of `other` (same length) without
    /// allocating. The derived `clone_from` would reallocate.
    pub fn copy_from(&mut self, other: &TorusPoly) {
        debug_assert_eq!(self.len(), other.len());
        self.coeffs.copy_from_slice(&other.coeffs);
    }

    /// Uniformly random polynomial (the mask of a TLWE sample).
    pub fn uniform(n: usize, rng: &mut SecureRng) -> Self {
        note_buffer_alloc();
        TorusPoly { coeffs: (0..n).map(|_| Torus32::uniform(rng)).collect() }
    }

    /// Degree bound `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the polynomial has zero length (not zero value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient slice.
    #[inline]
    pub fn coeffs(&self) -> &[Torus32] {
        &self.coeffs
    }

    /// Mutable coefficient slice.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [Torus32] {
        &mut self.coeffs
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &TorusPoly) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a += *b;
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &TorusPoly) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a -= *b;
        }
    }

    /// Adds gaussian noise to every coefficient.
    pub fn add_gaussian(&mut self, stdev: f64, rng: &mut SecureRng) {
        for c in &mut self.coeffs {
            *c = c.add_gaussian(stdev, rng);
        }
    }

    /// Returns `X^k * self` in the negacyclic ring, for `k` in `[0, 2N)`.
    ///
    /// Multiplying by `X^N` negates the polynomial, so rotations by `k ≥ N`
    /// wrap with a sign flip — the mechanism blind rotation exploits.
    pub fn mul_by_xk(&self, k: usize) -> TorusPoly {
        let mut out = TorusPoly::zero(self.len());
        self.mul_by_xk_into(k, &mut out);
        out
    }

    /// Like [`TorusPoly::mul_by_xk`], writing into `out` (same length)
    /// without allocating.
    pub fn mul_by_xk_into(&self, k: usize, out: &mut TorusPoly) {
        let n = self.len();
        debug_assert!(k < 2 * n, "rotation amount {k} out of range for N={n}");
        debug_assert_eq!(out.len(), n);
        let (shift, negate) = if k < n { (k, false) } else { (k - n, true) };
        for (i, &c) in self.coeffs.iter().enumerate() {
            let j = i + shift;
            let (j, flip) = if j < n { (j, negate) } else { (j - n, !negate) };
            out.coeffs[j] = if flip { -c } else { c };
        }
    }
}

/// A polynomial with (small) integer coefficients, reduced modulo
/// `X^N + 1` — the result of gadget decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntPoly {
    coeffs: Vec<i32>,
}

impl IntPoly {
    /// The zero polynomial of degree bound `n`.
    pub fn zero(n: usize) -> Self {
        note_buffer_alloc();
        IntPoly { coeffs: vec![0; n] }
    }

    /// Builds a polynomial from coefficients.
    pub fn from_coeffs(coeffs: Vec<i32>) -> Self {
        note_buffer_alloc();
        IntPoly { coeffs }
    }

    /// A uniformly random *binary* polynomial — a TLWE secret key share.
    pub fn binary(n: usize, rng: &mut SecureRng) -> Self {
        note_buffer_alloc();
        IntPoly { coeffs: (0..n).map(|_| i32::from(rng.bit())).collect() }
    }

    /// Degree bound.
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the polynomial has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient slice.
    #[inline]
    pub fn coeffs(&self) -> &[i32] {
        &self.coeffs
    }

    /// Mutable coefficient slice.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [i32] {
        &mut self.coeffs
    }
}

/// Schoolbook negacyclic product `a * b` over `T[X]/(X^N + 1)`.
///
/// Quadratic; used as the FFT correctness oracle and for the miniature
/// testing parameters.
pub fn naive_negacyclic_mul(a: &IntPoly, b: &TorusPoly) -> TorusPoly {
    let n = b.len();
    debug_assert_eq!(a.len(), n);
    let mut out = TorusPoly::zero(n);
    for (i, &ai) in a.coeffs().iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.coeffs().iter().enumerate() {
            let k = i + j;
            let term = ai * bj;
            if k < n {
                out.coeffs[k] += term;
            } else {
                out.coeffs[k - n] -= term;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_by_zero_is_identity() {
        let mut rng = SecureRng::seed_from_u64(1);
        let p = TorusPoly::uniform(16, &mut rng);
        assert_eq!(p.mul_by_xk(0), p);
    }

    #[test]
    fn rotation_by_n_negates() {
        let mut rng = SecureRng::seed_from_u64(2);
        let p = TorusPoly::uniform(16, &mut rng);
        let q = p.mul_by_xk(16);
        for (a, b) in p.coeffs().iter().zip(q.coeffs()) {
            assert_eq!(-*a, *b);
        }
    }

    #[test]
    fn rotation_composes() {
        let mut rng = SecureRng::seed_from_u64(3);
        let p = TorusPoly::uniform(16, &mut rng);
        let q = p.mul_by_xk(5).mul_by_xk(9);
        assert_eq!(q, p.mul_by_xk(14));
        let r = p.mul_by_xk(20).mul_by_xk(20);
        assert_eq!(r, p.mul_by_xk(8)); // 40 mod 32 = 8
    }

    #[test]
    fn rotation_matches_naive_monomial_product() {
        let mut rng = SecureRng::seed_from_u64(4);
        let n = 16;
        let p = TorusPoly::uniform(n, &mut rng);
        for k in 0..n {
            let mut mono = IntPoly::zero(n);
            mono.coeffs_mut()[k] = 1;
            assert_eq!(naive_negacyclic_mul(&mono, &p), p.mul_by_xk(k), "k={k}");
        }
    }

    #[test]
    fn naive_mul_by_constant_two() {
        let mut rng = SecureRng::seed_from_u64(5);
        let n = 8;
        let p = TorusPoly::uniform(n, &mut rng);
        let mut two = IntPoly::zero(n);
        two.coeffs_mut()[0] = 2;
        let q = naive_negacyclic_mul(&two, &p);
        for (a, b) in p.coeffs().iter().zip(q.coeffs()) {
            assert_eq!(*a + *a, *b);
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut rng = SecureRng::seed_from_u64(6);
        let a = TorusPoly::uniform(32, &mut rng);
        let b = TorusPoly::uniform(32, &mut rng);
        let mut c = a.clone();
        c.add_assign(&b);
        c.sub_assign(&b);
        assert_eq!(a, c);
    }
}
