//! TFHE parameter sets.

use std::fmt;

/// Coarse security classification of a parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// ~128-bit security: the paper's setting (`λ = 128`, Section II-D).
    Bits128,
    /// **No security whatsoever** — a miniature parameter set exercising
    /// the identical algorithms for fast tests.
    Testing,
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityLevel::Bits128 => write!(f, "128-bit"),
            SecurityLevel::Testing => write!(f, "testing (insecure)"),
        }
    }
}

/// The complete parameter set of the gate-bootstrapping TFHE instance.
///
/// Field names follow the TFHE paper: `n` is the LWE dimension, `N` the
/// ring dimension, `k` the GLWE dimension, `(l, Bg)` the gadget
/// decomposition of the bootstrapping key, and `(t, base)` the key-switch
/// decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// LWE dimension `n` (the dimension gate inputs/outputs live in).
    pub lwe_dim: usize,
    /// Standard deviation of fresh LWE noise (also the key-switch output
    /// noise target).
    pub lwe_noise_stdev: f64,
    /// Ring dimension `N` (power of two).
    pub poly_size: usize,
    /// GLWE dimension `k`.
    pub glwe_dim: usize,
    /// Standard deviation of bootstrapping-key noise.
    pub glwe_noise_stdev: f64,
    /// Gadget decomposition levels `l` of the bootstrapping key.
    pub decomp_levels: usize,
    /// Log2 of the gadget decomposition base (`Bg = 2^decomp_base_log`).
    pub decomp_base_log: usize,
    /// Key-switch decomposition length `t`.
    pub ks_levels: usize,
    /// Log2 of the key-switch base.
    pub ks_base_log: usize,
    /// Security classification.
    pub security: SecurityLevel,
}

impl Params {
    /// The default 128-bit gate-bootstrapping parameters of the TFHE
    /// library, as used by the paper (Section II-D: "we use the default
    /// parameter set as described in Section VIII of the TFHE paper").
    pub fn default_128() -> Self {
        Params {
            lwe_dim: 630,
            lwe_noise_stdev: 2.44e-5,
            poly_size: 1024,
            glwe_dim: 1,
            glwe_noise_stdev: 7.18e-9,
            decomp_levels: 3,
            decomp_base_log: 7,
            ks_levels: 8,
            ks_base_log: 2,
            security: SecurityLevel::Bits128,
        }
    }

    /// A miniature, **insecure** parameter set for tests: same algorithms,
    /// ~100× faster. Noise magnitudes are scaled so that decryption of
    /// bootstrapped gates is still overwhelmingly reliable.
    pub fn testing() -> Self {
        Params {
            lwe_dim: 64,
            lwe_noise_stdev: 3.0e-6,
            poly_size: 128,
            glwe_dim: 1,
            glwe_noise_stdev: 1.0e-9,
            decomp_levels: 3,
            decomp_base_log: 7,
            ks_levels: 8,
            ks_base_log: 2,
            security: SecurityLevel::Testing,
        }
    }

    /// A miniature, **insecure** parameter set for multi-bit (shortint)
    /// tests: the same LWE dimension as [`Params::testing`] but an 8×
    /// larger ring, so programmable bootstrapping can resolve 4-bit
    /// message windows. The analytical decode-failure probability of a
    /// width-4 packed LUT stays below 2^-40 (see
    /// [`crate::NoiseModel::lut_failure_probability`]), which the plain
    /// testing set cannot achieve at any multi-bit precision — its
    /// mod-switch rounding noise alone overwhelms the 4-bit window.
    pub fn testing_shortint() -> Self {
        Params {
            lwe_dim: 64,
            lwe_noise_stdev: 1.0e-6,
            poly_size: 1024,
            glwe_dim: 1,
            glwe_noise_stdev: 1.0e-9,
            decomp_levels: 3,
            decomp_base_log: 7,
            ks_levels: 6,
            ks_base_log: 3,
            security: SecurityLevel::Testing,
        }
    }

    /// A 128-bit-class parameter set sized for 4-bit programmable
    /// bootstrapping, modeled on the shortint `message_2_carry_2`
    /// parameter class of tfhe-rs: a 4096 ring and a coarser 2-level
    /// gadget keep width-4 packed-LUT decode failure at ~2e-19, well
    /// under the 2^-40 admission budget.
    pub fn shortint_128() -> Self {
        Params {
            lwe_dim: 742,
            lwe_noise_stdev: 1.0e-6,
            poly_size: 4096,
            glwe_dim: 1,
            glwe_noise_stdev: 2.2e-17,
            decomp_levels: 2,
            decomp_base_log: 15,
            ks_levels: 6,
            ks_base_log: 4,
            security: SecurityLevel::Bits128,
        }
    }

    /// The LWE dimension of samples extracted from TLWE ciphertexts
    /// (`k * N`); the key-switching key converts from this dimension back
    /// to [`Params::lwe_dim`].
    pub fn extracted_lwe_dim(&self) -> usize {
        self.glwe_dim * self.poly_size
    }

    /// Size in bytes of one serialized LWE ciphertext (`(n + 1)` torus
    /// elements). For the default parameters this is 2 524 bytes — the
    /// "2.46 KB" ciphertext size of the paper's Figure 7 analysis.
    pub fn ciphertext_bytes(&self) -> usize {
        (self.lwe_dim + 1) * 4
    }

    /// A stable identifier for serialization headers. The shortint sets
    /// are matched structurally (they share a [`SecurityLevel`] with the
    /// boolean sets but differ in every dimension that matters on the
    /// wire).
    pub(crate) fn id(&self) -> u32 {
        if *self == Params::testing_shortint() {
            3
        } else if *self == Params::shortint_128() {
            4
        } else {
            match self.security {
                SecurityLevel::Bits128 => 1,
                SecurityLevel::Testing => 2,
            }
        }
    }

    /// Inverse of [`Params::id`].
    pub(crate) fn from_id(id: u32) -> Option<Self> {
        match id {
            1 => Some(Params::default_128()),
            2 => Some(Params::testing()),
            3 => Some(Params::testing_shortint()),
            4 => Some(Params::shortint_128()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_tfhe_library() {
        let p = Params::default_128();
        assert_eq!(p.lwe_dim, 630);
        assert_eq!(p.poly_size, 1024);
        assert_eq!(p.glwe_dim, 1);
        assert_eq!(p.decomp_levels, 3);
        assert_eq!(p.decomp_base_log, 7);
        assert_eq!(p.ks_levels, 8);
        assert_eq!(p.ks_base_log, 2);
        assert_eq!(p.extracted_lwe_dim(), 1024);
    }

    #[test]
    fn ciphertext_matches_paper_size() {
        // The paper: "a piece of ciphertext in the TFHE context is only
        // 2.46 KB in size".
        let kb = Params::default_128().ciphertext_bytes() as f64 / 1024.0;
        assert!((kb - 2.46).abs() < 0.01, "got {kb} KB");
    }

    #[test]
    fn id_round_trip() {
        let all = [
            Params::default_128(),
            Params::testing(),
            Params::testing_shortint(),
            Params::shortint_128(),
        ];
        for p in all {
            assert_eq!(Params::from_id(p.id()), Some(p));
        }
        // Ids are pairwise distinct.
        let mut ids: Vec<u32> = all.iter().map(Params::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        assert_eq!(Params::from_id(99), None);
    }

    #[test]
    fn poly_sizes_are_powers_of_two() {
        for p in [
            Params::default_128(),
            Params::testing(),
            Params::testing_shortint(),
            Params::shortint_128(),
        ] {
            assert!(p.poly_size.is_power_of_two());
        }
    }

    #[test]
    fn shortint_rings_resolve_four_bit_windows() {
        // A 4-bit message space needs 2N / 2^(p+1) >= 1 phase positions
        // per window with comfortable slack for mod-switch rounding.
        for p in [Params::testing_shortint(), Params::shortint_128()] {
            assert!(2 * p.poly_size / (1 << 5) >= 32, "ring {} too small", p.poly_size);
        }
    }
}
