//! TFHE parameter sets.

use std::fmt;

/// Coarse security classification of a parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// ~128-bit security: the paper's setting (`λ = 128`, Section II-D).
    Bits128,
    /// **No security whatsoever** — a miniature parameter set exercising
    /// the identical algorithms for fast tests.
    Testing,
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityLevel::Bits128 => write!(f, "128-bit"),
            SecurityLevel::Testing => write!(f, "testing (insecure)"),
        }
    }
}

/// The complete parameter set of the gate-bootstrapping TFHE instance.
///
/// Field names follow the TFHE paper: `n` is the LWE dimension, `N` the
/// ring dimension, `k` the GLWE dimension, `(l, Bg)` the gadget
/// decomposition of the bootstrapping key, and `(t, base)` the key-switch
/// decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// LWE dimension `n` (the dimension gate inputs/outputs live in).
    pub lwe_dim: usize,
    /// Standard deviation of fresh LWE noise (also the key-switch output
    /// noise target).
    pub lwe_noise_stdev: f64,
    /// Ring dimension `N` (power of two).
    pub poly_size: usize,
    /// GLWE dimension `k`.
    pub glwe_dim: usize,
    /// Standard deviation of bootstrapping-key noise.
    pub glwe_noise_stdev: f64,
    /// Gadget decomposition levels `l` of the bootstrapping key.
    pub decomp_levels: usize,
    /// Log2 of the gadget decomposition base (`Bg = 2^decomp_base_log`).
    pub decomp_base_log: usize,
    /// Key-switch decomposition length `t`.
    pub ks_levels: usize,
    /// Log2 of the key-switch base.
    pub ks_base_log: usize,
    /// Security classification.
    pub security: SecurityLevel,
}

impl Params {
    /// The default 128-bit gate-bootstrapping parameters of the TFHE
    /// library, as used by the paper (Section II-D: "we use the default
    /// parameter set as described in Section VIII of the TFHE paper").
    pub fn default_128() -> Self {
        Params {
            lwe_dim: 630,
            lwe_noise_stdev: 2.44e-5,
            poly_size: 1024,
            glwe_dim: 1,
            glwe_noise_stdev: 7.18e-9,
            decomp_levels: 3,
            decomp_base_log: 7,
            ks_levels: 8,
            ks_base_log: 2,
            security: SecurityLevel::Bits128,
        }
    }

    /// A miniature, **insecure** parameter set for tests: same algorithms,
    /// ~100× faster. Noise magnitudes are scaled so that decryption of
    /// bootstrapped gates is still overwhelmingly reliable.
    pub fn testing() -> Self {
        Params {
            lwe_dim: 64,
            lwe_noise_stdev: 3.0e-6,
            poly_size: 128,
            glwe_dim: 1,
            glwe_noise_stdev: 1.0e-9,
            decomp_levels: 3,
            decomp_base_log: 7,
            ks_levels: 8,
            ks_base_log: 2,
            security: SecurityLevel::Testing,
        }
    }

    /// The LWE dimension of samples extracted from TLWE ciphertexts
    /// (`k * N`); the key-switching key converts from this dimension back
    /// to [`Params::lwe_dim`].
    pub fn extracted_lwe_dim(&self) -> usize {
        self.glwe_dim * self.poly_size
    }

    /// Size in bytes of one serialized LWE ciphertext (`(n + 1)` torus
    /// elements). For the default parameters this is 2 524 bytes — the
    /// "2.46 KB" ciphertext size of the paper's Figure 7 analysis.
    pub fn ciphertext_bytes(&self) -> usize {
        (self.lwe_dim + 1) * 4
    }

    /// A stable identifier for serialization headers.
    pub(crate) fn id(&self) -> u32 {
        match self.security {
            SecurityLevel::Bits128 => 1,
            SecurityLevel::Testing => 2,
        }
    }

    /// Inverse of [`Params::id`].
    pub(crate) fn from_id(id: u32) -> Option<Self> {
        match id {
            1 => Some(Params::default_128()),
            2 => Some(Params::testing()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_tfhe_library() {
        let p = Params::default_128();
        assert_eq!(p.lwe_dim, 630);
        assert_eq!(p.poly_size, 1024);
        assert_eq!(p.glwe_dim, 1);
        assert_eq!(p.decomp_levels, 3);
        assert_eq!(p.decomp_base_log, 7);
        assert_eq!(p.ks_levels, 8);
        assert_eq!(p.ks_base_log, 2);
        assert_eq!(p.extracted_lwe_dim(), 1024);
    }

    #[test]
    fn ciphertext_matches_paper_size() {
        // The paper: "a piece of ciphertext in the TFHE context is only
        // 2.46 KB in size".
        let kb = Params::default_128().ciphertext_bytes() as f64 / 1024.0;
        assert!((kb - 2.46).abs() < 0.01, "got {kb} KB");
    }

    #[test]
    fn id_round_trip() {
        for p in [Params::default_128(), Params::testing()] {
            assert_eq!(Params::from_id(p.id()), Some(p));
        }
        assert_eq!(Params::from_id(99), None);
    }

    #[test]
    fn poly_sizes_are_powers_of_two() {
        for p in [Params::default_128(), Params::testing()] {
            assert!(p.poly_size.is_power_of_two());
        }
    }
}
