//! NEON kernels: 2×`f64` / 4×`u32` lanes (`std::arch::aarch64`).
//!
//! NEON (Advanced SIMD) is part of the baseline AArch64 ISA, so there
//! is no runtime feature probe beyond the target architecture itself;
//! the `#[target_feature(enable = "neon")]` attributes keep the
//! compiler honest about which instructions each function may use.
//!
//! Like the AVX2 backend, `f64` kernels use fused multiply-add
//! (`vfmaq_f64` / `vfmsq_f64`) and therefore match scalar only in the
//! torus domain after rounding; integer kernels are bit-identical. The
//! final rounding uses `vcvtnq_s64_f64` — AArch64's native
//! round-to-nearest-even `f64 → i64` convert — followed by `vmovn_s64`,
//! which truncates to the low 32 bits exactly like the scalar
//! `as i64 as u32` cast.

use crate::torus::Torus32;
use std::arch::aarch64::*;

pub fn mac(sr: &mut [f64], si: &mut [f64], ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    // SAFETY: NEON is baseline on every AArch64 CPU this cfg compiles for.
    unsafe { mac_impl(sr, si, ar, ai, br, bi) }
}

#[target_feature(enable = "neon")]
unsafe fn mac_impl(sr: &mut [f64], si: &mut [f64], ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    let m = sr.len();
    let mut j = 0;
    while j + 2 <= m {
        let var = vld1q_f64(ar.as_ptr().add(j));
        let vai = vld1q_f64(ai.as_ptr().add(j));
        let vbr = vld1q_f64(br.as_ptr().add(j));
        let vbi = vld1q_f64(bi.as_ptr().add(j));
        // re += ar·br - ai·bi,  im += ar·bi + ai·br
        let pr = vfmsq_f64(vmulq_f64(var, vbr), vai, vbi);
        let pi = vfmaq_f64(vmulq_f64(var, vbi), vai, vbr);
        vst1q_f64(sr.as_mut_ptr().add(j), vaddq_f64(vld1q_f64(sr.as_ptr().add(j)), pr));
        vst1q_f64(si.as_mut_ptr().add(j), vaddq_f64(vld1q_f64(si.as_ptr().add(j)), pi));
        j += 2;
    }
    while j < m {
        sr[j] += ar[j] * br[j] - ai[j] * bi[j];
        si[j] += ar[j] * bi[j] + ai[j] * br[j];
        j += 1;
    }
}

pub fn fft_passes(re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
    // SAFETY: see `mac`.
    unsafe { fft_passes_impl(re, im, st_re, st_im) }
}

#[target_feature(enable = "neon")]
unsafe fn fft_passes_impl(re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
    let m = re.len();
    let mut len = 2;
    let mut pos = 0;
    while len <= m {
        let half = len / 2;
        let w_re = &st_re[pos..pos + half];
        let w_im = &st_im[pos..pos + half];
        if half < 2 {
            // The first stage (half = 1, twiddle 1 + 0i) stays scalar.
            for start in (0..m).step_by(len) {
                let ur = re[start];
                let ui = im[start];
                let xr = re[start + 1];
                let xi = im[start + 1];
                let wr = w_re[0];
                let wi = w_im[0];
                let vr = xr * wr - xi * wi;
                let vi = xr * wi + xi * wr;
                re[start] = ur + vr;
                im[start] = ui + vi;
                re[start + 1] = ur - vr;
                im[start + 1] = ui - vi;
            }
        } else {
            for start in (0..m).step_by(len) {
                let mut j = 0;
                while j < half {
                    let vwr = vld1q_f64(w_re.as_ptr().add(j));
                    let vwi = vld1q_f64(w_im.as_ptr().add(j));
                    let xr = vld1q_f64(re.as_ptr().add(start + j + half));
                    let xi = vld1q_f64(im.as_ptr().add(start + j + half));
                    let vr = vfmsq_f64(vmulq_f64(xr, vwr), xi, vwi);
                    let vi = vfmaq_f64(vmulq_f64(xr, vwi), xi, vwr);
                    let ur = vld1q_f64(re.as_ptr().add(start + j));
                    let ui = vld1q_f64(im.as_ptr().add(start + j));
                    vst1q_f64(re.as_mut_ptr().add(start + j), vaddq_f64(ur, vr));
                    vst1q_f64(im.as_mut_ptr().add(start + j), vaddq_f64(ui, vi));
                    vst1q_f64(re.as_mut_ptr().add(start + j + half), vsubq_f64(ur, vr));
                    vst1q_f64(im.as_mut_ptr().add(start + j + half), vsubq_f64(ui, vi));
                    j += 2;
                }
            }
        }
        pos += half;
        len <<= 1;
    }
}

pub fn fwd_twist(c: &[i32], tw_re: &[f64], tw_im: &[f64], re: &mut [f64], im: &mut [f64]) {
    // SAFETY: see `mac`.
    unsafe { fwd_twist_impl(c, tw_re, tw_im, re, im) }
}

#[target_feature(enable = "neon")]
unsafe fn fwd_twist_impl(c: &[i32], tw_re: &[f64], tw_im: &[f64], re: &mut [f64], im: &mut [f64]) {
    let m = re.len();
    let (lo, hi) = c.split_at(m);
    let mut j = 0;
    while j + 2 <= m {
        let vlo = vcvtq_f64_s64(vmovl_s32(vld1_s32(lo.as_ptr().add(j))));
        let vhi = vcvtq_f64_s64(vmovl_s32(vld1_s32(hi.as_ptr().add(j))));
        let vtr = vld1q_f64(tw_re.as_ptr().add(j));
        let vti = vld1q_f64(tw_im.as_ptr().add(j));
        let vre = vfmsq_f64(vmulq_f64(vlo, vtr), vhi, vti);
        let vim = vfmaq_f64(vmulq_f64(vlo, vti), vhi, vtr);
        vst1q_f64(re.as_mut_ptr().add(j), vre);
        vst1q_f64(im.as_mut_ptr().add(j), vim);
        j += 2;
    }
    while j < m {
        let l = lo[j] as f64;
        let h = hi[j] as f64;
        re[j] = l * tw_re[j] - h * tw_im[j];
        im[j] = l * tw_im[j] + h * tw_re[j];
        j += 1;
    }
}

pub fn inv_untwist_round(
    re: &mut [f64],
    im: &mut [f64],
    tw_re: &[f64],
    tw_im: &[f64],
    out: &mut [Torus32],
) {
    // SAFETY: see `mac`.
    unsafe { inv_untwist_round_impl(re, im, tw_re, tw_im, out) }
}

#[target_feature(enable = "neon")]
unsafe fn inv_untwist_round_impl(
    re: &mut [f64],
    im: &mut [f64],
    tw_re: &[f64],
    tw_im: &[f64],
    out: &mut [Torus32],
) {
    let m = re.len();
    let scale = 1.0 / m as f64;
    let (out_lo, out_hi) = out.split_at_mut(m);
    let vscale = vdupq_n_f64(scale);
    let mut j = 0;
    while j + 2 <= m {
        let vcr = vmulq_f64(vld1q_f64(re.as_ptr().add(j)), vscale);
        let vci = vmulq_f64(vld1q_f64(im.as_ptr().add(j)), vscale);
        let vtr = vld1q_f64(tw_re.as_ptr().add(j));
        let vti = vld1q_f64(tw_im.as_ptr().add(j));
        // dr = cr·twr + ci·twi,  di = ci·twr - cr·twi
        let vdr = vfmaq_f64(vmulq_f64(vci, vti), vcr, vtr);
        let vdi = vfmsq_f64(vmulq_f64(vci, vtr), vcr, vti);
        let rlow = vmovn_s64(vcvtnq_s64_f64(vdr));
        let ilow = vmovn_s64(vcvtnq_s64_f64(vdi));
        vst1_s32(out_lo.as_mut_ptr().add(j) as *mut i32, rlow);
        vst1_s32(out_hi.as_mut_ptr().add(j) as *mut i32, ilow);
        j += 2;
    }
    while j < m {
        let cr = re[j] * scale;
        let ci = im[j] * scale;
        let dr = cr * tw_re[j] + ci * tw_im[j];
        let di = ci * tw_re[j] - cr * tw_im[j];
        out_lo[j] = Torus32((dr.round_ties_even() as i64) as u32);
        out_hi[j] = Torus32((di.round_ties_even() as i64) as u32);
        j += 1;
    }
}

pub fn extract_digits(
    c: &[Torus32],
    offset: u32,
    shift: u32,
    mask: u32,
    half_base: i32,
    out: &mut [i32],
) {
    // SAFETY: see `mac`.
    unsafe { extract_digits_impl(c, offset, shift, mask, half_base, out) }
}

#[target_feature(enable = "neon")]
unsafe fn extract_digits_impl(
    c: &[Torus32],
    offset: u32,
    shift: u32,
    mask: u32,
    half_base: i32,
    out: &mut [i32],
) {
    let n = c.len();
    // Torus32 is #[repr(transparent)] over u32 (see `crate::torus`).
    let cp = c.as_ptr() as *const u32;
    let voff = vdupq_n_u32(offset);
    let vmask = vdupq_n_u32(mask);
    let vhalf = vdupq_n_s32(half_base);
    // vshlq by a negative count is a logical right shift.
    let vshift = vdupq_n_s32(-(shift as i32));
    let mut j = 0;
    while j + 4 <= n {
        let v = vld1q_u32(cp.add(j));
        let t = vaddq_u32(v, voff);
        let s = vandq_u32(vshlq_u32(t, vshift), vmask);
        let d = vsubq_s32(vreinterpretq_s32_u32(s), vhalf);
        vst1q_s32(out.as_mut_ptr().add(j), d);
        j += 4;
    }
    while j < n {
        out[j] = ((c[j].0.wrapping_add(offset) >> shift) & mask) as i32 - half_base;
        j += 1;
    }
}

pub fn sub_assign(dst: &mut [Torus32], src: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { sub_assign_impl(dst, src) }
}

#[target_feature(enable = "neon")]
unsafe fn sub_assign_impl(dst: &mut [Torus32], src: &[Torus32]) {
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut u32;
    let sp = src.as_ptr() as *const u32;
    let mut j = 0;
    while j + 4 <= n {
        let a = vld1q_u32(dp.add(j));
        let b = vld1q_u32(sp.add(j));
        vst1q_u32(dp.add(j), vsubq_u32(a, b));
        j += 4;
    }
    while j < n {
        dst[j] -= src[j];
        j += 1;
    }
}

pub fn axpy(dst: &mut [Torus32], coeff: i32, src: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { axpy_impl(dst, coeff, src) }
}

#[target_feature(enable = "neon")]
unsafe fn axpy_impl(dst: &mut [Torus32], coeff: i32, src: &[Torus32]) {
    let n = dst.len();
    // `vmlaq_s32` keeps the low 32 product bits — exactly the scalar
    // path's `u32::wrapping_mul`, so the kernel is bit-identical.
    let dp = dst.as_mut_ptr() as *mut i32;
    let sp = src.as_ptr() as *const i32;
    let vc = vdupq_n_s32(coeff);
    let mut j = 0;
    while j + 4 <= n {
        let a = vld1q_s32(dp.add(j));
        let b = vld1q_s32(sp.add(j));
        vst1q_s32(dp.add(j), vmlaq_s32(a, b, vc));
        j += 4;
    }
    while j < n {
        dst[j] += coeff * src[j];
        j += 1;
    }
}

pub fn sub_assign2(dst: &mut [Torus32], a: &[Torus32], b: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { sub_assign2_impl(dst, a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn sub_assign2_impl(dst: &mut [Torus32], a: &[Torus32], b: &[Torus32]) {
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut u32;
    let ap = a.as_ptr() as *const u32;
    let bp = b.as_ptr() as *const u32;
    let mut j = 0;
    while j + 4 <= n {
        let d = vld1q_u32(dp.add(j));
        let va = vld1q_u32(ap.add(j));
        let vb = vld1q_u32(bp.add(j));
        vst1q_u32(dp.add(j), vsubq_u32(d, vaddq_u32(va, vb)));
        j += 4;
    }
    while j < n {
        dst[j] -= a[j] + b[j];
        j += 1;
    }
}

pub fn fft_passes_batch(
    re: &mut [f64],
    im: &mut [f64],
    st_re: &[f64],
    st_im: &[f64],
    lanes: usize,
) {
    // SAFETY: see `mac`.
    unsafe { fft_passes_batch_impl(re, im, st_re, st_im, lanes) }
}

#[target_feature(enable = "neon")]
unsafe fn fft_passes_batch_impl(
    re: &mut [f64],
    im: &mut [f64],
    st_re: &[f64],
    st_im: &[f64],
    lanes: usize,
) {
    let m = re.len() / lanes;
    let mut len = 2;
    let mut pos = 0;
    while len <= m {
        let half = len / 2;
        let w_re = &st_re[pos..pos + half];
        let w_im = &st_im[pos..pos + half];
        for start in (0..m).step_by(len) {
            for j in 0..half {
                let wr = w_re[j];
                let wi = w_im[j];
                // Twiddle broadcast across the lane dimension keeps
                // every stage vectorized, including half = 1.
                let vwr = vdupq_n_f64(wr);
                let vwi = vdupq_n_f64(wi);
                let u = (start + j) * lanes;
                let v = (start + j + half) * lanes;
                let mut l = 0;
                while l + 2 <= lanes {
                    let xr = vld1q_f64(re.as_ptr().add(v + l));
                    let xi = vld1q_f64(im.as_ptr().add(v + l));
                    let vr = vfmsq_f64(vmulq_f64(xr, vwr), xi, vwi);
                    let vi = vfmaq_f64(vmulq_f64(xr, vwi), xi, vwr);
                    let ur = vld1q_f64(re.as_ptr().add(u + l));
                    let ui = vld1q_f64(im.as_ptr().add(u + l));
                    vst1q_f64(re.as_mut_ptr().add(u + l), vaddq_f64(ur, vr));
                    vst1q_f64(im.as_mut_ptr().add(u + l), vaddq_f64(ui, vi));
                    vst1q_f64(re.as_mut_ptr().add(v + l), vsubq_f64(ur, vr));
                    vst1q_f64(im.as_mut_ptr().add(v + l), vsubq_f64(ui, vi));
                    l += 2;
                }
                while l < lanes {
                    let xr = re[v + l];
                    let xi = im[v + l];
                    let vr = xr * wr - xi * wi;
                    let vi = xr * wi + xi * wr;
                    let ur = re[u + l];
                    let ui = im[u + l];
                    re[u + l] = ur + vr;
                    im[u + l] = ui + vi;
                    re[v + l] = ur - vr;
                    im[v + l] = ui - vi;
                    l += 1;
                }
            }
        }
        pos += half;
        len <<= 1;
    }
}

pub fn mac_bcast(
    sr: &mut [f64],
    si: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    lanes: usize,
) {
    // SAFETY: see `mac`.
    unsafe { mac_bcast_impl(sr, si, ar, ai, br, bi, lanes) }
}

#[target_feature(enable = "neon")]
unsafe fn mac_bcast_impl(
    sr: &mut [f64],
    si: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    lanes: usize,
) {
    let m = br.len();
    for j in 0..m {
        let wr = br[j];
        let wi = bi[j];
        let vwr = vdupq_n_f64(wr);
        let vwi = vdupq_n_f64(wi);
        let base = j * lanes;
        let mut l = 0;
        while l + 2 <= lanes {
            let xr = vld1q_f64(ar.as_ptr().add(base + l));
            let xi = vld1q_f64(ai.as_ptr().add(base + l));
            let pr = vfmsq_f64(vmulq_f64(xr, vwr), xi, vwi);
            let pi = vfmaq_f64(vmulq_f64(xr, vwi), xi, vwr);
            let vsr = vld1q_f64(sr.as_ptr().add(base + l));
            let vsi = vld1q_f64(si.as_ptr().add(base + l));
            vst1q_f64(sr.as_mut_ptr().add(base + l), vaddq_f64(vsr, pr));
            vst1q_f64(si.as_mut_ptr().add(base + l), vaddq_f64(vsi, pi));
            l += 2;
        }
        while l < lanes {
            let xr = ar[base + l];
            let xi = ai[base + l];
            sr[base + l] += xr * wr - xi * wi;
            si[base + l] += xr * wi + xi * wr;
            l += 1;
        }
    }
}
