//! AVX2 + FMA kernels: 4×`f64` / 8×`u32` lanes (`std::arch::x86_64`).
//!
//! Safety model: every public function here is a safe wrapper around a
//! `#[target_feature(enable = "avx2", enable = "fma")]` implementation.
//! The module is private to [`crate::simd`], and the dispatcher only
//! installs this backend after `is_x86_feature_detected!` confirmed
//! both features, so the wrappers' unsafe calls are always sound by the
//! time they are reachable.
//!
//! Tails: slices are processed in full vector chunks, then a scalar
//! remainder loop computes the same formula as [`super::scalar`] — so
//! for lengths below the lane width the output is exactly the scalar
//! one, and the proptest suite exercises every tail length.
//!
//! The `f64` kernels use fused multiply-add (`_mm256_fmadd_pd` /
//! `_mm256_fmsub_pd`); see the module docs of [`crate::simd`] for why
//! torus-domain equality, not `f64` bit-equality, is the contract.
//! Integer kernels are bit-identical to scalar.

use crate::torus::Torus32;
use std::arch::x86_64::*;

/// `round_ties_even(x)` via the mantissa-alignment trick: for
/// `|x| < 2^51`, `x + 1.5·2^52` rounds `x` to an integer (ties to even,
/// courtesy of the FP add itself) and leaves that integer's two's-
/// complement low 32 bits in the low 32 bits of the sum's mantissa —
/// exactly `(round_ties_even(x) as i64) as u32`, with no AVX-512
/// `f64 → i64` conversion needed. Transform values are below `2^47`.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

pub fn mac(sr: &mut [f64], si: &mut [f64], ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    // SAFETY: only reachable through the dispatcher, which installs this
    // backend solely when AVX2 and FMA were detected at runtime.
    unsafe { mac_impl(sr, si, ar, ai, br, bi) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mac_impl(sr: &mut [f64], si: &mut [f64], ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    let m = sr.len();
    let mut j = 0;
    while j + 4 <= m {
        let var = _mm256_loadu_pd(ar.as_ptr().add(j));
        let vai = _mm256_loadu_pd(ai.as_ptr().add(j));
        let vbr = _mm256_loadu_pd(br.as_ptr().add(j));
        let vbi = _mm256_loadu_pd(bi.as_ptr().add(j));
        // s += (ar + i·ai)(br + i·bi):
        //   re += ar·br - ai·bi,  im += ar·bi + ai·br
        let pr = _mm256_fmsub_pd(var, vbr, _mm256_mul_pd(vai, vbi));
        let pi = _mm256_fmadd_pd(var, vbi, _mm256_mul_pd(vai, vbr));
        let vsr = _mm256_loadu_pd(sr.as_ptr().add(j));
        let vsi = _mm256_loadu_pd(si.as_ptr().add(j));
        _mm256_storeu_pd(sr.as_mut_ptr().add(j), _mm256_add_pd(vsr, pr));
        _mm256_storeu_pd(si.as_mut_ptr().add(j), _mm256_add_pd(vsi, pi));
        j += 4;
    }
    while j < m {
        sr[j] += ar[j] * br[j] - ai[j] * bi[j];
        si[j] += ar[j] * bi[j] + ai[j] * br[j];
        j += 1;
    }
}

pub fn fft_passes(re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
    // SAFETY: see `mac`.
    unsafe { fft_passes_impl(re, im, st_re, st_im) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fft_passes_impl(re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
    let m = re.len();
    let mut len = 2;
    let mut pos = 0;
    while len <= m {
        let half = len / 2;
        let w_re = &st_re[pos..pos + half];
        let w_im = &st_im[pos..pos + half];
        if half < 4 {
            // First stages (half = 1, 2): below the lane width; the
            // scalar butterfly is already optimal here.
            for start in (0..m).step_by(len) {
                for j in 0..half {
                    let wr = w_re[j];
                    let wi = w_im[j];
                    let ur = re[start + j];
                    let ui = im[start + j];
                    let xr = re[start + j + half];
                    let xi = im[start + j + half];
                    let vr = xr * wr - xi * wi;
                    let vi = xr * wi + xi * wr;
                    re[start + j] = ur + vr;
                    im[start + j] = ui + vi;
                    re[start + j + half] = ur - vr;
                    im[start + j + half] = ui - vi;
                }
            }
        } else {
            // half is a power of two >= 4: the j-loop splits into exact
            // 4-lane chunks with contiguous twiddle loads (the per-stage
            // tables exist precisely to avoid strided gathers here).
            for start in (0..m).step_by(len) {
                let mut j = 0;
                while j < half {
                    let vwr = _mm256_loadu_pd(w_re.as_ptr().add(j));
                    let vwi = _mm256_loadu_pd(w_im.as_ptr().add(j));
                    let xr = _mm256_loadu_pd(re.as_ptr().add(start + j + half));
                    let xi = _mm256_loadu_pd(im.as_ptr().add(start + j + half));
                    let vr = _mm256_fmsub_pd(xr, vwr, _mm256_mul_pd(xi, vwi));
                    let vi = _mm256_fmadd_pd(xr, vwi, _mm256_mul_pd(xi, vwr));
                    let ur = _mm256_loadu_pd(re.as_ptr().add(start + j));
                    let ui = _mm256_loadu_pd(im.as_ptr().add(start + j));
                    _mm256_storeu_pd(re.as_mut_ptr().add(start + j), _mm256_add_pd(ur, vr));
                    _mm256_storeu_pd(im.as_mut_ptr().add(start + j), _mm256_add_pd(ui, vi));
                    _mm256_storeu_pd(re.as_mut_ptr().add(start + j + half), _mm256_sub_pd(ur, vr));
                    _mm256_storeu_pd(im.as_mut_ptr().add(start + j + half), _mm256_sub_pd(ui, vi));
                    j += 4;
                }
            }
        }
        pos += half;
        len <<= 1;
    }
}

pub fn fwd_twist(c: &[i32], tw_re: &[f64], tw_im: &[f64], re: &mut [f64], im: &mut [f64]) {
    // SAFETY: see `mac`.
    unsafe { fwd_twist_impl(c, tw_re, tw_im, re, im) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fwd_twist_impl(c: &[i32], tw_re: &[f64], tw_im: &[f64], re: &mut [f64], im: &mut [f64]) {
    let m = re.len();
    let (lo, hi) = c.split_at(m);
    let mut j = 0;
    while j + 4 <= m {
        let vlo = _mm256_cvtepi32_pd(_mm_loadu_si128(lo.as_ptr().add(j) as *const __m128i));
        let vhi = _mm256_cvtepi32_pd(_mm_loadu_si128(hi.as_ptr().add(j) as *const __m128i));
        let vtr = _mm256_loadu_pd(tw_re.as_ptr().add(j));
        let vti = _mm256_loadu_pd(tw_im.as_ptr().add(j));
        let vre = _mm256_fmsub_pd(vlo, vtr, _mm256_mul_pd(vhi, vti));
        let vim = _mm256_fmadd_pd(vlo, vti, _mm256_mul_pd(vhi, vtr));
        _mm256_storeu_pd(re.as_mut_ptr().add(j), vre);
        _mm256_storeu_pd(im.as_mut_ptr().add(j), vim);
        j += 4;
    }
    while j < m {
        let l = lo[j] as f64;
        let h = hi[j] as f64;
        re[j] = l * tw_re[j] - h * tw_im[j];
        im[j] = l * tw_im[j] + h * tw_re[j];
        j += 1;
    }
}

pub fn inv_untwist_round(
    re: &mut [f64],
    im: &mut [f64],
    tw_re: &[f64],
    tw_im: &[f64],
    out: &mut [Torus32],
) {
    // SAFETY: see `mac`.
    unsafe { inv_untwist_round_impl(re, im, tw_re, tw_im, out) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn inv_untwist_round_impl(
    re: &mut [f64],
    im: &mut [f64],
    tw_re: &[f64],
    tw_im: &[f64],
    out: &mut [Torus32],
) {
    let m = re.len();
    let scale = 1.0 / m as f64;
    let (out_lo, out_hi) = out.split_at_mut(m);
    let vscale = _mm256_set1_pd(scale);
    let vmagic = _mm256_set1_pd(ROUND_MAGIC);
    // Compacts the low 32 bits of each 64-bit lane into the vector's
    // low 128 bits (lane dwords 0, 2, 4, 6).
    let pack_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    let mut j = 0;
    while j + 4 <= m {
        let vcr = _mm256_mul_pd(_mm256_loadu_pd(re.as_ptr().add(j)), vscale);
        let vci = _mm256_mul_pd(_mm256_loadu_pd(im.as_ptr().add(j)), vscale);
        let vtr = _mm256_loadu_pd(tw_re.as_ptr().add(j));
        let vti = _mm256_loadu_pd(tw_im.as_ptr().add(j));
        // d = c · conj(twist):  dr = cr·twr + ci·twi,  di = ci·twr - cr·twi
        let vdr = _mm256_fmadd_pd(vcr, vtr, _mm256_mul_pd(vci, vti));
        let vdi = _mm256_fmsub_pd(vci, vtr, _mm256_mul_pd(vcr, vti));
        let rbits = _mm256_castpd_si256(_mm256_add_pd(vdr, vmagic));
        let rpack = _mm256_permutevar8x32_epi32(rbits, pack_idx);
        _mm_storeu_si128(out_lo.as_mut_ptr().add(j) as *mut __m128i, _mm256_castsi256_si128(rpack));
        let ibits = _mm256_castpd_si256(_mm256_add_pd(vdi, vmagic));
        let ipack = _mm256_permutevar8x32_epi32(ibits, pack_idx);
        _mm_storeu_si128(out_hi.as_mut_ptr().add(j) as *mut __m128i, _mm256_castsi256_si128(ipack));
        j += 4;
    }
    while j < m {
        let cr = re[j] * scale;
        let ci = im[j] * scale;
        let dr = cr * tw_re[j] + ci * tw_im[j];
        let di = ci * tw_re[j] - cr * tw_im[j];
        out_lo[j] = Torus32((dr.round_ties_even() as i64) as u32);
        out_hi[j] = Torus32((di.round_ties_even() as i64) as u32);
        j += 1;
    }
}

pub fn extract_digits(
    c: &[Torus32],
    offset: u32,
    shift: u32,
    mask: u32,
    half_base: i32,
    out: &mut [i32],
) {
    // SAFETY: see `mac`.
    unsafe { extract_digits_impl(c, offset, shift, mask, half_base, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn extract_digits_impl(
    c: &[Torus32],
    offset: u32,
    shift: u32,
    mask: u32,
    half_base: i32,
    out: &mut [i32],
) {
    let n = c.len();
    // Torus32 is #[repr(transparent)] over u32 (see `crate::torus`).
    let cp = c.as_ptr() as *const u32;
    let voff = _mm256_set1_epi32(offset as i32);
    let vmask = _mm256_set1_epi32(mask as i32);
    let vhalf = _mm256_set1_epi32(half_base);
    let vshift = _mm_cvtsi32_si128(shift as i32);
    let mut j = 0;
    while j + 8 <= n {
        let v = _mm256_loadu_si256(cp.add(j) as *const __m256i);
        let t = _mm256_add_epi32(v, voff);
        let s = _mm256_srl_epi32(t, vshift);
        let d = _mm256_sub_epi32(_mm256_and_si256(s, vmask), vhalf);
        _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, d);
        j += 8;
    }
    while j < n {
        out[j] = ((c[j].0.wrapping_add(offset) >> shift) & mask) as i32 - half_base;
        j += 1;
    }
}

pub fn sub_assign(dst: &mut [Torus32], src: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { sub_assign_impl(dst, src) }
}

#[target_feature(enable = "avx2")]
unsafe fn sub_assign_impl(dst: &mut [Torus32], src: &[Torus32]) {
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut u32;
    let sp = src.as_ptr() as *const u32;
    let mut j = 0;
    while j + 8 <= n {
        let a = _mm256_loadu_si256(dp.add(j) as *const __m256i);
        let b = _mm256_loadu_si256(sp.add(j) as *const __m256i);
        _mm256_storeu_si256(dp.add(j) as *mut __m256i, _mm256_sub_epi32(a, b));
        j += 8;
    }
    while j < n {
        dst[j] -= src[j];
        j += 1;
    }
}

pub fn sub_assign2(dst: &mut [Torus32], a: &[Torus32], b: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { sub_assign2_impl(dst, a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn sub_assign2_impl(dst: &mut [Torus32], a: &[Torus32], b: &[Torus32]) {
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut u32;
    let ap = a.as_ptr() as *const u32;
    let bp = b.as_ptr() as *const u32;
    let mut j = 0;
    while j + 8 <= n {
        let d = _mm256_loadu_si256(dp.add(j) as *const __m256i);
        let va = _mm256_loadu_si256(ap.add(j) as *const __m256i);
        let vb = _mm256_loadu_si256(bp.add(j) as *const __m256i);
        let s = _mm256_add_epi32(va, vb);
        _mm256_storeu_si256(dp.add(j) as *mut __m256i, _mm256_sub_epi32(d, s));
        j += 8;
    }
    while j < n {
        dst[j] -= a[j] + b[j];
        j += 1;
    }
}

pub fn axpy(dst: &mut [Torus32], coeff: i32, src: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { axpy_impl(dst, coeff, src) }
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_impl(dst: &mut [Torus32], coeff: i32, src: &[Torus32]) {
    let n = dst.len();
    // `_mm256_mullo_epi32` keeps the low 32 product bits — exactly the
    // scalar path's `u32::wrapping_mul`, so the kernel is bit-identical.
    let dp = dst.as_mut_ptr() as *mut i32;
    let sp = src.as_ptr() as *const i32;
    let vc = _mm256_set1_epi32(coeff);
    let mut j = 0;
    while j + 8 <= n {
        let a = _mm256_loadu_si256(dp.add(j) as *const __m256i);
        let b = _mm256_loadu_si256(sp.add(j) as *const __m256i);
        let prod = _mm256_mullo_epi32(b, vc);
        _mm256_storeu_si256(dp.add(j) as *mut __m256i, _mm256_add_epi32(a, prod));
        j += 8;
    }
    while j < n {
        dst[j] += coeff * src[j];
        j += 1;
    }
}

pub fn fft_passes_batch(
    re: &mut [f64],
    im: &mut [f64],
    st_re: &[f64],
    st_im: &[f64],
    lanes: usize,
) {
    // SAFETY: see `mac`.
    unsafe { fft_passes_batch_impl(re, im, st_re, st_im, lanes) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fft_passes_batch_impl(
    re: &mut [f64],
    im: &mut [f64],
    st_re: &[f64],
    st_im: &[f64],
    lanes: usize,
) {
    let m = re.len() / lanes;
    let mut len = 2;
    let mut pos = 0;
    while len <= m {
        let half = len / 2;
        let w_re = &st_re[pos..pos + half];
        let w_im = &st_im[pos..pos + half];
        for start in (0..m).step_by(len) {
            for j in 0..half {
                let wr = w_re[j];
                let wi = w_im[j];
                let u = (start + j) * lanes;
                let v = (start + j + half) * lanes;
                // Twiddle broadcast: the batch layout keeps every stage
                // (including half = 1, 2) running over full vectors of
                // lanes, with one twiddle load per point pair.
                let vwr = _mm256_set1_pd(wr);
                let vwi = _mm256_set1_pd(wi);
                let mut l = 0;
                while l + 4 <= lanes {
                    let xr = _mm256_loadu_pd(re.as_ptr().add(v + l));
                    let xi = _mm256_loadu_pd(im.as_ptr().add(v + l));
                    let vr = _mm256_fmsub_pd(xr, vwr, _mm256_mul_pd(xi, vwi));
                    let vi = _mm256_fmadd_pd(xr, vwi, _mm256_mul_pd(xi, vwr));
                    let ur = _mm256_loadu_pd(re.as_ptr().add(u + l));
                    let ui = _mm256_loadu_pd(im.as_ptr().add(u + l));
                    _mm256_storeu_pd(re.as_mut_ptr().add(u + l), _mm256_add_pd(ur, vr));
                    _mm256_storeu_pd(im.as_mut_ptr().add(u + l), _mm256_add_pd(ui, vi));
                    _mm256_storeu_pd(re.as_mut_ptr().add(v + l), _mm256_sub_pd(ur, vr));
                    _mm256_storeu_pd(im.as_mut_ptr().add(v + l), _mm256_sub_pd(ui, vi));
                    l += 4;
                }
                while l < lanes {
                    let xr = re[v + l];
                    let xi = im[v + l];
                    let vr = xr * wr - xi * wi;
                    let vi = xr * wi + xi * wr;
                    let ur = re[u + l];
                    let ui = im[u + l];
                    re[u + l] = ur + vr;
                    im[u + l] = ui + vi;
                    re[v + l] = ur - vr;
                    im[v + l] = ui - vi;
                    l += 1;
                }
            }
        }
        pos += half;
        len <<= 1;
    }
}

pub fn mac_bcast(
    sr: &mut [f64],
    si: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    lanes: usize,
) {
    // SAFETY: see `mac`.
    unsafe { mac_bcast_impl(sr, si, ar, ai, br, bi, lanes) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mac_bcast_impl(
    sr: &mut [f64],
    si: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    lanes: usize,
) {
    let m = br.len();
    for j in 0..m {
        let wr = br[j];
        let wi = bi[j];
        let base = j * lanes;
        let vwr = _mm256_set1_pd(wr);
        let vwi = _mm256_set1_pd(wi);
        let mut l = 0;
        while l + 4 <= lanes {
            let xr = _mm256_loadu_pd(ar.as_ptr().add(base + l));
            let xi = _mm256_loadu_pd(ai.as_ptr().add(base + l));
            let pr = _mm256_fmsub_pd(xr, vwr, _mm256_mul_pd(xi, vwi));
            let pi = _mm256_fmadd_pd(xr, vwi, _mm256_mul_pd(xi, vwr));
            let vsr = _mm256_loadu_pd(sr.as_ptr().add(base + l));
            let vsi = _mm256_loadu_pd(si.as_ptr().add(base + l));
            _mm256_storeu_pd(sr.as_mut_ptr().add(base + l), _mm256_add_pd(vsr, pr));
            _mm256_storeu_pd(si.as_mut_ptr().add(base + l), _mm256_add_pd(vsi, pi));
            l += 4;
        }
        while l < lanes {
            let xr = ar[base + l];
            let xi = ai[base + l];
            sr[base + l] += xr * wr - xi * wi;
            si[base + l] += xr * wi + xi * wr;
            l += 1;
        }
    }
}
