//! Portable scalar kernels — the pre-SIMD hot loops, moved here
//! verbatim so the fallback path is bit-identical to the code it
//! replaced. Every vector backend is tested against these.
//!
//! The loops stay written over flat slices in the same shapes the
//! autovectorizer liked before, so `PYTFHE_SIMD=scalar` costs nothing
//! relative to the pre-dispatch code.

use crate::torus::Torus32;

/// `s += a * b` pointwise over split re/im slices.
pub fn mac(sr: &mut [f64], si: &mut [f64], ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    let m = sr.len();
    let (sr, si) = (&mut sr[..m], &mut si[..m]);
    let (ar, ai) = (&ar[..m], &ai[..m]);
    let (br, bi) = (&br[..m], &bi[..m]);
    for j in 0..m {
        sr[j] += ar[j] * br[j] - ai[j] * bi[j];
        si[j] += ar[j] * bi[j] + ai[j] * br[j];
    }
}

/// All butterfly passes of one in-place radix-2 DIT FFT over
/// bit-reversed split buffers. `st_re`/`st_im` are the per-stage
/// contiguous twiddle tables (stage `len = 2` first).
pub fn fft_passes(re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
    let m = re.len();
    let mut len = 2;
    let mut pos = 0;
    while len <= m {
        let half = len / 2;
        let w_re = &st_re[pos..pos + half];
        let w_im = &st_im[pos..pos + half];
        for start in (0..m).step_by(len) {
            for j in 0..half {
                let wr = w_re[j];
                let wi = w_im[j];
                let ur = re[start + j];
                let ui = im[start + j];
                let xr = re[start + j + half];
                let xi = im[start + j + half];
                let vr = xr * wr - xi * wi;
                let vi = xr * wi + xi * wr;
                re[start + j] = ur + vr;
                im[start + j] = ui + vi;
                re[start + j + half] = ur - vr;
                im[start + j + half] = ui - vi;
            }
        }
        pos += half;
        len <<= 1;
    }
}

/// Forward fold + twist: `(c[j] + i·c[j+m]) · twist[j]` for `j < m`.
pub fn fwd_twist(c: &[i32], tw_re: &[f64], tw_im: &[f64], re: &mut [f64], im: &mut [f64]) {
    let m = re.len();
    let (lo, hi) = c.split_at(m);
    for j in 0..m {
        let l = lo[j] as f64;
        let h = hi[j] as f64;
        re[j] = l * tw_re[j] - h * tw_im[j];
        im[j] = l * tw_im[j] + h * tw_re[j];
    }
}

/// Inverse unscale + untwist + unfold + round to torus coefficients:
/// the real part lands in `out[j]`, the imaginary part in `out[j+m]`.
pub fn inv_untwist_round(
    re: &mut [f64],
    im: &mut [f64],
    tw_re: &[f64],
    tw_im: &[f64],
    out: &mut [Torus32],
) {
    let m = re.len();
    let scale = 1.0 / m as f64;
    let (out_lo, out_hi) = out.split_at_mut(m);
    for j in 0..m {
        let cr = re[j] * scale;
        let ci = im[j] * scale;
        let dr = cr * tw_re[j] + ci * tw_im[j];
        let di = ci * tw_re[j] - cr * tw_im[j];
        // Round to the nearest torus element; arithmetic is exact mod
        // 2^32 because |d| < 2^52.
        out_lo[j] = Torus32((dr.round_ties_even() as i64) as u32);
        out_hi[j] = Torus32((di.round_ties_even() as i64) as u32);
    }
}

/// One level of signed gadget decomposition.
pub fn extract_digits(
    c: &[Torus32],
    offset: u32,
    shift: u32,
    mask: u32,
    half_base: i32,
    out: &mut [i32],
) {
    for (o, &cj) in out.iter_mut().zip(c) {
        *o = ((cj.0.wrapping_add(offset) >> shift) & mask) as i32 - half_base;
    }
}

/// Wrapping element-wise `dst -= src`.
pub fn sub_assign(dst: &mut [Torus32], src: &[Torus32]) {
    for (x, y) in dst.iter_mut().zip(src) {
        *x -= *y;
    }
}

/// Fused wrapping `dst -= a + b` — the paired key-switch row
/// subtraction. Equals two sequential [`sub_assign`] calls bit-for-bit
/// (addition in `Z/2^32` is associative) while touching `dst` once.
pub fn sub_assign2(dst: &mut [Torus32], a: &[Torus32], b: &[Torus32]) {
    let n = dst.len();
    let (dst, a, b) = (&mut dst[..n], &a[..n], &b[..n]);
    for j in 0..n {
        dst[j] -= a[j] + b[j];
    }
}

/// Wrapping element-wise `dst += coeff * src` — the mask accumulation
/// of the gate linear combinations (`coeff` is one of the small signed
/// integers of the gate recipes).
pub fn axpy(dst: &mut [Torus32], coeff: i32, src: &[Torus32]) {
    for (x, y) in dst.iter_mut().zip(src) {
        *x += coeff * *y;
    }
}

/// Butterfly passes over a point-major batch: `lanes` consecutive
/// values per frequency point, `m = len / lanes` points per buffer.
/// Same stage/twiddle walk as [`fft_passes`], with each twiddle applied
/// to every lane of its point pair.
pub fn fft_passes_batch(
    re: &mut [f64],
    im: &mut [f64],
    st_re: &[f64],
    st_im: &[f64],
    lanes: usize,
) {
    let m = re.len() / lanes;
    let mut len = 2;
    let mut pos = 0;
    while len <= m {
        let half = len / 2;
        let w_re = &st_re[pos..pos + half];
        let w_im = &st_im[pos..pos + half];
        for start in (0..m).step_by(len) {
            for j in 0..half {
                let wr = w_re[j];
                let wi = w_im[j];
                let u = (start + j) * lanes;
                let v = (start + j + half) * lanes;
                for l in 0..lanes {
                    let ur = re[u + l];
                    let ui = im[u + l];
                    let xr = re[v + l];
                    let xi = im[v + l];
                    let vr = xr * wr - xi * wi;
                    let vi = xr * wi + xi * wr;
                    re[u + l] = ur + vr;
                    im[u + l] = ui + vi;
                    re[v + l] = ur - vr;
                    im[v + l] = ui - vi;
                }
            }
        }
        pos += half;
        len <<= 1;
    }
}

/// Broadcast multiply-accumulate over split complex slices:
/// `s[point·lanes + l] += a[point·lanes + l] * b[point]` — the batched
/// external product's MAC, loading each bootstrapping-key point once
/// per batch.
pub fn mac_bcast(
    sr: &mut [f64],
    si: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    lanes: usize,
) {
    let m = br.len();
    for j in 0..m {
        let wr = br[j];
        let wi = bi[j];
        let base = j * lanes;
        for l in 0..lanes {
            let xr = ar[base + l];
            let xi = ai[base + l];
            sr[base + l] += xr * wr - xi * wi;
            si[base + l] += xr * wi + xi * wr;
        }
    }
}
