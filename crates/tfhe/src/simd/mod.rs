//! Runtime-dispatched SIMD kernels for the TFHE hot path — the
//! reproduction's analogue of the TFHE library's hand-vectorized
//! `spqlios-fma` transform backend.
//!
//! The paper's CPU numbers inherit their speed from `spqlios-fma`, the
//! AVX/FMA assembly the TFHE library swaps in for its negacyclic
//! transforms. This module plays that role for the four loops that
//! dominate gate bootstrapping:
//!
//! 1. the branch-free FFT butterfly passes shared by the forward and
//!    inverse folded transforms ([`Kernels::fft_passes`]),
//! 2. the twist/untwist + torus↔`f64` conversion loops bracketing them
//!    ([`Kernels::fwd_twist`], [`Kernels::inv_untwist_round`]),
//! 3. the external-product multiply-accumulate of the CMUX inner loop
//!    ([`Kernels::mac`]), and
//! 4. the integer loops of gadget decomposition, key-switch
//!    accumulation, and the gate linear combinations
//!    ([`Kernels::extract_digits`], [`Kernels::sub_assign`],
//!    [`Kernels::axpy`]).
//!
//! Four backends implement the same kernel set:
//!
//! * [`scalar`] — portable Rust, **bit-identical to the pre-SIMD code**
//!   (the loops were moved here verbatim). Always available; the
//!   correctness oracle for the vector paths.
//! * `avx2` — AVX2 + FMA over 4×`f64` / 8×`u32` lanes
//!   (`std::arch::x86_64`), selected when `is_x86_feature_detected!`
//!   reports both features.
//! * `avx512` — AVX-512 over 8×`f64` / 16×`u32` lanes with masked
//!   tails (`avx512f` + `avx512dq`), the widest x86 path.
//! * `neon` — NEON over 2×`f64` / 4×`u32` lanes (`std::arch::aarch64`;
//!   NEON is baseline on AArch64).
//!
//! Beyond the original per-polynomial kernels, the table carries the
//! *batched* transform kernels ([`Kernels::fft_passes_batch`],
//! [`Kernels::mac_bcast`]) that run butterfly stages and external-product
//! MACs across a point-major batch of up to [`crate::gates::FUSE_CHUNK`]
//! ciphertexts in lockstep, and the fused two-row key-switch subtraction
//! ([`Kernels::sub_assign2`]).
//!
//! # Correctness contract
//!
//! Integer kernels (`extract_digits`, `sub_assign`) are bit-identical
//! across backends. The `f64` kernels use fused multiply-add, whose
//! single-rounding products differ from scalar mul-then-add in the low
//! mantissa bits, so *intermediate spectra are not bit-comparable*. The
//! contract is **torus-domain equality**: after the inverse transform's
//! final `round_ties_even` back to `Torus32`, SIMD and scalar agree
//! bit-for-bit, because transform values sit within `~2^-20` of integers
//! (see `DESIGN.md` §10) while FMA reassociation perturbs them by at
//! most a few ulps — never enough to cross a rounding boundary. The
//! proptest suite `tests/simd_equivalence.rs` pins this for every
//! backend the host can run, across lane counts and tail lengths.
//!
//! # Dispatch
//!
//! [`kernels`] resolves the backend once per process: the `PYTFHE_SIMD`
//! environment variable (`auto` | `scalar` | `avx2` | `avx512` | `neon`)
//! is consulted first, a requested-but-unsupported backend falls back to
//! scalar, and `auto` (or an unset/unknown value) picks the best path
//! the CPU supports. [`set_active_path`] re-points the process-global
//! dispatch explicitly — used by the `repro simd` harness to measure
//! scalar and vector paths in one process; it is not meant for
//! concurrent use while other threads are mid-kernel (each kernel call
//! reads the table once, so results stay correct either way — only
//! timings would blur).

use crate::torus::Torus32;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

#[cfg(target_arch = "x86_64")]
mod avx512;

#[cfg(target_arch = "aarch64")]
mod neon;

/// Identifies one SIMD backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdPath {
    /// Portable scalar Rust, bit-identical to the pre-SIMD hot loops.
    Scalar,
    /// AVX2 + FMA (x86-64), 4×`f64` / 8×`u32` lanes.
    Avx2,
    /// AVX-512 (x86-64), 8×`f64` / 16×`u32` lanes with masked tails.
    Avx512,
    /// NEON (AArch64), 2×`f64` / 4×`u32` lanes.
    Neon,
}

impl SimdPath {
    /// Every path this build knows about (not necessarily runnable on
    /// this CPU — see [`SimdPath::is_supported`]).
    pub const ALL: [SimdPath; 4] =
        [SimdPath::Scalar, SimdPath::Avx2, SimdPath::Avx512, SimdPath::Neon];

    /// Stable lowercase name, matching the `PYTFHE_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
            SimdPath::Avx512 => "avx512",
            SimdPath::Neon => "neon",
        }
    }

    /// Whether the running CPU can execute this path.
    pub fn is_supported(self) -> bool {
        match self {
            SimdPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            // `avx512dq` covers the f64↔i64 conversions and 64-bit
            // logic ops the rounding pack uses; every AVX-512 server
            // part since Skylake-SP ships both.
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512dq")
            }
            #[cfg(not(target_arch = "x86_64"))]
            SimdPath::Avx2 | SimdPath::Avx512 => false,
            // NEON is part of the baseline AArch64 ISA.
            SimdPath::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    fn id(self) -> u8 {
        match self {
            SimdPath::Scalar => 0,
            SimdPath::Avx2 => 1,
            SimdPath::Neon => 2,
            SimdPath::Avx512 => 3,
        }
    }
}

impl fmt::Display for SimdPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `(sr, si, ar, ai, br, bi)`: pointwise `s += a * b` over split slices.
type MacFn = fn(&mut [f64], &mut [f64], &[f64], &[f64], &[f64], &[f64]);
/// `(re, im, st_re, st_im)`: butterfly passes over per-stage twiddles.
type FftPassesFn = fn(&mut [f64], &mut [f64], &[f64], &[f64]);
/// `(c, tw_re, tw_im, re, im)`: forward fold + twist.
type FwdTwistFn = fn(&[i32], &[f64], &[f64], &mut [f64], &mut [f64]);
/// `(re, im, tw_re, tw_im, out)`: inverse untwist + unfold + round.
type InvUntwistRoundFn = fn(&mut [f64], &mut [f64], &[f64], &[f64], &mut [Torus32]);
/// `(c, offset, shift, mask, half_base, out)`: one decomposition level.
type ExtractDigitsFn = fn(&[Torus32], u32, u32, u32, i32, &mut [i32]);
/// `(dst, src)`: wrapping element-wise subtraction.
type SubAssignFn = fn(&mut [Torus32], &[Torus32]);
/// `(dst, a, b)`: wrapping element-wise `dst -= a + b` (fused pair).
type SubAssign2Fn = fn(&mut [Torus32], &[Torus32], &[Torus32]);
/// `(dst, coeff, src)`: wrapping element-wise `dst += coeff * src`.
type AxpyFn = fn(&mut [Torus32], i32, &[Torus32]);
/// `(re, im, st_re, st_im, lanes)`: butterfly passes over a point-major
/// batch (`lanes` consecutive values per frequency point).
type FftPassesBatchFn = fn(&mut [f64], &mut [f64], &[f64], &[f64], usize);
/// `(sr, si, ar, ai, br, bi, lanes)`: `s += a * b` where `s`/`a` are
/// point-major batches and `b` is one spectrum broadcast across lanes.
type MacBcastFn = fn(&mut [f64], &mut [f64], &[f64], &[f64], &[f64], &[f64], usize);

/// One backend's kernel set. The fields are plain function pointers so a
/// resolved `&'static Kernels` dispatches with no per-call branching;
/// the methods wrap them with the shared shape checks.
pub struct Kernels {
    path: SimdPath,
    mac: MacFn,
    fft_passes: FftPassesFn,
    fwd_twist: FwdTwistFn,
    inv_untwist_round: InvUntwistRoundFn,
    extract_digits: ExtractDigitsFn,
    sub_assign: SubAssignFn,
    sub_assign2: SubAssign2Fn,
    axpy: AxpyFn,
    fft_passes_batch: FftPassesBatchFn,
    mac_bcast: MacBcastFn,
}

impl fmt::Debug for Kernels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernels").field("path", &self.path).finish_non_exhaustive()
    }
}

impl Kernels {
    /// Which backend these kernels belong to.
    pub fn path(&self) -> SimdPath {
        self.path
    }

    /// Pointwise complex multiply-accumulate over split re/im slices:
    /// `s += a * b` — the external-product MAC of the CMUX inner loop.
    #[inline]
    pub fn mac(
        &self,
        sr: &mut [f64],
        si: &mut [f64],
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
    ) {
        let m = sr.len();
        debug_assert!(
            si.len() == m && ar.len() == m && ai.len() == m && br.len() == m && bi.len() == m
        );
        (self.mac)(sr, si, ar, ai, br, bi)
    }

    /// All radix-2 DIT butterfly passes of one transform, over
    /// bit-reversed split re/im buffers, reading the per-stage
    /// contiguous twiddle tables (`st_re`/`st_im` hold `len(re) - 1`
    /// entries: the stage-`2` table, then stage-`4`, … — see
    /// [`crate::fft::FftPlan`]).
    #[inline]
    pub fn fft_passes(&self, re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
        let m = re.len();
        debug_assert_eq!(im.len(), m);
        debug_assert!(st_re.len() + 1 >= m && st_im.len() == st_re.len());
        (self.fft_passes)(re, im, st_re, st_im)
    }

    /// Forward fold + twist: maps `2m` signed integer coefficients to
    /// `m` complex points `(c[j] + i·c[j+m]) · twist[j]`.
    #[inline]
    pub fn fwd_twist(
        &self,
        c: &[i32],
        tw_re: &[f64],
        tw_im: &[f64],
        re: &mut [f64],
        im: &mut [f64],
    ) {
        let m = re.len();
        debug_assert!(c.len() == 2 * m && im.len() == m && tw_re.len() == m && tw_im.len() == m);
        (self.fwd_twist)(c, tw_re, tw_im, re, im)
    }

    /// Inverse unscale + untwist + unfold + round: consumes `m` complex
    /// points and writes `2m` rounded torus coefficients.
    #[inline]
    pub fn inv_untwist_round(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        tw_re: &[f64],
        tw_im: &[f64],
        out: &mut [Torus32],
    ) {
        let m = re.len();
        debug_assert!(im.len() == m && tw_re.len() == m && tw_im.len() == m && out.len() == 2 * m);
        (self.inv_untwist_round)(re, im, tw_re, tw_im, out)
    }

    /// One level of signed gadget decomposition:
    /// `out[j] = ((c[j] + offset) >> shift) & mask - half_base`.
    #[inline]
    pub fn extract_digits(
        &self,
        c: &[Torus32],
        offset: u32,
        shift: u32,
        mask: u32,
        half_base: i32,
        out: &mut [i32],
    ) {
        debug_assert_eq!(c.len(), out.len());
        (self.extract_digits)(c, offset, shift, mask, half_base, out)
    }

    /// Wrapping element-wise `dst -= src` over torus slices — the
    /// key-switch accumulation (and every LWE mask subtraction).
    #[inline]
    pub fn sub_assign(&self, dst: &mut [Torus32], src: &[Torus32]) {
        debug_assert_eq!(dst.len(), src.len());
        (self.sub_assign)(dst, src)
    }

    /// Fused wrapping `dst -= a + b` over torus slices — the paired
    /// key-switch row subtraction. One pass over `dst` replaces two,
    /// halving the store traffic of the dominant key-switch loop;
    /// bit-identical to two sequential [`Kernels::sub_assign`] calls
    /// because `Z/2^32` addition is associative.
    #[inline]
    pub fn sub_assign2(&self, dst: &mut [Torus32], a: &[Torus32], b: &[Torus32]) {
        debug_assert!(a.len() == dst.len() && b.len() == dst.len());
        (self.sub_assign2)(dst, a, b)
    }

    /// Wrapping element-wise `dst += coeff * src` over torus slices —
    /// the mask accumulation of the gate linear combinations (staging
    /// pass of the batched bootstrap kernels). Bit-identical across
    /// backends (low-32-bit products on every path).
    #[inline]
    pub fn axpy(&self, dst: &mut [Torus32], coeff: i32, src: &[Torus32]) {
        debug_assert_eq!(dst.len(), src.len());
        (self.axpy)(dst, coeff, src)
    }

    /// Butterfly passes over a *point-major batch*: `re`/`im` hold
    /// `m · lanes` values laid out as `lanes` consecutive entries per
    /// frequency point (`re[point * lanes + lane]`), already in
    /// bit-reversed point order. Each twiddle is loaded once per point
    /// and applied to every lane, so twiddle traffic is amortized
    /// `lanes`× and the vector units stay full even on the short early
    /// stages that the single-polynomial kernel has to run scalar.
    #[inline]
    pub fn fft_passes_batch(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        st_re: &[f64],
        st_im: &[f64],
        lanes: usize,
    ) {
        debug_assert!(lanes > 0 && re.len() == im.len() && re.len().is_multiple_of(lanes));
        debug_assert!(st_re.len() + 1 >= re.len() / lanes && st_im.len() == st_re.len());
        (self.fft_passes_batch)(re, im, st_re, st_im, lanes)
    }

    /// Broadcast multiply-accumulate for the batched external product:
    /// `s[point][lane] += a[point][lane] * b[point]`, with `s`/`a` in
    /// point-major batch layout and `b` a single bootstrapping-key
    /// spectrum shared by every lane. One row load serves all lanes —
    /// the main memory-traffic win of lockstep blind rotation.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn mac_bcast(
        &self,
        sr: &mut [f64],
        si: &mut [f64],
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        lanes: usize,
    ) {
        let mb = sr.len();
        debug_assert!(lanes > 0 && mb.is_multiple_of(lanes));
        debug_assert!(si.len() == mb && ar.len() == mb && ai.len() == mb);
        debug_assert!(br.len() == mb / lanes && bi.len() == mb / lanes);
        (self.mac_bcast)(sr, si, ar, ai, br, bi, lanes)
    }
}

/// The scalar kernel set (always available).
static SCALAR: Kernels = Kernels {
    path: SimdPath::Scalar,
    mac: scalar::mac,
    fft_passes: scalar::fft_passes,
    fwd_twist: scalar::fwd_twist,
    inv_untwist_round: scalar::inv_untwist_round,
    extract_digits: scalar::extract_digits,
    sub_assign: scalar::sub_assign,
    sub_assign2: scalar::sub_assign2,
    axpy: scalar::axpy,
    fft_passes_batch: scalar::fft_passes_batch,
    mac_bcast: scalar::mac_bcast,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    path: SimdPath::Avx2,
    mac: avx2::mac,
    fft_passes: avx2::fft_passes,
    fwd_twist: avx2::fwd_twist,
    inv_untwist_round: avx2::inv_untwist_round,
    extract_digits: avx2::extract_digits,
    sub_assign: avx2::sub_assign,
    sub_assign2: avx2::sub_assign2,
    axpy: avx2::axpy,
    fft_passes_batch: avx2::fft_passes_batch,
    mac_bcast: avx2::mac_bcast,
};

#[cfg(target_arch = "x86_64")]
static AVX512: Kernels = Kernels {
    path: SimdPath::Avx512,
    mac: avx512::mac,
    fft_passes: avx512::fft_passes,
    fwd_twist: avx512::fwd_twist,
    inv_untwist_round: avx512::inv_untwist_round,
    extract_digits: avx512::extract_digits,
    sub_assign: avx512::sub_assign,
    sub_assign2: avx512::sub_assign2,
    axpy: avx512::axpy,
    fft_passes_batch: avx512::fft_passes_batch,
    mac_bcast: avx512::mac_bcast,
};

#[cfg(target_arch = "aarch64")]
static NEON: Kernels = Kernels {
    path: SimdPath::Neon,
    mac: neon::mac,
    fft_passes: neon::fft_passes,
    fwd_twist: neon::fwd_twist,
    inv_untwist_round: neon::inv_untwist_round,
    extract_digits: neon::extract_digits,
    sub_assign: neon::sub_assign,
    sub_assign2: neon::sub_assign2,
    axpy: neon::axpy,
    fft_passes_batch: neon::fft_passes_batch,
    mac_bcast: neon::mac_bcast,
};

/// The kernel set for an explicit path, or `None` when the running CPU
/// cannot execute it. Equivalence tests use this to compare backends
/// directly without touching the process-global dispatch.
pub fn kernels_for(path: SimdPath) -> Option<&'static Kernels> {
    if !path.is_supported() {
        return None;
    }
    Some(match path {
        SimdPath::Scalar => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => &AVX2,
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx512 => &AVX512,
        #[cfg(target_arch = "aarch64")]
        SimdPath::Neon => &NEON,
        // `is_supported` already ruled these out on this architecture.
        #[allow(unreachable_patterns)]
        _ => unreachable!("unsupported path slipped past is_supported"),
    })
}

/// Best path the running CPU supports (widest lanes first).
pub fn best_available() -> SimdPath {
    if SimdPath::Avx512.is_supported() {
        SimdPath::Avx512
    } else if SimdPath::Avx2.is_supported() {
        SimdPath::Avx2
    } else if SimdPath::Neon.is_supported() {
        SimdPath::Neon
    } else {
        SimdPath::Scalar
    }
}

const PATH_UNRESOLVED: u8 = u8::MAX;

/// Process-global active path id, resolved lazily from `PYTFHE_SIMD`.
static ACTIVE: AtomicU8 = AtomicU8::new(PATH_UNRESOLVED);

fn path_from_env() -> SimdPath {
    let requested = match std::env::var("PYTFHE_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdPath::Scalar),
            "avx2" => Some(SimdPath::Avx2),
            "avx512" => Some(SimdPath::Avx512),
            "neon" => Some(SimdPath::Neon),
            // "auto", empty, and unknown values all mean "pick for me".
            _ => None,
        },
        Err(_) => None,
    };
    match requested {
        Some(p) if p.is_supported() => p,
        // An explicitly requested but unrunnable backend degrades to
        // scalar (never crash on someone else's machine).
        Some(_) => SimdPath::Scalar,
        None => best_available(),
    }
}

fn resolve() -> u8 {
    let id = path_from_env().id();
    // A concurrent set_active_path may have raced us; either value is a
    // valid resolved state, so last store wins harmlessly.
    ACTIVE.store(id, Ordering::Relaxed);
    id
}

fn by_id(id: u8) -> &'static Kernels {
    match id {
        #[cfg(target_arch = "x86_64")]
        1 => &AVX2,
        #[cfg(target_arch = "aarch64")]
        2 => &NEON,
        #[cfg(target_arch = "x86_64")]
        3 => &AVX512,
        _ => &SCALAR,
    }
}

/// The process-global active kernel set, resolving `PYTFHE_SIMD` on
/// first use. Every hot-loop call site goes through this (one relaxed
/// atomic load once resolved).
#[inline]
pub fn kernels() -> &'static Kernels {
    let id = ACTIVE.load(Ordering::Relaxed);
    if id == PATH_UNRESOLVED {
        return by_id(resolve());
    }
    by_id(id)
}

/// The backend the process is currently dispatching to.
pub fn active_path() -> SimdPath {
    kernels().path
}

/// Re-points the process-global dispatch at `path`. Returns `false`
/// (leaving the dispatch unchanged) when the CPU cannot run `path`.
/// Intended for benchmark harnesses that measure several backends in
/// one process; library code should rely on `PYTFHE_SIMD` instead.
pub fn set_active_path(path: SimdPath) -> bool {
    if !path.is_supported() {
        return false;
    }
    ACTIVE.store(path.id(), Ordering::Relaxed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported_and_resolvable() {
        assert!(SimdPath::Scalar.is_supported());
        assert!(kernels_for(SimdPath::Scalar).is_some());
        assert_eq!(kernels_for(SimdPath::Scalar).unwrap().path(), SimdPath::Scalar);
    }

    #[test]
    fn active_path_is_supported_and_named() {
        let p = active_path();
        assert!(p.is_supported());
        assert!(["scalar", "avx2", "avx512", "neon"].contains(&p.name()));
        assert_eq!(format!("{p}"), p.name());
    }

    #[test]
    fn best_available_matches_declared_support() {
        let best = best_available();
        assert!(best.is_supported());
        // Nothing strictly better than `best` may claim support.
        if best == SimdPath::Scalar {
            assert!(
                !SimdPath::Avx2.is_supported()
                    && !SimdPath::Avx512.is_supported()
                    && !SimdPath::Neon.is_supported()
            );
        }
        if best == SimdPath::Avx2 {
            assert!(!SimdPath::Avx512.is_supported());
        }
    }

    #[test]
    fn unsupported_paths_yield_no_kernels() {
        for p in SimdPath::ALL {
            assert_eq!(kernels_for(p).is_some(), p.is_supported(), "{p}");
        }
    }
}
