//! AVX-512 kernels: 8×`f64` / 16×`u32` lanes (`std::arch::x86_64`).
//!
//! Safety model mirrors [`super::avx2`]: every public function is a safe
//! wrapper around a `#[target_feature(enable = "avx512f", enable =
//! "avx512dq")]` implementation, and the dispatcher installs this
//! backend only after `is_x86_feature_detected!` confirmed both
//! features, so the wrappers' unsafe calls are sound when reachable.
//!
//! Tails: AVX-512's lane masks replace the scalar remainder loops —
//! a `(1 << rem) - 1` mask load/store touches exactly the in-bounds
//! elements (fault suppression is architectural), so short slices run
//! the same FMA formula as full vectors. The rounding contract is
//! unchanged: the magic-constant ties-even pack (see `ROUND_MAGIC` in
//! [`super::avx2`]) produces `(round_ties_even(x) as i64) as u32` in
//! the low dword of each lane, compacted with `vpmovqd`
//! (`_mm512_cvtepi64_epi32`), which truncates each qword to its low 32
//! bits. Integer kernels are bit-identical to scalar; `f64` kernels
//! satisfy the torus-domain equality contract of [`crate::simd`].

use crate::torus::Torus32;
use std::arch::x86_64::*;

/// Same mantissa-alignment rounding constant as the AVX2 backend
/// (`1.5 · 2^52`); see the comment there for the derivation.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

/// All-lanes-enabled 8-wide mask.
const FULL8: __mmask8 = 0xff;

#[inline]
fn tail8(rem: usize) -> __mmask8 {
    debug_assert!(rem < 8);
    (1u8 << rem).wrapping_sub(1)
}

#[inline]
fn tail16(rem: usize) -> __mmask16 {
    debug_assert!(rem < 16);
    (1u16 << rem).wrapping_sub(1)
}

pub fn mac(sr: &mut [f64], si: &mut [f64], ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    // SAFETY: only reachable through the dispatcher, which installs this
    // backend solely when avx512f + avx512dq were detected at runtime.
    unsafe { mac_impl(sr, si, ar, ai, br, bi) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn mac_impl(sr: &mut [f64], si: &mut [f64], ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    let m = sr.len();
    let mut j = 0;
    while j + 8 <= m {
        let var = _mm512_loadu_pd(ar.as_ptr().add(j));
        let vai = _mm512_loadu_pd(ai.as_ptr().add(j));
        let vbr = _mm512_loadu_pd(br.as_ptr().add(j));
        let vbi = _mm512_loadu_pd(bi.as_ptr().add(j));
        // s += (ar + i·ai)(br + i·bi):
        //   re += ar·br - ai·bi,  im += ar·bi + ai·br
        let pr = _mm512_fmsub_pd(var, vbr, _mm512_mul_pd(vai, vbi));
        let pi = _mm512_fmadd_pd(var, vbi, _mm512_mul_pd(vai, vbr));
        let vsr = _mm512_loadu_pd(sr.as_ptr().add(j));
        let vsi = _mm512_loadu_pd(si.as_ptr().add(j));
        _mm512_storeu_pd(sr.as_mut_ptr().add(j), _mm512_add_pd(vsr, pr));
        _mm512_storeu_pd(si.as_mut_ptr().add(j), _mm512_add_pd(vsi, pi));
        j += 8;
    }
    let rem = m - j;
    if rem > 0 {
        let k = tail8(rem);
        let var = _mm512_maskz_loadu_pd(k, ar.as_ptr().add(j));
        let vai = _mm512_maskz_loadu_pd(k, ai.as_ptr().add(j));
        let vbr = _mm512_maskz_loadu_pd(k, br.as_ptr().add(j));
        let vbi = _mm512_maskz_loadu_pd(k, bi.as_ptr().add(j));
        let pr = _mm512_fmsub_pd(var, vbr, _mm512_mul_pd(vai, vbi));
        let pi = _mm512_fmadd_pd(var, vbi, _mm512_mul_pd(vai, vbr));
        let vsr = _mm512_maskz_loadu_pd(k, sr.as_ptr().add(j));
        let vsi = _mm512_maskz_loadu_pd(k, si.as_ptr().add(j));
        _mm512_mask_storeu_pd(sr.as_mut_ptr().add(j), k, _mm512_add_pd(vsr, pr));
        _mm512_mask_storeu_pd(si.as_mut_ptr().add(j), k, _mm512_add_pd(vsi, pi));
    }
}

pub fn fft_passes(re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
    // SAFETY: see `mac`.
    unsafe { fft_passes_impl(re, im, st_re, st_im) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn fft_passes_impl(re: &mut [f64], im: &mut [f64], st_re: &[f64], st_im: &[f64]) {
    let m = re.len();
    let mut len = 2;
    let mut pos = 0;
    while len <= m {
        let half = len / 2;
        let w_re = &st_re[pos..pos + half];
        let w_im = &st_im[pos..pos + half];
        if half < 8 {
            // Early stages (half = 1, 2, 4): below the 8-lane width; the
            // scalar butterfly is already optimal here. (The batched
            // kernel keeps even these stages full — see
            // `fft_passes_batch`.)
            for start in (0..m).step_by(len) {
                for j in 0..half {
                    let wr = w_re[j];
                    let wi = w_im[j];
                    let ur = re[start + j];
                    let ui = im[start + j];
                    let xr = re[start + j + half];
                    let xi = im[start + j + half];
                    let vr = xr * wr - xi * wi;
                    let vi = xr * wi + xi * wr;
                    re[start + j] = ur + vr;
                    im[start + j] = ui + vi;
                    re[start + j + half] = ur - vr;
                    im[start + j + half] = ui - vi;
                }
            }
        } else {
            // half is a power of two >= 8: exact 8-lane chunks with
            // contiguous twiddle loads from the per-stage tables.
            for start in (0..m).step_by(len) {
                let mut j = 0;
                while j < half {
                    let vwr = _mm512_loadu_pd(w_re.as_ptr().add(j));
                    let vwi = _mm512_loadu_pd(w_im.as_ptr().add(j));
                    let xr = _mm512_loadu_pd(re.as_ptr().add(start + j + half));
                    let xi = _mm512_loadu_pd(im.as_ptr().add(start + j + half));
                    let vr = _mm512_fmsub_pd(xr, vwr, _mm512_mul_pd(xi, vwi));
                    let vi = _mm512_fmadd_pd(xr, vwi, _mm512_mul_pd(xi, vwr));
                    let ur = _mm512_loadu_pd(re.as_ptr().add(start + j));
                    let ui = _mm512_loadu_pd(im.as_ptr().add(start + j));
                    _mm512_storeu_pd(re.as_mut_ptr().add(start + j), _mm512_add_pd(ur, vr));
                    _mm512_storeu_pd(im.as_mut_ptr().add(start + j), _mm512_add_pd(ui, vi));
                    _mm512_storeu_pd(re.as_mut_ptr().add(start + j + half), _mm512_sub_pd(ur, vr));
                    _mm512_storeu_pd(im.as_mut_ptr().add(start + j + half), _mm512_sub_pd(ui, vi));
                    j += 8;
                }
            }
        }
        pos += half;
        len <<= 1;
    }
}

pub fn fwd_twist(c: &[i32], tw_re: &[f64], tw_im: &[f64], re: &mut [f64], im: &mut [f64]) {
    // SAFETY: see `mac`.
    unsafe { fwd_twist_impl(c, tw_re, tw_im, re, im) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn fwd_twist_impl(c: &[i32], tw_re: &[f64], tw_im: &[f64], re: &mut [f64], im: &mut [f64]) {
    let m = re.len();
    let (lo, hi) = c.split_at(m);
    let mut j = 0;
    while j + 8 <= m {
        let vlo = _mm512_cvtepi32_pd(_mm256_loadu_si256(lo.as_ptr().add(j) as *const __m256i));
        let vhi = _mm512_cvtepi32_pd(_mm256_loadu_si256(hi.as_ptr().add(j) as *const __m256i));
        let vtr = _mm512_loadu_pd(tw_re.as_ptr().add(j));
        let vti = _mm512_loadu_pd(tw_im.as_ptr().add(j));
        let vre = _mm512_fmsub_pd(vlo, vtr, _mm512_mul_pd(vhi, vti));
        let vim = _mm512_fmadd_pd(vlo, vti, _mm512_mul_pd(vhi, vtr));
        _mm512_storeu_pd(re.as_mut_ptr().add(j), vre);
        _mm512_storeu_pd(im.as_mut_ptr().add(j), vim);
        j += 8;
    }
    let rem = m - j;
    if rem > 0 {
        let k = tail8(rem);
        // Masked 16×i32 load (only the low `rem < 8` lanes enabled),
        // converting the low 256-bit half to 8×f64.
        let ilo = _mm512_maskz_loadu_epi32(k as __mmask16, lo.as_ptr().add(j));
        let ihi = _mm512_maskz_loadu_epi32(k as __mmask16, hi.as_ptr().add(j));
        let vlo = _mm512_cvtepi32_pd(_mm512_castsi512_si256(ilo));
        let vhi = _mm512_cvtepi32_pd(_mm512_castsi512_si256(ihi));
        let vtr = _mm512_maskz_loadu_pd(k, tw_re.as_ptr().add(j));
        let vti = _mm512_maskz_loadu_pd(k, tw_im.as_ptr().add(j));
        let vre = _mm512_fmsub_pd(vlo, vtr, _mm512_mul_pd(vhi, vti));
        let vim = _mm512_fmadd_pd(vlo, vti, _mm512_mul_pd(vhi, vtr));
        _mm512_mask_storeu_pd(re.as_mut_ptr().add(j), k, vre);
        _mm512_mask_storeu_pd(im.as_mut_ptr().add(j), k, vim);
    }
}

pub fn inv_untwist_round(
    re: &mut [f64],
    im: &mut [f64],
    tw_re: &[f64],
    tw_im: &[f64],
    out: &mut [Torus32],
) {
    // SAFETY: see `mac`.
    unsafe { inv_untwist_round_impl(re, im, tw_re, tw_im, out) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn inv_untwist_round_impl(
    re: &mut [f64],
    im: &mut [f64],
    tw_re: &[f64],
    tw_im: &[f64],
    out: &mut [Torus32],
) {
    let m = re.len();
    let scale = 1.0 / m as f64;
    let (out_lo, out_hi) = out.split_at_mut(m);
    let vscale = _mm512_set1_pd(scale);
    let vmagic = _mm512_set1_pd(ROUND_MAGIC);
    let mut j = 0;
    // One masked loop body serves full vectors (mask 0xff) and the tail:
    // masked loads/stores touch only enabled lanes, and
    // `_mm512_mask_cvtepi64_storeu_epi32` (vpmovqd to memory) writes the
    // low dword of each enabled qword lane — the rounded torus value.
    while j < m {
        let rem = m - j;
        let k = if rem >= 8 { FULL8 } else { tail8(rem) };
        let vcr = _mm512_mul_pd(_mm512_maskz_loadu_pd(k, re.as_ptr().add(j)), vscale);
        let vci = _mm512_mul_pd(_mm512_maskz_loadu_pd(k, im.as_ptr().add(j)), vscale);
        let vtr = _mm512_maskz_loadu_pd(k, tw_re.as_ptr().add(j));
        let vti = _mm512_maskz_loadu_pd(k, tw_im.as_ptr().add(j));
        // d = c · conj(twist):  dr = cr·twr + ci·twi,  di = ci·twr - cr·twi
        let vdr = _mm512_fmadd_pd(vcr, vtr, _mm512_mul_pd(vci, vti));
        let vdi = _mm512_fmsub_pd(vci, vtr, _mm512_mul_pd(vcr, vti));
        let rbits = _mm512_castpd_si512(_mm512_add_pd(vdr, vmagic));
        let ibits = _mm512_castpd_si512(_mm512_add_pd(vdi, vmagic));
        _mm512_mask_cvtepi64_storeu_epi32(out_lo.as_mut_ptr().add(j) as *mut i32, k, rbits);
        _mm512_mask_cvtepi64_storeu_epi32(out_hi.as_mut_ptr().add(j) as *mut i32, k, ibits);
        j += 8;
    }
}

pub fn extract_digits(
    c: &[Torus32],
    offset: u32,
    shift: u32,
    mask: u32,
    half_base: i32,
    out: &mut [i32],
) {
    // SAFETY: see `mac`.
    unsafe { extract_digits_impl(c, offset, shift, mask, half_base, out) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn extract_digits_impl(
    c: &[Torus32],
    offset: u32,
    shift: u32,
    mask: u32,
    half_base: i32,
    out: &mut [i32],
) {
    let n = c.len();
    // Torus32 is #[repr(transparent)] over u32 (see `crate::torus`).
    let cp = c.as_ptr() as *const i32;
    let voff = _mm512_set1_epi32(offset as i32);
    let vmask = _mm512_set1_epi32(mask as i32);
    let vhalf = _mm512_set1_epi32(half_base);
    let vshift = _mm_cvtsi32_si128(shift as i32);
    let mut j = 0;
    while j < n {
        let rem = n - j;
        let k = if rem >= 16 { 0xffff } else { tail16(rem) };
        let v = _mm512_maskz_loadu_epi32(k, cp.add(j));
        let t = _mm512_add_epi32(v, voff);
        let s = _mm512_srl_epi32(t, vshift);
        let d = _mm512_sub_epi32(_mm512_and_si512(s, vmask), vhalf);
        _mm512_mask_storeu_epi32(out.as_mut_ptr().add(j), k, d);
        j += 16;
    }
}

pub fn sub_assign(dst: &mut [Torus32], src: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { sub_assign_impl(dst, src) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn sub_assign_impl(dst: &mut [Torus32], src: &[Torus32]) {
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut i32;
    let sp = src.as_ptr() as *const i32;
    let mut j = 0;
    while j < n {
        let rem = n - j;
        let k = if rem >= 16 { 0xffff } else { tail16(rem) };
        let a = _mm512_maskz_loadu_epi32(k, dp.add(j));
        let b = _mm512_maskz_loadu_epi32(k, sp.add(j));
        _mm512_mask_storeu_epi32(dp.add(j), k, _mm512_sub_epi32(a, b));
        j += 16;
    }
}

pub fn sub_assign2(dst: &mut [Torus32], a: &[Torus32], b: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { sub_assign2_impl(dst, a, b) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn sub_assign2_impl(dst: &mut [Torus32], a: &[Torus32], b: &[Torus32]) {
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut i32;
    let ap = a.as_ptr() as *const i32;
    let bp = b.as_ptr() as *const i32;
    let mut j = 0;
    while j < n {
        let rem = n - j;
        let k = if rem >= 16 { 0xffff } else { tail16(rem) };
        let d = _mm512_maskz_loadu_epi32(k, dp.add(j));
        let va = _mm512_maskz_loadu_epi32(k, ap.add(j));
        let vb = _mm512_maskz_loadu_epi32(k, bp.add(j));
        let s = _mm512_add_epi32(va, vb);
        _mm512_mask_storeu_epi32(dp.add(j), k, _mm512_sub_epi32(d, s));
        j += 16;
    }
}

pub fn axpy(dst: &mut [Torus32], coeff: i32, src: &[Torus32]) {
    // SAFETY: see `mac`.
    unsafe { axpy_impl(dst, coeff, src) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn axpy_impl(dst: &mut [Torus32], coeff: i32, src: &[Torus32]) {
    let n = dst.len();
    // `_mm512_mullo_epi32` keeps the low 32 product bits — exactly the
    // scalar path's `u32::wrapping_mul`, so the kernel is bit-identical.
    let dp = dst.as_mut_ptr() as *mut i32;
    let sp = src.as_ptr() as *const i32;
    let vc = _mm512_set1_epi32(coeff);
    let mut j = 0;
    while j < n {
        let rem = n - j;
        let k = if rem >= 16 { 0xffff } else { tail16(rem) };
        let a = _mm512_maskz_loadu_epi32(k, dp.add(j));
        let b = _mm512_maskz_loadu_epi32(k, sp.add(j));
        let prod = _mm512_mullo_epi32(b, vc);
        _mm512_mask_storeu_epi32(dp.add(j), k, _mm512_add_epi32(a, prod));
        j += 16;
    }
}

pub fn fft_passes_batch(
    re: &mut [f64],
    im: &mut [f64],
    st_re: &[f64],
    st_im: &[f64],
    lanes: usize,
) {
    // SAFETY: see `mac`.
    unsafe { fft_passes_batch_impl(re, im, st_re, st_im, lanes) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn fft_passes_batch_impl(
    re: &mut [f64],
    im: &mut [f64],
    st_re: &[f64],
    st_im: &[f64],
    lanes: usize,
) {
    let m = re.len() / lanes;
    let mut len = 2;
    let mut pos = 0;
    while len <= m {
        let half = len / 2;
        let w_re = &st_re[pos..pos + half];
        let w_im = &st_im[pos..pos + half];
        for start in (0..m).step_by(len) {
            for j in 0..half {
                // Twiddle broadcast across the lane dimension: even the
                // half = 1 stage runs full-width vectors, which is the
                // point of the point-major batch layout.
                let vwr = _mm512_set1_pd(w_re[j]);
                let vwi = _mm512_set1_pd(w_im[j]);
                let u = (start + j) * lanes;
                let v = (start + j + half) * lanes;
                let mut l = 0;
                while l < lanes {
                    let rem = lanes - l;
                    let k = if rem >= 8 { FULL8 } else { tail8(rem) };
                    let xr = _mm512_maskz_loadu_pd(k, re.as_ptr().add(v + l));
                    let xi = _mm512_maskz_loadu_pd(k, im.as_ptr().add(v + l));
                    let vr = _mm512_fmsub_pd(xr, vwr, _mm512_mul_pd(xi, vwi));
                    let vi = _mm512_fmadd_pd(xr, vwi, _mm512_mul_pd(xi, vwr));
                    let ur = _mm512_maskz_loadu_pd(k, re.as_ptr().add(u + l));
                    let ui = _mm512_maskz_loadu_pd(k, im.as_ptr().add(u + l));
                    _mm512_mask_storeu_pd(re.as_mut_ptr().add(u + l), k, _mm512_add_pd(ur, vr));
                    _mm512_mask_storeu_pd(im.as_mut_ptr().add(u + l), k, _mm512_add_pd(ui, vi));
                    _mm512_mask_storeu_pd(re.as_mut_ptr().add(v + l), k, _mm512_sub_pd(ur, vr));
                    _mm512_mask_storeu_pd(im.as_mut_ptr().add(v + l), k, _mm512_sub_pd(ui, vi));
                    l += 8;
                }
            }
        }
        pos += half;
        len <<= 1;
    }
}

pub fn mac_bcast(
    sr: &mut [f64],
    si: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    lanes: usize,
) {
    // SAFETY: see `mac`.
    unsafe { mac_bcast_impl(sr, si, ar, ai, br, bi, lanes) }
}

#[target_feature(enable = "avx512f", enable = "avx512dq")]
unsafe fn mac_bcast_impl(
    sr: &mut [f64],
    si: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    lanes: usize,
) {
    let m = br.len();
    for j in 0..m {
        // One bootstrapping-key point load serves every lane.
        let vwr = _mm512_set1_pd(br[j]);
        let vwi = _mm512_set1_pd(bi[j]);
        let base = j * lanes;
        let mut l = 0;
        while l < lanes {
            let rem = lanes - l;
            let k = if rem >= 8 { FULL8 } else { tail8(rem) };
            let xr = _mm512_maskz_loadu_pd(k, ar.as_ptr().add(base + l));
            let xi = _mm512_maskz_loadu_pd(k, ai.as_ptr().add(base + l));
            let pr = _mm512_fmsub_pd(xr, vwr, _mm512_mul_pd(xi, vwi));
            let pi = _mm512_fmadd_pd(xr, vwi, _mm512_mul_pd(xi, vwr));
            let vsr = _mm512_maskz_loadu_pd(k, sr.as_ptr().add(base + l));
            let vsi = _mm512_maskz_loadu_pd(k, si.as_ptr().add(base + l));
            _mm512_mask_storeu_pd(sr.as_mut_ptr().add(base + l), k, _mm512_add_pd(vsr, pr));
            _mm512_mask_storeu_pd(si.as_mut_ptr().add(base + l), k, _mm512_add_pd(vsi, pi));
            l += 8;
        }
    }
}
