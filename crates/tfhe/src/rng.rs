use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The randomness source used for key generation and encryption.
///
/// Wraps a cryptographically strong PRNG ([`StdRng`], currently ChaCha12)
/// and adds the torus-Gaussian sampling TFHE needs. A deterministic
/// [`SecureRng::seed_from_u64`] constructor is provided for reproducible
/// tests and benchmarks; production use should prefer
/// [`SecureRng::from_entropy`].
#[derive(Debug)]
pub struct SecureRng {
    inner: StdRng,
    /// Spare Gaussian variate from the last Box–Muller draw.
    spare: Option<f64>,
}

impl SecureRng {
    /// Creates an RNG seeded from the thread-local entropy source.
    pub fn from_entropy() -> Self {
        SecureRng { inner: rand::make_rng(), spare: None }
    }

    /// Creates a deterministic RNG for tests and reproducible benchmarks.
    pub fn seed_from_u64(seed: u64) -> Self {
        SecureRng { inner: StdRng::seed_from_u64(seed), spare: None }
    }

    /// A uniformly random `u32` (i.e. a uniform torus element).
    #[inline]
    pub fn uniform_u32(&mut self) -> u32 {
        self.inner.random()
    }

    /// A uniformly random bit.
    #[inline]
    pub fn bit(&mut self) -> bool {
        self.inner.random()
    }

    /// A standard-normal variate via Box–Muller (caching the spare).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u1: f64 = self.inner.random();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2: f64 = self.inner.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// A Gaussian variate with the given standard deviation.
    #[inline]
    pub fn gaussian(&mut self, stdev: f64) -> f64 {
        self.standard_normal() * stdev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_seed() {
        let mut a = SecureRng::seed_from_u64(42);
        let mut b = SecureRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u32(), b.uniform_u32());
        }
    }

    #[test]
    fn entropy_rngs_differ() {
        let mut a = SecureRng::from_entropy();
        let mut b = SecureRng::from_entropy();
        let sa: Vec<u32> = (0..4).map(|_| a.uniform_u32()).collect();
        let sb: Vec<u32> = (0..4).map(|_| b.uniform_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SecureRng::seed_from_u64(1);
        let n = 100_000;
        let stdev = 3.0;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(stdev)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - stdev).abs() < 0.05, "stdev {}", var.sqrt());
    }

    #[test]
    fn uniform_is_spread() {
        let mut rng = SecureRng::seed_from_u64(2);
        let mut buckets = [0u32; 16];
        for _ in 0..16000 {
            buckets[(rng.uniform_u32() >> 28) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }
}
