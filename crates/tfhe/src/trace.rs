//! Hot-path allocation accounting.
//!
//! Every constructor in this crate that takes a fresh heap buffer for a
//! polynomial or ciphertext calls the crate-internal `note_buffer_alloc`
//! hook. The counter is
//! thread-local, so a test can bracket a single-threaded hot section —
//! e.g. one kernel-graph replay after warm-up — and assert the delta is
//! exactly zero without interference from other tests in the same
//! process. Reusing a buffer through the `*_into`/`*_assign` APIs does
//! not count; only constructions that allocate do.

use std::cell::Cell;

thread_local! {
    static BUFFER_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Records one fresh polynomial/ciphertext buffer allocation on this
/// thread (crate-internal; called by constructors).
#[inline]
pub(crate) fn note_buffer_alloc() {
    BUFFER_ALLOCS.with(|c| c.set(c.get() + 1));
}

/// Number of polynomial/ciphertext buffer allocations made by this crate
/// on the calling thread since it started.
///
/// Take the value before and after a hot section and subtract: a
/// difference of zero proves the section ran entirely on preallocated
/// scratch. The hot frequency-domain type `FreqPoly` implements `Clone`
/// by hand so that cloning counts like any other constructor — a stray
/// clone on a hot path shows up as a non-zero delta — while `clone_from`
/// reuses the destination's buffers and stays free.
pub fn thread_buffer_allocs() -> u64 {
    BUFFER_ALLOCS.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::TorusPoly;

    #[test]
    fn constructors_bump_the_counter() {
        let before = thread_buffer_allocs();
        let _p = TorusPoly::zero(16);
        let _q = TorusPoly::zero(16);
        assert_eq!(thread_buffer_allocs() - before, 2);
    }
}
