//! Property-based tests of the TFHE substrate: algebraic laws of the
//! torus and polynomial rings, transform equivalences, decomposition
//! bounds, and randomized encrypt/evaluate/decrypt round trips.

use proptest::prelude::*;
use pytfhe_tfhe::fft::FftPlan;
use pytfhe_tfhe::poly::{naive_negacyclic_mul, IntPoly, TorusPoly};
use pytfhe_tfhe::reference::RefFftPlan;
use pytfhe_tfhe::tgsw::Gadget;
use pytfhe_tfhe::torus::Torus32;
use pytfhe_tfhe::{ClientKey, Params, SecureRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// (T, +) is a commutative group; integer scaling distributes.
    #[test]
    fn torus_group_laws(a in any::<u32>(), b in any::<u32>(), c in any::<u32>(), k in -50i32..50) {
        let (a, b, c) = (Torus32(a), Torus32(b), Torus32(c));
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + Torus32::ZERO, a);
        prop_assert_eq!(a + (-a), Torus32::ZERO);
        prop_assert_eq!(k * (a + b), k * a + k * b);
    }

    /// The f64 round trip stays within one quantum of 2^-32.
    #[test]
    fn torus_f64_round_trip(x in -4.0f64..4.0) {
        let t = Torus32::from_f64(x);
        let frac = x - x.round(); // representative in [-0.5, 0.5]
        let err = (t.to_f64() - frac).abs();
        // Wrap-around at the half-point is fine; otherwise sub-quantum.
        prop_assert!(err < 1e-9 || (err - 1.0).abs() < 1e-9, "x={x} err={err}");
    }

    /// Gadget decomposition always reconstructs within its error bound
    /// and keeps digits in range.
    #[test]
    fn gadget_decomposition_bounds(coeffs in prop::collection::vec(any::<u32>(), 8)) {
        let g = Gadget { levels: 3, base_log: 7 };
        let p = TorusPoly::from_coeffs(coeffs.into_iter().map(Torus32).collect());
        let digits = g.decompose_poly(&p);
        let half = 1 << 6;
        for d in &digits {
            for &x in d.coeffs() {
                prop_assert!((-half..half).contains(&x));
            }
        }
        for j in 0..p.len() {
            let mut approx = Torus32::ZERO;
            for (level, d) in digits.iter().enumerate() {
                approx += d.coeffs()[j] * g.h(level);
            }
            let err = (approx - p.coeffs()[j]).to_f64().abs();
            prop_assert!(err < 1.0 / (1u64 << 21) as f64, "err {err}");
        }
    }
}

proptest! {
    // Heavier cases: fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The twisted FFT equals schoolbook negacyclic convolution.
    #[test]
    fn fft_equals_schoolbook(
        a in prop::collection::vec(-64i32..64, 64),
        b in prop::collection::vec(any::<u32>(), 64),
    ) {
        let plan = FftPlan::new(64);
        let ip = IntPoly::from_coeffs(a);
        let tp = TorusPoly::from_coeffs(b.into_iter().map(Torus32).collect());
        prop_assert_eq!(plan.negacyclic_mul(&ip, &tp), naive_negacyclic_mul(&ip, &tp));
    }

    /// Negacyclic rotation is a homomorphism: X^i * (X^j * p) = X^(i+j) * p.
    #[test]
    fn rotation_homomorphism(
        coeffs in prop::collection::vec(any::<u32>(), 32),
        i in 0usize..64,
        j in 0usize..64,
    ) {
        let p = TorusPoly::from_coeffs(coeffs.into_iter().map(Torus32).collect());
        let lhs = p.mul_by_xk(i).mul_by_xk(j);
        let rhs = p.mul_by_xk((i + j) % 64);
        prop_assert_eq!(lhs, rhs);
    }

    /// The folded half-complex FFT equals schoolbook negacyclic
    /// convolution at every supported size, including the production
    /// N=1024 ring.
    #[test]
    fn folded_fft_equals_schoolbook_all_sizes(
        seed in any::<u64>(),
        size_idx in 0usize..5,
    ) {
        let n = [2usize, 16, 128, 512, 1024][size_idx];
        let mut rng = SecureRng::seed_from_u64(seed);
        let plan = FftPlan::new(n);
        let ip = IntPoly::from_coeffs(
            (0..n).map(|_| (rng.uniform_u32() % 129) as i32 - 64).collect(),
        );
        let tp = TorusPoly::uniform(n, &mut rng);
        prop_assert_eq!(plan.negacyclic_mul(&ip, &tp), naive_negacyclic_mul(&ip, &tp));
    }

    /// The folded plan agrees with the retired full-size oracle.
    #[test]
    fn folded_fft_matches_full_size_reference(
        a in prop::collection::vec(-512i32..512, 256),
        b in prop::collection::vec(any::<u32>(), 256),
    ) {
        let plan = FftPlan::new(256);
        let oracle = RefFftPlan::new(256);
        let ip = IntPoly::from_coeffs(a);
        let tp = TorusPoly::from_coeffs(b.into_iter().map(Torus32).collect());
        prop_assert_eq!(plan.negacyclic_mul(&ip, &tp), oracle.negacyclic_mul(&ip, &tp));
    }

    /// forward_torus ∘ inverse_torus is exact: torus coefficients are
    /// ≤ 2^31 in magnitude, so the N/2-point accumulation stays far below
    /// the 2^53 mantissa limit and rounding recovers every coefficient.
    #[test]
    fn fft_forward_inverse_round_trip(
        coeffs in prop::collection::vec(any::<u32>(), 1024),
    ) {
        let plan = FftPlan::new(1024);
        let p = TorusPoly::from_coeffs(coeffs.into_iter().map(Torus32).collect());
        let f = plan.forward_torus(&p);
        prop_assert_eq!(plan.inverse_torus(&f), p);
    }

    /// Random gate chains evaluate correctly under encryption.
    #[test]
    fn random_gate_chain_is_correct(
        seed in any::<u64>(),
        ops in prop::collection::vec(0usize..4, 1..6),
        mut x in any::<bool>(),
        y in any::<bool>(),
    ) {
        let mut rng = SecureRng::seed_from_u64(seed);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let mut scratch = server.gate_scratch();
        let cy = client.encrypt_bit(y, &mut rng);
        let mut cx = client.encrypt_bit(x, &mut rng);
        for op in ops {
            (cx, x) = match op {
                0 => (server.nand_with(&cx, &cy, &mut scratch), !(x && y)),
                1 => (server.xor_with(&cx, &cy, &mut scratch), x ^ y),
                2 => (server.or_with(&cx, &cy, &mut scratch), x || y),
                _ => (server.andyn_with(&cx, &cy, &mut scratch), x && !y),
            };
            prop_assert_eq!(client.decrypt_bit(&cx), x);
        }
    }
}
