//! End-to-end validation of the production 128-bit parameter set — the
//! exact setting of the paper (Section II-D).
//!
//! These tests are slower than the rest of the suite (full-size key
//! generation plus real bootstraps) but prove that the default parameters
//! decrypt correctly through bootstrapped gate chains.

use pytfhe_tfhe::{ClientKey, Params, SecureRng};

#[test]
fn default_128_gates_are_correct() {
    let mut rng = SecureRng::seed_from_u64(2023);
    let params = Params::default_128();
    let client = ClientKey::generate(params, &mut rng);
    let server = client.server_key(&mut rng);

    let mut scratch = server.gate_scratch();
    for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
        let ca = client.encrypt_bit(a, &mut rng);
        let cb = client.encrypt_bit(b, &mut rng);
        assert_eq!(client.decrypt_bit(&server.nand_with(&ca, &cb, &mut scratch)), !(a && b));
        assert_eq!(client.decrypt_bit(&server.xor_with(&ca, &cb, &mut scratch)), a ^ b);
        assert_eq!(client.decrypt_bit(&server.and_with(&ca, &cb, &mut scratch)), a && b);
    }

    // Chain gates to confirm noise stays bounded through bootstrapping.
    let one = client.encrypt_bit(true, &mut rng);
    let mut ct = client.encrypt_bit(false, &mut rng);
    let mut value = false;
    for _ in 0..8 {
        ct = server.nand_with(&ct, &one, &mut scratch);
        value = !value;
        assert_eq!(client.decrypt_bit(&ct), value);
    }
}

#[test]
fn default_128_gate_profile_shape() {
    // Figure 7 of the paper: blind rotation dominates, key switching second.
    let mut rng = SecureRng::seed_from_u64(2024);
    let params = Params::default_128();
    let client = ClientKey::generate(params, &mut rng);
    let server = client.server_key(&mut rng);
    let a = client.encrypt_bit(true, &mut rng);
    let b = client.encrypt_bit(false, &mut rng);
    let (_, profile) = server.profile_nand(&a, &b);
    assert!(profile.blind_rotation_s > profile.key_switching_s);
    assert!(profile.key_switching_s > profile.linear_s);
}
