//! SIMD-vs-scalar equivalence suite for the dispatched kernel layer.
//!
//! Every vector backend the host CPU can run is compared against the
//! portable scalar kernels (which are the pre-SIMD hot loops, moved
//! verbatim):
//!
//! * integer kernels (`extract_digits`, `sub_assign`, `axpy`) must be
//!   **bit-identical** at every length, including tails shorter than one
//!   vector width;
//! * `f64` kernels (`fwd_twist`, `fft_passes`, `mac`,
//!   `inv_untwist_round`) use fused multiply-add on the vector paths, so
//!   their intermediate spectra legitimately differ in low mantissa
//!   bits — the contract is **torus-domain bit-equality** after the
//!   inverse transform's final rounding (DESIGN.md §10), checked here
//!   over the full forward → MAC → inverse pipeline;
//! * encrypted gate round trips must decrypt correctly under whatever
//!   path `PYTFHE_SIMD` selected (CI runs this suite once per setting).

use proptest::prelude::*;
use pytfhe_tfhe::fft::{FftPlan, FreqPoly, FreqPolyBatch};
use pytfhe_tfhe::ntt::{self, Transform};
use pytfhe_tfhe::poly::{IntPoly, TorusPoly};
use pytfhe_tfhe::simd::{self, Kernels, SimdPath};
use pytfhe_tfhe::torus::Torus32;
use pytfhe_tfhe::{ClientKey, Params, SecureRng};

/// Every backend the running CPU supports, scalar first.
fn supported_kernels() -> Vec<&'static Kernels> {
    SimdPath::ALL.iter().filter_map(|&p| simd::kernels_for(p)).collect()
}

/// Test-local rebuild of the `FftPlan` tables (same formulas), so the
/// suite can drive each backend's kernels directly without touching the
/// process-global dispatch.
struct Tables {
    m: usize,
    fwd_re: Vec<f64>,
    fwd_im: Vec<f64>,
    inv_re: Vec<f64>,
    inv_im: Vec<f64>,
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
    rev: Vec<u32>,
}

impl Tables {
    fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2);
        let m = n / 2;
        let (mut fwd_re, mut fwd_im) = (Vec::new(), Vec::new());
        let (mut inv_re, mut inv_im) = (Vec::new(), Vec::new());
        let mut len = 2;
        while len <= m {
            let step = m / len;
            for j in 0..len / 2 {
                let theta = 2.0 * std::f64::consts::PI * (j * step) as f64 / m as f64;
                fwd_re.push(theta.cos());
                fwd_im.push(theta.sin());
                inv_re.push(theta.cos());
                inv_im.push(-theta.sin());
            }
            len <<= 1;
        }
        let (mut tw_re, mut tw_im) = (Vec::new(), Vec::new());
        for j in 0..m {
            let theta = std::f64::consts::PI * j as f64 / n as f64;
            tw_re.push(theta.cos());
            tw_im.push(theta.sin());
        }
        let bits = m.trailing_zeros();
        let rev = (0..m as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        Tables { m, fwd_re, fwd_im, inv_re, inv_im, tw_re, tw_im, rev }
    }

    fn bit_reverse(&self, re: &mut [f64], im: &mut [f64]) {
        for i in 0..self.m {
            let j = self.rev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
    }

    /// Forward transform of signed coefficients through `k`'s kernels.
    fn forward(&self, k: &Kernels, c: &[i32]) -> (Vec<f64>, Vec<f64>) {
        let mut re = vec![0.0; self.m];
        let mut im = vec![0.0; self.m];
        k.fwd_twist(c, &self.tw_re, &self.tw_im, &mut re, &mut im);
        self.bit_reverse(&mut re, &mut im);
        k.fft_passes(&mut re, &mut im, &self.fwd_re, &self.fwd_im);
        (re, im)
    }

    /// Inverse transform + rounding through `k`'s kernels.
    fn inverse_round(&self, k: &Kernels, re: &mut [f64], im: &mut [f64]) -> Vec<Torus32> {
        self.bit_reverse(re, im);
        k.fft_passes(re, im, &self.inv_re, &self.inv_im);
        let mut out = vec![Torus32::ZERO; 2 * self.m];
        k.inv_untwist_round(re, im, &self.tw_re, &self.tw_im, &mut out);
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Gadget digit extraction is bit-identical across every backend, at
    /// every length (tails included) and every decomposition geometry.
    #[test]
    fn extract_digits_bit_identical(
        coeffs in prop::collection::vec(any::<u32>(), 0..67),
        base_log in 1usize..16,
        level in 0usize..4,
        offset in any::<u32>(),
    ) {
        let c: Vec<Torus32> = coeffs.into_iter().map(Torus32).collect();
        let shift = (32 - (level + 1) * base_log.min(8)) as u32;
        let mask = (1u32 << base_log) - 1;
        let half_base = 1i32 << (base_log - 1);
        let scalar = simd::kernels_for(SimdPath::Scalar).unwrap();
        let mut want = vec![0i32; c.len()];
        scalar.extract_digits(&c, offset, shift, mask, half_base, &mut want);
        for k in supported_kernels() {
            let mut got = vec![0i32; c.len()];
            k.extract_digits(&c, offset, shift, mask, half_base, &mut got);
            prop_assert_eq!(&got, &want, "path={}", k.path());
        }
    }

    /// Wrapping subtraction is bit-identical across every backend, at
    /// every length.
    #[test]
    fn sub_assign_bit_identical(
        a in prop::collection::vec(any::<u32>(), 0..67),
        seed in any::<u64>(),
    ) {
        let mut rng = SecureRng::seed_from_u64(seed);
        let src: Vec<Torus32> = (0..a.len()).map(|_| Torus32::uniform(&mut rng)).collect();
        let base: Vec<Torus32> = a.into_iter().map(Torus32).collect();
        let scalar = simd::kernels_for(SimdPath::Scalar).unwrap();
        let mut want = base.clone();
        scalar.sub_assign(&mut want, &src);
        for k in supported_kernels() {
            let mut got = base.clone();
            k.sub_assign(&mut got, &src);
            prop_assert_eq!(&got, &want, "path={}", k.path());
        }
    }

    /// Wrapping multiply-accumulate (the gate linear combination) is
    /// bit-identical across every backend, at every length and for
    /// every coefficient the gate recipes use (and beyond).
    #[test]
    fn axpy_bit_identical(
        a in prop::collection::vec(any::<u32>(), 0..67),
        coeff in any::<i32>(),
        seed in any::<u64>(),
    ) {
        let mut rng = SecureRng::seed_from_u64(seed);
        let src: Vec<Torus32> = (0..a.len()).map(|_| Torus32::uniform(&mut rng)).collect();
        let base: Vec<Torus32> = a.into_iter().map(Torus32).collect();
        let scalar = simd::kernels_for(SimdPath::Scalar).unwrap();
        let mut want = base.clone();
        scalar.axpy(&mut want, coeff, &src);
        for k in supported_kernels() {
            let mut got = base.clone();
            k.axpy(&mut got, coeff, &src);
            prop_assert_eq!(&got, &want, "path={}", k.path());
        }
    }

    /// The MAC kernel agrees with scalar to FMA-rounding precision at
    /// every length (tails included): identical on the scalar-formula
    /// tail, within a few ulps on the vector body.
    #[test]
    fn mac_matches_scalar_to_ulp(
        len in 0usize..67,
        seed in any::<u64>(),
    ) {
        let mut rng = SecureRng::seed_from_u64(seed);
        let mut f = || (0..len).map(|_| Torus32::uniform(&mut rng).to_f64()).collect::<Vec<f64>>();
        let (ar, ai, br, bi, sr0, si0) = (f(), f(), f(), f(), f(), f());
        let scalar = simd::kernels_for(SimdPath::Scalar).unwrap();
        let (mut wr, mut wi) = (sr0.clone(), si0.clone());
        scalar.mac(&mut wr, &mut wi, &ar, &ai, &br, &bi);
        for k in supported_kernels() {
            let (mut gr, mut gi) = (sr0.clone(), si0.clone());
            k.mac(&mut gr, &mut gi, &ar, &ai, &br, &bi);
            for j in 0..len {
                prop_assert!((gr[j] - wr[j]).abs() < 1e-12, "path={} re[{j}]", k.path());
                prop_assert!((gi[j] - wi[j]).abs() < 1e-12, "path={} im[{j}]", k.path());
            }
        }
    }

    /// Torus-domain contract over the full pipeline: forward transform of
    /// realistic inputs (gadget-digit × torus polynomials), pointwise
    /// MAC, inverse transform, rounding — the torus coefficients must be
    /// bit-equal on every backend for every size (every lane-count/tail
    /// combination the FFT stages produce).
    #[test]
    fn transform_pipeline_torus_bit_equal(
        log_n in 1usize..9,
        seed in any::<u64>(),
    ) {
        let n = 1 << log_n;
        let mut rng = SecureRng::seed_from_u64(seed);
        let t = Tables::new(n);
        // Gadget-digit-ranged integers and uniform torus lifts — the
        // operand distribution of a real external product.
        let a: Vec<i32> = (0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect();
        let b: Vec<i32> = (0..n).map(|_| Torus32::uniform(&mut rng).as_i32()).collect();
        let scalar = simd::kernels_for(SimdPath::Scalar).unwrap();
        let want = {
            let fa = t.forward(scalar, &a);
            let fb = t.forward(scalar, &b);
            let (mut re, mut im) = (vec![0.0; t.m], vec![0.0; t.m]);
            scalar.mac(&mut re, &mut im, &fa.0, &fa.1, &fb.0, &fb.1);
            t.inverse_round(scalar, &mut re, &mut im)
        };
        for k in supported_kernels() {
            let fa = t.forward(k, &a);
            let fb = t.forward(k, &b);
            let (mut re, mut im) = (vec![0.0; t.m], vec![0.0; t.m]);
            k.mac(&mut re, &mut im, &fa.0, &fa.1, &fb.0, &fb.1);
            let got = t.inverse_round(k, &mut re, &mut im);
            prop_assert_eq!(&got, &want, "path={} n={}", k.path(), n);
        }
    }

    /// Forward/inverse round trip is exact on every backend: transform a
    /// torus polynomial and round back, coefficients must be unchanged.
    #[test]
    fn round_trip_exact_on_every_backend(
        log_n in 1usize..9,
        seed in any::<u64>(),
    ) {
        let n = 1 << log_n;
        let mut rng = SecureRng::seed_from_u64(seed);
        let t = Tables::new(n);
        let p: Vec<Torus32> = (0..n).map(|_| Torus32::uniform(&mut rng)).collect();
        let lifts: Vec<i32> = p.iter().map(|c| c.as_i32()).collect();
        for k in supported_kernels() {
            let (mut re, mut im) = t.forward(k, &lifts);
            let got = t.inverse_round(k, &mut re, &mut im);
            prop_assert_eq!(&got, &p, "path={} n={}", k.path(), n);
        }
    }

    /// Batched struct-of-arrays transforms are bit-equal to the
    /// single-poly path on every backend: the full external-product
    /// pipeline (forward digits, broadcast-MAC against one row, inverse,
    /// round) must produce identical torus words lane by lane, at every
    /// batch width 1..=8 — including ragged widths that leave masked
    /// tails in the lane dimension.
    #[test]
    fn batched_transform_pipeline_bit_equal_with_single(
        log_n in 3usize..9,
        width in 1usize..9,
        seed in any::<u64>(),
    ) {
        let n = 1 << log_n;
        let mut rng = SecureRng::seed_from_u64(seed);
        let plan = FftPlan::new(n);
        let digits: Vec<IntPoly> = (0..width)
            .map(|_| IntPoly::from_coeffs(
                (0..n).map(|_| (rng.uniform_u32() % 128) as i32 - 64).collect(),
            ))
            .collect();
        let row = plan.forward_torus(&TorusPoly::uniform(n, &mut rng));
        let restore = simd::active_path();
        for &path in SimdPath::ALL.iter() {
            if !path.is_supported() {
                continue;
            }
            prop_assert!(simd::set_active_path(path));
            // Single-poly pipeline, one lane at a time.
            let want: Vec<TorusPoly> = digits
                .iter()
                .map(|d| {
                    let mut acc = FreqPoly::zero(n);
                    acc.add_mul_assign(&plan.forward_int(d), &row);
                    plan.inverse_torus(&acc)
                })
                .collect();
            // Batched pipeline: all lanes in lockstep.
            let mut batch = FreqPolyBatch::new(n, width);
            let mut acc = FreqPolyBatch::new(n, width);
            let mut tmp = FreqPoly::zero(n);
            let refs: Vec<&IntPoly> = digits.iter().collect();
            plan.forward_int_batch(&refs, &mut batch, &mut tmp);
            acc.reset(width);
            acc.add_mul_bcast(&batch, &row);
            let mut got = vec![TorusPoly::zero(n); width];
            plan.inverse_torus_batch(&mut acc, &mut tmp, &mut got);
            prop_assert_eq!(&got, &want, "path={} n={} width={}", path, n, width);
        }
        simd::set_active_path(restore);
    }
}

proptest! {
    // Encrypted round trips bootstrap thousands of gates; keep the case
    // count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Encrypted gate-level round trip under the dispatch the process
    /// actually selected (`PYTFHE_SIMD` / auto): every binary gate's
    /// truth table must survive encrypt → bootstrap → decrypt.
    #[test]
    fn encrypted_gates_round_trip_on_active_path(seed in any::<u64>()) {
        let mut rng = SecureRng::seed_from_u64(seed);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let mut scratch = server.gate_scratch();
        for a in [false, true] {
            for b in [false, true] {
                let ca = client.encrypt_bit(a, &mut rng);
                let cb = client.encrypt_bit(b, &mut rng);
                let path = simd::active_path();
                prop_assert_eq!(
                    client.decrypt_bit(&server.nand_with(&ca, &cb, &mut scratch)),
                    !(a && b), "nand({a},{b}) on {}", path
                );
                prop_assert_eq!(
                    client.decrypt_bit(&server.xor_with(&ca, &cb, &mut scratch)),
                    a ^ b, "xor({a},{b}) on {}", path
                );
                prop_assert_eq!(
                    client.decrypt_bit(&server.mux_with(&ca, &ca, &cb, &mut scratch)),
                    if a { a } else { b }, "mux({a},{a},{b}) on {}", path
                );
            }
        }
    }

    /// NTT-vs-FFT transform agreement, exercised under every SIMD path
    /// the host supports: an encrypted NAND round trip must decrypt to
    /// the same (correct) bit whichever transform computed the blind
    /// rotation. The NTT is exact integer arithmetic and the FFT rounds,
    /// so the comparison is at the decrypted-bit level (the torus words
    /// differ within the crypto noise budget).
    #[test]
    fn ntt_and_fft_nand_round_trips_agree_on_every_path(seed in any::<u64>()) {
        let mut rng = SecureRng::seed_from_u64(seed);
        let client = ClientKey::generate(Params::testing(), &mut rng);
        let server = client.server_key(&mut rng);
        let mut scratch = server.gate_scratch();
        let restore_path = simd::active_path();
        let restore_transform = ntt::active_transform();
        for &path in SimdPath::ALL.iter() {
            if !path.is_supported() {
                continue;
            }
            prop_assert!(simd::set_active_path(path));
            for a in [false, true] {
                for b in [false, true] {
                    let ca = client.encrypt_bit(a, &mut rng);
                    let cb = client.encrypt_bit(b, &mut rng);
                    ntt::set_active_transform(Transform::Fft);
                    let fft_bit = client.decrypt_bit(&server.nand_with(&ca, &cb, &mut scratch));
                    ntt::set_active_transform(Transform::Ntt);
                    let ntt_bit = client.decrypt_bit(&server.nand_with(&ca, &cb, &mut scratch));
                    ntt::set_active_transform(restore_transform);
                    prop_assert_eq!(fft_bit, !(a && b), "fft nand({a},{b}) on {}", path);
                    prop_assert_eq!(ntt_bit, fft_bit, "ntt vs fft nand({a},{b}) on {}", path);
                }
            }
        }
        simd::set_active_path(restore_path);
    }
}
