//! Property tests of the RLE-over-zero-runs transfer compression: every
//! byte string round-trips exactly, packed sections are transparent to
//! readers, and corrupt compressed streams surface typed errors.

use proptest::prelude::*;
use pytfhe_wire::{
    find_section_packed, put_section_packed, rle_compress, rle_decompress, sections,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes survive a compress/decompress round trip.
    #[test]
    fn rle_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let packed = rle_compress(&data);
        prop_assert_eq!(rle_decompress(&packed).unwrap(), data);
    }

    /// Zero-heavy payloads (the program-binary shape RLE exists for)
    /// round-trip and never expand by more than the varint framing.
    #[test]
    fn rle_round_trips_sparse_bytes(
        runs in prop::collection::vec((0u8..4, 0usize..64), 0..64),
    ) {
        let mut data = Vec::new();
        for (byte, len) in runs {
            data.resize(data.len() + len, byte);
        }
        let packed = rle_compress(&data);
        prop_assert_eq!(rle_decompress(&packed).unwrap(), data);
    }

    /// A packed section round-trips through section framing regardless of
    /// whether compression engaged, and the chosen tag stays recoverable.
    #[test]
    fn packed_sections_round_trip(
        tag in 1u16..0x8000,
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut payload = Vec::new();
        put_section_packed(&mut payload, tag, &data);
        prop_assert_eq!(find_section_packed(&payload, tag).unwrap(), data);
        // The frame stays a well-formed section list.
        for s in sections(&payload) {
            prop_assert!(s.is_ok());
        }
    }

    /// Truncating a compressed stream anywhere yields an error, never a
    /// panic and never silently-wrong bytes.
    #[test]
    fn truncated_rle_streams_error(
        data in prop::collection::vec(any::<u8>(), 1..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let packed = rle_compress(&data);
        let keep = ((packed.len() as f64) * cut_frac) as usize;
        if keep < packed.len() {
            prop_assert!(rle_decompress(&packed[..keep]).is_err());
        }
    }
}
