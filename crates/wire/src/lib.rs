//! **pytfhe-wire** — the one versioned, checksummed envelope wrapped
//! around every artifact PyTFHE persists.
//!
//! The pipeline's end-to-end story (capture a plan, install a key,
//! checkpoint a run, restart, replay) only holds if the bytes written
//! yesterday still decode today — through process crashes mid-write,
//! bit rot on disk, and format evolution across releases. Historically
//! the repo grew three independent on-disk layouts (`TFS\x02` server
//! keys, `PTKG` kernel plans, `PTCK` checkpoints), each with its own
//! ad-hoc magic and version handling and — for keys and plans — no
//! integrity check at all. This crate unifies them behind one
//! self-describing envelope:
//!
//! ```text
//! offset 0   "PTW1"            envelope magic (4 bytes)
//! offset 4   format id         u16 LE — which artifact family
//! offset 6   format version    u16 LE — layout revision of the payload
//! offset 8   payload length    u64 LE
//! offset 16  CRC32C            u32 LE over header (crc field zeroed)
//!                              and payload
//! offset 20  payload           `payload length` bytes
//! ```
//!
//! * **One decode discipline.** [`decode`] verifies magic, length, and
//!   checksum before any payload byte is interpreted, so every format's
//!   parser starts from a buffer already known to be exactly what was
//!   written. Corruption surfaces as a typed [`WireError`], never a
//!   panic and never a silently-wrong artifact.
//! * **Versioning.** The `(format, version)` pair travels with the
//!   bytes; readers reject unknown formats and versions precisely
//!   instead of misparsing.
//! * **Section framing** ([`put_section`] / [`sections`]) for large
//!   artifacts: a payload can be built from tagged, length-prefixed
//!   sections so readers skip unknown tags (forward compatibility) and
//!   multi-part artifacts (a 100 MB server key: bootstrapping key +
//!   key-switching key) frame their parts independently.
//!
//! The checksum is CRC32C (Castagnoli, the iSCSI/ext4 polynomial) —
//! strong enough to catch every torn write, truncation, and single-bit
//! flip the storage fault injector throws at it, cheap enough to verify
//! on every load of a 100 MB key.

use std::fmt;

/// The envelope magic: `PTW1`.
pub const MAGIC: [u8; 4] = *b"PTW1";

/// Envelope header length in bytes (magic + format + version + payload
/// length + CRC32C).
pub const HEADER_LEN: usize = 20;

/// Artifact families carried by the envelope. The discriminants are the
/// on-wire format ids and must never be reused or renumbered.
///
/// Ids 4–8 are the streaming request/response frames of the
/// `pytfhe-serve` multi-tenant serving protocol; they ride the same
/// envelope (and hence the same checksum discipline) as the persisted
/// artifacts, prefixed on the stream by a `u32` frame length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Format {
    /// A serialized `ServerKey` (bootstrapping + key-switching key).
    ServerKey = 1,
    /// A captured `KernelPlan` (batched kernel-graph execution plan).
    KernelPlan = 2,
    /// A wave-barrier `Checkpoint` snapshot.
    Checkpoint = 3,
    /// Serving request: install a tenant's evaluation key.
    ServeInstallKey = 4,
    /// Serving request: submit a program with its input ciphertexts.
    ServeSubmit = 5,
    /// Serving request: fetch the result ciphertexts of a submitted job.
    ServeFetch = 6,
    /// Serving request: close the session.
    ServeClose = 7,
    /// Serving response frame (status + per-request payload).
    ServeReply = 8,
}

impl Format {
    /// The on-wire id.
    pub fn id(self) -> u16 {
        self as u16
    }

    /// Resolves an on-wire id.
    pub fn from_id(id: u16) -> Option<Self> {
        match id {
            1 => Some(Format::ServerKey),
            2 => Some(Format::KernelPlan),
            3 => Some(Format::Checkpoint),
            4 => Some(Format::ServeInstallKey),
            5 => Some(Format::ServeSubmit),
            6 => Some(Format::ServeFetch),
            7 => Some(Format::ServeClose),
            8 => Some(Format::ServeReply),
            _ => None,
        }
    }

    /// Human-readable artifact name (error messages, telemetry labels).
    pub fn name(self) -> &'static str {
        match self {
            Format::ServerKey => "server key",
            Format::KernelPlan => "kernel plan",
            Format::Checkpoint => "checkpoint",
            Format::ServeInstallKey => "serve install-key request",
            Format::ServeSubmit => "serve submit-program request",
            Format::ServeFetch => "serve fetch-result request",
            Format::ServeClose => "serve close request",
            Format::ServeReply => "serve response",
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a decoded artifact came through the current envelope or a
/// legacy compat shim (pre-envelope `TFS\x02`/`PTKG`/`PTCK` layouts).
/// Stores use this to count and transparently re-persist migrated
/// artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vintage {
    /// Decoded from a current `PTW1` envelope.
    Current,
    /// Decoded through a legacy-format compat shim.
    Legacy,
}

/// Typed decode failures. Every corrupt, truncated, torn, or
/// version-skewed artifact must surface as one of these — decode paths
/// never panic and never accept garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the claimed structure requires.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// The envelope magic is absent or wrong.
    BadMagic,
    /// The envelope carries a format id this build does not know.
    UnknownFormat(u16),
    /// The envelope carries a format this reader did not expect (e.g. a
    /// checkpoint handed to the plan loader).
    FormatMismatch {
        /// The format the reader wanted.
        expected: Format,
        /// The format id actually found.
        got: u16,
    },
    /// The payload layout revision is newer (or older) than this reader
    /// supports.
    UnsupportedVersion {
        /// The artifact family.
        format: Format,
        /// The version found on the wire.
        version: u16,
    },
    /// The CRC32C over header+payload does not match: torn write, bit
    /// rot, or tampering.
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        stored: u32,
        /// Checksum computed over the bytes actually present.
        computed: u32,
    },
    /// The declared payload length disagrees with the bytes present.
    LengthMismatch {
        /// Length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// A declared count or length would overflow or exceed sanity
    /// limits (adversarial input defense).
    Oversized {
        /// What was oversized.
        what: &'static str,
    },
    /// Section framing inside the payload is inconsistent.
    BadSection {
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated while reading {what}"),
            WireError::BadMagic => write!(f, "missing or wrong envelope magic"),
            WireError::UnknownFormat(id) => write!(f, "unknown wire format id {id}"),
            WireError::FormatMismatch { expected, got } => {
                write!(f, "expected a {expected} envelope, found format id {got}")
            }
            WireError::UnsupportedVersion { format, version } => {
                write!(f, "unsupported {format} format version {version}")
            }
            WireError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            WireError::LengthMismatch { declared, actual } => {
                write!(f, "payload length mismatch: declared {declared}, present {actual}")
            }
            WireError::Oversized { what } => write!(f, "implausibly large {what}"),
            WireError::BadSection { reason } => write!(f, "bad section framing: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// CRC32C (Castagnoli), software slice-by-one with a const-built table.
// ---------------------------------------------------------------------

/// Reflected Castagnoli polynomial.
const CRC32C_POLY: u32 = 0x82F6_3B78;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ CRC32C_POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// Slice-by-8 companion tables: `CRC_TABLES[k][b]` is the CRC
/// contribution of byte `b` positioned `k` bytes before the end of an
/// 8-byte block, letting [`crc32c_update`] fold 8 input bytes per step
/// instead of one. Multi-megabyte server keys cross the envelope layer
/// on every install and warm start, so the bytewise loop was a
/// measurable share of those paths.
const fn build_crc_tables() -> [[u32; 256]; 8] {
    let base = build_crc_table();
    let mut tables = [[0u32; 256]; 8];
    tables[0] = base;
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ base[(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

/// CRC32C (Castagnoli) of `bytes`, matching the iSCSI/RFC 3720
/// specification (and hence hardware `crc32` instructions, should a
/// SIMD backend ever take this over).
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feed chunks through an accumulator initialized to
/// `0xFFFF_FFFF` and finish by XORing with `0xFFFF_FFFF`.
///
/// Internally slice-by-8: each step XORs the running state into the
/// first 4 of 8 input bytes and folds all 8 through per-position
/// tables, with a bytewise loop only for the unaligned tail.
pub fn crc32c_update(mut state: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let [l0, l1, l2, l3] = lo.to_le_bytes();
        state = CRC_TABLES[7][l0 as usize]
            ^ CRC_TABLES[6][l1 as usize]
            ^ CRC_TABLES[5][l2 as usize]
            ^ CRC_TABLES[4][l3 as usize]
            ^ CRC_TABLES[3][chunk[4] as usize]
            ^ CRC_TABLES[2][chunk[5] as usize]
            ^ CRC_TABLES[1][chunk[6] as usize]
            ^ CRC_TABLES[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ CRC_TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

// ---------------------------------------------------------------------
// Envelope encode/decode.
// ---------------------------------------------------------------------

/// A decoded envelope borrowing the verified payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope<'a> {
    /// The artifact family.
    pub format: Format,
    /// Payload layout revision.
    pub version: u16,
    /// The checksum-verified payload bytes.
    pub payload: &'a [u8],
}

/// Whether `bytes` begin with the envelope magic — the dispatch test
/// compat shims use to route legacy layouts to their old parsers.
pub fn is_enveloped(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

/// Wraps `payload` in a checksummed envelope.
pub fn encode(format: Format, version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&format.id().to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(payload);
    let crc = crc32c(&out);
    out[16..20].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Verifies and opens an envelope: magic, declared length, and CRC32C
/// are all checked before the payload is exposed.
///
/// # Errors
///
/// Returns the precise [`WireError`] for each failure mode; see the
/// enum's variants.
pub fn decode(bytes: &[u8]) -> Result<Envelope<'_>, WireError> {
    if bytes.len() < HEADER_LEN {
        if !is_enveloped(bytes) {
            return Err(WireError::BadMagic);
        }
        return Err(WireError::Truncated { what: "envelope header" });
    }
    if bytes[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let format_id = u16::from_le_bytes([bytes[4], bytes[5]]);
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let stored = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let actual = (bytes.len() - HEADER_LEN) as u64;
    if declared != actual {
        return Err(WireError::LengthMismatch { declared, actual });
    }
    // CRC over the header with a zeroed crc field, then the payload.
    let mut state = crc32c_update(0xFFFF_FFFF, &bytes[..16]);
    state = crc32c_update(state, &[0u8; 4]);
    state = crc32c_update(state, &bytes[HEADER_LEN..]);
    let computed = state ^ 0xFFFF_FFFF;
    if computed != stored {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    let format = Format::from_id(format_id).ok_or(WireError::UnknownFormat(format_id))?;
    Ok(Envelope { format, version, payload: &bytes[HEADER_LEN..] })
}

/// [`decode`] plus format and version admission: the envelope must
/// carry `format` at a version in `supported`.
///
/// # Errors
///
/// [`WireError::FormatMismatch`] / [`WireError::UnsupportedVersion`] on
/// top of the plain [`decode`] failures.
pub fn decode_expecting<'a>(
    bytes: &'a [u8],
    format: Format,
    supported: std::ops::RangeInclusive<u16>,
) -> Result<Envelope<'a>, WireError> {
    let env = decode(bytes)?;
    if env.format != format {
        return Err(WireError::FormatMismatch { expected: format, got: env.format.id() });
    }
    if !supported.contains(&env.version) {
        return Err(WireError::UnsupportedVersion { format, version: env.version });
    }
    Ok(env)
}

// ---------------------------------------------------------------------
// Section framing.
// ---------------------------------------------------------------------

/// Appends a tagged section (`tag` u16, length u64, body) to a payload
/// under construction. Readers iterate with [`sections`] and may skip
/// tags they do not know, which is how payloads grow fields without a
/// version bump.
pub fn put_section(out: &mut Vec<u8>, tag: u16, body: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
}

/// Iterates the `(tag, body)` sections of a payload built with
/// [`put_section`].
pub fn sections(payload: &[u8]) -> SectionIter<'_> {
    SectionIter { rest: payload }
}

/// Iterator over payload sections; yields `Err` once (then `None`) if
/// the framing is inconsistent.
#[derive(Debug, Clone)]
pub struct SectionIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for SectionIter<'a> {
    type Item = Result<(u16, &'a [u8]), WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        if self.rest.len() < 10 {
            self.rest = &[];
            return Some(Err(WireError::BadSection { reason: "truncated section header" }));
        }
        let tag = u16::from_le_bytes([self.rest[0], self.rest[1]]);
        let len = u64::from_le_bytes(self.rest[2..10].try_into().expect("8 bytes"));
        let Ok(len) = usize::try_from(len) else {
            self.rest = &[];
            return Some(Err(WireError::BadSection { reason: "section length overflow" }));
        };
        let body_and_rest = &self.rest[10..];
        if body_and_rest.len() < len {
            self.rest = &[];
            return Some(Err(WireError::BadSection { reason: "section body truncated" }));
        }
        let (body, rest) = body_and_rest.split_at(len);
        self.rest = rest;
        Some(Ok((tag, body)))
    }
}

/// Finds the body of the (first) section with `tag`, validating the
/// whole frame along the way.
///
/// # Errors
///
/// [`WireError::BadSection`] if the framing is inconsistent or the tag
/// is absent.
pub fn find_section(payload: &[u8], tag: u16) -> Result<&[u8], WireError> {
    for s in sections(payload) {
        let (t, body) = s?;
        if t == tag {
            return Ok(body);
        }
    }
    Err(WireError::BadSection { reason: "required section missing" })
}

// ---------------------------------------------------------------------
// RLE-over-zero-runs transfer compression.
// ---------------------------------------------------------------------

/// Tag bit marking a section body as RLE-compressed ([`put_section_packed`]).
///
/// The flag lives in the tag word itself, so a reader that predates the
/// compression scheme sees an unknown tag and *skips the section* — the
/// standard skippable-section forward-compatibility rule — instead of
/// misreading compressed bytes as a plain body. Plain tags must
/// therefore stay below `0x8000`.
pub const SECTION_COMPRESSED_FLAG: u16 = 0x8000;

/// Hard ceiling on a declared decompressed length (adversarial-input
/// defense): serve frames and persisted artifacts never approach this.
const MAX_RLE_DECOMPRESSED: u64 = 1 << 32;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &mut &[u8]) -> Result<u64, WireError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let Some((&byte, rest)) = data.split_first() else {
            return Err(WireError::Truncated { what: "RLE varint" });
        };
        *data = rest;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::BadSection { reason: "RLE varint overflow" })
}

/// Compresses `bytes` with run-length encoding over zero runs: a
/// varint-framed alternation of literal blocks and zero-run lengths.
///
/// FHE transfer payloads split into two populations: ciphertext masks
/// and key spectra are high-entropy (incompressible — RLE leaves them
/// essentially untouched), while program binaries (128-bit instruction
/// words carrying 62-bit indices of mostly-small values) and framing
/// metadata are dominated by zero bytes and shrink severalfold. RLE over
/// zero runs captures exactly that second population at streaming speed
/// with no dependency and no entropy-coder state.
///
/// Layout: `[raw_len varint]` then repeated
/// `[literal_len varint][literal bytes][zero_run varint]` until
/// `raw_len` bytes are accounted for (a trailing zero-run of 0 is
/// omitted).
pub fn rle_compress(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() / 2 + 16);
    put_varint(&mut out, bytes.len() as u64);
    let mut i = 0;
    while i < bytes.len() {
        // A literal run extends until a zero run of ≥2 bytes starts —
        // breaking literals for a lone zero costs more than it saves.
        let lit_start = i;
        while i < bytes.len() {
            if bytes[i] == 0 && (i + 1 < bytes.len() && bytes[i + 1] == 0 || i + 1 == bytes.len()) {
                break;
            }
            i += 1;
        }
        put_varint(&mut out, (i - lit_start) as u64);
        out.extend_from_slice(&bytes[lit_start..i]);
        if i == bytes.len() {
            break;
        }
        let zero_start = i;
        while i < bytes.len() && bytes[i] == 0 {
            i += 1;
        }
        put_varint(&mut out, (i - zero_start) as u64);
    }
    out
}

/// Inverse of [`rle_compress`].
///
/// # Errors
///
/// Returns [`WireError::Truncated`] / [`WireError::BadSection`] when the
/// token stream is torn, over-long, or disagrees with its declared
/// decompressed length — corrupt input never panics and never
/// over-allocates past the declared (sanity-capped) length.
pub fn rle_decompress(mut data: &[u8]) -> Result<Vec<u8>, WireError> {
    let raw_len = get_varint(&mut data)?;
    if raw_len > MAX_RLE_DECOMPRESSED {
        return Err(WireError::Oversized { what: "RLE decompressed length" });
    }
    // The compressed stream spends at least one byte per 127 decompressed
    // zero bytes; cap the preallocation by what the stream could prove.
    let mut out = Vec::with_capacity((raw_len as usize).min(data.len().saturating_mul(128) + 16));
    while (out.len() as u64) < raw_len {
        let lit = get_varint(&mut data)?;
        if lit > raw_len - out.len() as u64 {
            return Err(WireError::BadSection { reason: "RLE literal overruns declared length" });
        }
        let lit = lit as usize;
        if data.len() < lit {
            return Err(WireError::Truncated { what: "RLE literal block" });
        }
        out.extend_from_slice(&data[..lit]);
        data = &data[lit..];
        if (out.len() as u64) == raw_len {
            break;
        }
        let zeros = get_varint(&mut data)?;
        if zeros > raw_len - out.len() as u64 {
            return Err(WireError::BadSection { reason: "RLE zero run overruns declared length" });
        }
        out.resize(out.len() + zeros as usize, 0);
    }
    if !data.is_empty() {
        return Err(WireError::BadSection { reason: "RLE trailing bytes" });
    }
    Ok(out)
}

/// [`put_section`] with transparent RLE compression: the body is
/// compressed when that actually shrinks it (the section is then tagged
/// `tag | SECTION_COMPRESSED_FLAG`) and stored plain otherwise, so
/// incompressible ciphertext payloads never pay an expansion penalty.
///
/// # Panics
///
/// Panics if `tag` already carries the flag bit.
pub fn put_section_packed(out: &mut Vec<u8>, tag: u16, body: &[u8]) {
    assert!(tag & SECTION_COMPRESSED_FLAG == 0, "plain section tags must stay below 0x8000");
    // Zero-run RLE can only win on zero-dense bodies. For large bodies
    // (multi-megabyte key spectra are the common case), sample the zero
    // density of a prefix before paying a full compression pass that is
    // all but guaranteed to be discarded; zero-dominated program
    // binaries sail past this gate.
    const SAMPLE: usize = 64 * 1024;
    if body.len() > SAMPLE {
        let zeros = body[..SAMPLE].iter().filter(|&&b| b == 0).count();
        if zeros < SAMPLE / 8 {
            put_section(out, tag, body);
            return;
        }
    }
    let packed = rle_compress(body);
    if packed.len() < body.len() {
        put_section(out, tag | SECTION_COMPRESSED_FLAG, &packed);
    } else {
        put_section(out, tag, body);
    }
}

/// Finds section `tag`, accepting both the plain and the compressed
/// encoding (decompressing the latter).
///
/// # Errors
///
/// [`WireError::BadSection`] if the tag is absent or the framing or RLE
/// stream is inconsistent.
pub fn find_section_packed(payload: &[u8], tag: u16) -> Result<Vec<u8>, WireError> {
    for s in sections(payload) {
        let (t, body) = s?;
        if t == tag {
            return Ok(body.to_vec());
        }
        if t == tag | SECTION_COMPRESSED_FLAG {
            return rle_decompress(body);
        }
    }
    Err(WireError::BadSection { reason: "required section missing" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_reference_vectors() {
        // RFC 3720 / Intel reference vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn crc32c_streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut state = 0xFFFF_FFFFu32;
        for chunk in data.chunks(7) {
            state = crc32c_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32c(&data));
    }

    #[test]
    fn envelope_round_trip() {
        let payload = b"the artifact body";
        let bytes = encode(Format::KernelPlan, 3, payload);
        let env = decode(&bytes).unwrap();
        assert_eq!(env.format, Format::KernelPlan);
        assert_eq!(env.version, 3);
        assert_eq!(env.payload, payload);
        let env = decode_expecting(&bytes, Format::KernelPlan, 2..=4).unwrap();
        assert_eq!(env.payload, payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode(Format::Checkpoint, 1, &[]);
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(decode(&bytes).unwrap().payload, b"");
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let bytes = encode(Format::ServerKey, 2, b"some payload bytes here");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(decode(&bad).is_err(), "flip of byte {byte} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn every_truncation_is_caught() {
        let bytes = encode(Format::ServerKey, 1, b"0123456789abcdef");
        for keep in 0..bytes.len() {
            assert!(decode(&bytes[..keep]).is_err(), "truncation to {keep} bytes accepted");
        }
    }

    #[test]
    fn trailing_garbage_is_caught() {
        let mut bytes = encode(Format::Checkpoint, 1, b"xyz");
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(WireError::LengthMismatch { .. })));
    }

    #[test]
    fn format_and_version_admission() {
        let bytes = encode(Format::Checkpoint, 9, b"p");
        assert_eq!(
            decode_expecting(&bytes, Format::KernelPlan, 1..=9).unwrap_err(),
            WireError::FormatMismatch { expected: Format::KernelPlan, got: 3 }
        );
        assert_eq!(
            decode_expecting(&bytes, Format::Checkpoint, 1..=8).unwrap_err(),
            WireError::UnsupportedVersion { format: Format::Checkpoint, version: 9 }
        );
    }

    #[test]
    fn unknown_format_id_is_rejected_after_checksum() {
        // Build an envelope with a format id from the future; recompute
        // the crc so only the id is "wrong".
        let mut bytes = encode(Format::ServerKey, 1, b"p");
        bytes[4] = 0x7F;
        bytes[16..20].copy_from_slice(&[0; 4]);
        let mut state = crc32c_update(0xFFFF_FFFF, &bytes[..16]);
        state = crc32c_update(state, &[0u8; 4]);
        state = crc32c_update(state, &bytes[HEADER_LEN..]);
        bytes[16..20].copy_from_slice(&(state ^ 0xFFFF_FFFF).to_le_bytes());
        assert_eq!(decode(&bytes).unwrap_err(), WireError::UnknownFormat(0x7F));
    }

    #[test]
    fn legacy_bytes_are_not_enveloped() {
        assert!(!is_enveloped(b"TFS\x02rest"));
        assert!(!is_enveloped(b"PTKG\x01"));
        assert!(!is_enveloped(b""));
        assert!(is_enveloped(&encode(Format::ServerKey, 1, b"")));
    }

    #[test]
    fn sections_round_trip_and_skip_unknown_tags() {
        let mut payload = Vec::new();
        put_section(&mut payload, 1, b"first");
        put_section(&mut payload, 99, b"from the future");
        put_section(&mut payload, 2, b"second");
        let got: Vec<_> = sections(&payload).collect::<Result<_, _>>().unwrap();
        assert_eq!(
            got,
            vec![
                (1, b"first".as_ref()),
                (99, b"from the future".as_ref()),
                (2, b"second".as_ref())
            ]
        );
        assert_eq!(find_section(&payload, 2).unwrap(), b"second");
        assert!(find_section(&payload, 3).is_err());
    }

    #[test]
    fn serve_frame_formats_round_trip_their_ids() {
        for format in [
            Format::ServeInstallKey,
            Format::ServeSubmit,
            Format::ServeFetch,
            Format::ServeClose,
            Format::ServeReply,
        ] {
            assert_eq!(Format::from_id(format.id()), Some(format));
            let bytes = encode(format, 1, b"frame");
            assert_eq!(decode(&bytes).unwrap().format, format);
        }
        assert_eq!(Format::from_id(9), None);
    }

    #[test]
    fn rle_round_trips_representative_payloads() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![0; 1000],
            vec![7; 300],
            b"interleaved\x00\x00\x00\x00zero\x00runs\x00\x00and literals".to_vec(),
            (0..=255u8).collect(),
            // The shape of an asm program binary: small LE values in wide
            // words, i.e. mostly zero bytes.
            (0..200u64).flat_map(|v| (v % 37).to_le_bytes()).collect(),
        ];
        for case in &cases {
            let packed = rle_compress(case);
            assert_eq!(&rle_decompress(&packed).unwrap(), case);
        }
        // The sparse word case must actually shrink.
        let sparse: Vec<u8> = (0..200u64).flat_map(|v| (v % 37).to_le_bytes()).collect();
        assert!(rle_compress(&sparse).len() * 2 < sparse.len());
    }

    #[test]
    fn rle_rejects_corrupt_streams() {
        let packed = rle_compress(b"hello\x00\x00\x00world");
        // Every truncation errors, never panics.
        for keep in 0..packed.len() {
            assert!(rle_decompress(&packed[..keep]).is_err(), "truncation to {keep}");
        }
        // Trailing garbage is rejected.
        let mut long = packed.clone();
        long.push(1);
        assert!(rle_decompress(&long).is_err());
        // A declared length beyond the sanity cap is rejected up front.
        let mut huge = Vec::new();
        super::put_varint(&mut huge, u64::MAX);
        assert_eq!(
            rle_decompress(&huge).unwrap_err(),
            WireError::Oversized { what: "RLE decompressed length" }
        );
        // Tokens overrunning the declared length are rejected.
        let mut lying = Vec::new();
        super::put_varint(&mut lying, 2); // declares 2 bytes
        super::put_varint(&mut lying, 5); // literal of 5
        lying.extend_from_slice(b"abcde");
        assert!(rle_decompress(&lying).is_err());
    }

    #[test]
    fn packed_sections_compress_sparse_bodies_and_pass_dense_ones_through() {
        let sparse: Vec<u8> = (0..400u64).flat_map(|v| (v % 11).to_le_bytes()).collect();
        let dense: Vec<u8> =
            (0..400u32).flat_map(|v| v.wrapping_mul(2654435761).to_le_bytes()).collect();
        let mut payload = Vec::new();
        put_section_packed(&mut payload, 1, &sparse);
        put_section_packed(&mut payload, 2, &dense);
        // The sparse body rides compressed (flagged tag), the dense one plain.
        let tags: Vec<u16> = sections(&payload).map(|s| s.unwrap().0).collect();
        assert_eq!(tags, vec![1 | SECTION_COMPRESSED_FLAG, 2]);
        assert_eq!(find_section_packed(&payload, 1).unwrap(), sparse);
        assert_eq!(find_section_packed(&payload, 2).unwrap(), dense);
        assert!(find_section_packed(&payload, 3).is_err());
        // A pre-compression reader skips the flagged tag instead of
        // misparsing it, and still finds the plain section.
        assert!(find_section(&payload, 1).is_err());
        assert_eq!(find_section(&payload, 2).unwrap(), dense);
    }

    #[test]
    fn corrupt_section_framing_is_rejected() {
        let mut payload = Vec::new();
        put_section(&mut payload, 1, b"body");
        // Truncate inside the body.
        let torn = &payload[..payload.len() - 2];
        assert!(sections(torn).any(|s| s.is_err()));
        // A section header cut short.
        assert!(sections(&payload[..5]).any(|s| s.is_err()));
        // Declared length far past the buffer.
        let mut lying = payload.clone();
        lying[2..10].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(sections(&lying).any(|s| s.is_err()));
    }
}
