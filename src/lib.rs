//! Workspace-level umbrella for the PyTFHE reproduction: hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). All functionality lives in the `pytfhe*` crates;
//! start at the [`pytfhe`] facade.

pub use pytfhe;
